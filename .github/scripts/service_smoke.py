"""CI service-smoke: the serving tier's three invariants, end to end.

Runs a real ``python -m repro serve`` subprocess (the same entry point an
operator uses) against a throwaway store and asserts, in order:

A. **Coalescing** — 16 concurrent *identical* build requests produce exactly
   one Flow build: one response says ``built``, fifteen say ``coalesced``
   (``serve.coalesced == 15`` in ``/v1/stats``), and all sixteen payloads
   are byte-identical.  A ``serve.execute:timeout(1.5)`` fault plan stalls
   the winning build, so the coalescing window is deterministic instead of
   a race against a fast runner.
B. **Sharding** — distinct requests spread across >= 2 worker shards
   (shard choice is ``int(sha256(request), 16) % workers`` — deterministic,
   so this never flakes).
C. **Clean shutdown** — SIGTERM ends the process with exit code 0 and the
   "shut down cleanly" summary on stderr.

Then a second server runs one request under ``serve.shard:error`` (the
worker shard crashes mid-service) and must still answer: pool→serial
degradation (``serve.pool_degraded >= 1``, ``meta.serial``) with a payload
byte-identical to the healthy run's.
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.serve import ServeClient  # noqa: E402

IDENTICAL = 16          # concurrent identical requests (phase A)
REQUEST = ("gemm", {"size": 4})

#: Distinct requests for the sharding check (phase B); keys are sha256 of
#: the canonical request, so the shard spread is a fixed fact, not luck.
DISTINCT = [
    ("build", "transpose", {"size": 8}),
    ("build", "matvec", {"size": 4}),
    ("simulate", "gemm", {"size": 4}),
    ("simulate", "stencil_1d", {"size": 16}),
    ("build", "prefix_sum", {"size": 16}),
    ("simulate", "matvec", {"size": 4}),
]


def start_server(store_dir, fault_plan=""):
    """Launch ``python -m repro serve``; returns (process, client)."""
    env = dict(os.environ)
    env["REPRO_STORE_DIR"] = store_dir
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
            break
        if process.poll() is not None:
            break
    if url is None:
        process.kill()
        raise SystemExit(f"server never announced its URL; stderr:\n"
                         f"{process.stderr.read()}")
    client = ServeClient(url)
    client.wait_ready(timeout=15)
    return process, client


def shutdown_clean(process, phase):
    """SIGTERM the server and require a zero exit + the clean summary."""
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit(f"{phase}: server ignored SIGTERM for 30s")
    stderr = process.stderr.read()
    check(process.returncode == 0,
          f"{phase}: SIGTERM exit code {process.returncode}; "
          f"stderr:\n{stderr}")
    check("shut down cleanly" in stderr,
          f"{phase}: no clean-shutdown summary in stderr:\n{stderr}")
    print(f"{phase}: clean SIGTERM shutdown (exit 0)")


def check(condition, message):
    if not condition:
        raise SystemExit(f"SMOKE FAILED: {message}")


def main():
    store_root = os.environ.get("REPRO_STORE_DIR") or tempfile.mkdtemp(
        prefix="serve-smoke-")
    store_a = os.path.join(store_root, "phase-a")
    store_b = os.path.join(store_root, "phase-b")

    # ---- phase A: coalescing + sharding + clean shutdown -------------------
    # The fault plan stalls the first execution 1.5s, holding the build in
    # flight while all 16 identical requests arrive and coalesce onto it.
    process, client = start_server(
        store_a, fault_plan="serve.execute:timeout(1.5)")
    try:
        kernel, params = REQUEST
        responses = [None] * IDENTICAL

        def hit(index):
            responses[index] = client.build(kernel, params)

        threads = [threading.Thread(target=hit, args=(index,))
                   for index in range(IDENTICAL)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for index, response in enumerate(responses):
            check(response is not None and response.ok,
                  f"request {index} failed: "
                  f"{None if response is None else response.error}")
        provenances = sorted(r.provenance for r in responses)
        built = provenances.count("built")
        coalesced = provenances.count("coalesced")
        payloads = {r.payload for r in responses}
        counters = client.stats()["counters"]
        check(built == 1 and coalesced == IDENTICAL - 1,
              f"expected 1 built + {IDENTICAL - 1} coalesced, got "
              f"{built} built + {coalesced} coalesced ({provenances})")
        check(counters["serve.builds"] == 1,
              f"server built {counters['serve.builds']} times for one key")
        check(counters["serve.coalesced"] == IDENTICAL - 1,
              f"serve.coalesced == {counters['serve.coalesced']}, "
              f"expected {IDENTICAL - 1}")
        check(len(payloads) == 1 and len(responses[0].payload) > 100,
              f"{len(payloads)} distinct payload byte strings for one key")
        print(f"phase A: {IDENTICAL} identical requests -> 1 build, "
              f"{coalesced} coalesced, byte-identical payloads "
              f"({len(responses[0].payload)} bytes)")
        healthy_payload = responses[0].payload

        distinct = [getattr(client, verb)(target, params)
                    for verb, target, params in DISTINCT]
        for response, spec in zip(distinct, DISTINCT):
            check(response.ok, f"distinct request {spec} failed: "
                               f"{response.error}")
        shards = {r.shard for r in distinct}
        check(len(shards) >= 2,
              f"distinct requests landed on shards {sorted(shards)}; "
              f"expected >= 2 of 4")
        print(f"phase A: {len(DISTINCT)} distinct requests spread over "
              f"shards {sorted(shards)}")
    finally:
        if process.poll() is None:
            shutdown_clean(process, "phase A")

    # ---- phase B: shard crash -> pool->serial degradation ------------------
    process, client = start_server(store_b, fault_plan="serve.shard:error")
    try:
        response = client.build(*REQUEST)
        counters = client.stats()["counters"]
        check(response.ok, f"request under shard crash failed: "
                           f"{response.error}")
        check(response.meta.get("serial") is True,
              f"expected serial-rescue meta, got {response.meta}")
        check(counters["serve.pool_degraded"] >= 1,
              f"serve.pool_degraded == {counters['serve.pool_degraded']}")
        check(counters["serve.shard_crashes"] >= 1,
              f"serve.shard_crashes == {counters['serve.shard_crashes']}")
        check(response.payload == healthy_payload,
              "degraded payload differs from the healthy run's bytes")
        print("phase B: shard crash degraded pool->serial with "
              "byte-identical output")
    finally:
        if process.poll() is None:
            shutdown_clean(process, "phase B")

    print("SERVICE SMOKE OK")


if __name__ == "__main__":
    main()
