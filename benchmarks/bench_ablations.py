"""Ablation benchmarks for the design choices called out in DESIGN.md.

* precision optimization on/off (register/LUT impact beyond Table 4),
* delay elimination / shift-register sharing on/off,
* memory-port optimization on/off,
* the baseline's design-space exploration on/off (compile-time impact),
* HIR code-generation cost as the PE array grows.
"""

import pytest

from repro.hls import compile_program
from repro.ir import PassManager
from repro.kernels import build_kernel, stencil1d, transpose
from repro.passes import (
    CanonicalizePass,
    DelayEliminationPass,
    MemPortOptimizationPass,
    PrecisionOptimizationPass,
)
from repro.resources import estimate_resources
from repro.verilog import generate_verilog_impl as generate_verilog


def _resources(module, top):
    return estimate_resources(generate_verilog(module, top=top).design)


@pytest.mark.table("ablation")
@pytest.mark.parametrize("enabled", [False, True], ids=["off", "on"])
def test_precision_optimization_ablation(benchmark, enabled):
    def run():
        design = transpose.build_hir(16)
        if enabled:
            PassManager().add(PrecisionOptimizationPass()).run(design.module)
        return _resources(design.module, "transpose")

    report = benchmark(run)
    assert report.ff > 0


def test_precision_optimization_saves_registers():
    baseline = _resources(transpose.build_hir(16).module, "transpose")
    optimized_design = transpose.build_hir(16)
    PassManager().add(PrecisionOptimizationPass()).run(optimized_design.module)
    optimized = _resources(optimized_design.module, "transpose")
    assert optimized.ff < baseline.ff
    assert optimized.lut < baseline.lut


@pytest.mark.table("ablation")
@pytest.mark.parametrize("enabled", [False, True], ids=["off", "on"])
def test_delay_elimination_ablation(benchmark, enabled):
    def run():
        design = stencil1d.build_hir(64)
        if enabled:
            PassManager().add(DelayEliminationPass(), CanonicalizePass()).run(design.module)
        return _resources(design.module, "stencil_1d")

    report = benchmark(run)
    assert report.ff > 0


def test_memport_optimization_reduces_luts():
    baseline_design = build_kernel("fifo", depth=512)
    baseline = _resources(baseline_design.module, "fifo_stream")
    optimized_design = build_kernel("fifo", depth=512)
    PassManager().add(MemPortOptimizationPass()).run(optimized_design.module)
    optimized = _resources(optimized_design.module, "fifo_stream")
    # The producer and consumer never touch the buffer in the same cycle, so
    # the buffer can be single-ported.
    assert optimized.lut <= baseline.lut


@pytest.mark.table("ablation")
@pytest.mark.parametrize("dse", [False, True], ids=["dse-off", "dse-on"])
def test_hls_dse_cost(benchmark, dse):
    """The baseline's DSE dominates its compile time (Table 6's mechanism)."""
    artifacts = build_kernel("histogram", pixels=256, bins=256)

    def run():
        return compile_program(artifacts.hls_program, artifacts.hls_function,
                               dse_enabled=dse)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.design.modules


@pytest.mark.table("ablation")
@pytest.mark.parametrize("size", [2, 4, 8], ids=["2x2", "4x4", "8x8"])
def test_hir_codegen_scales_with_pe_array(benchmark, size):
    """HIR code-generation time vs PE-array size (the paper's GEMM outlier)."""
    def run():
        artifacts = build_kernel("gemm", size=size)
        return generate_verilog(artifacts.module, top=artifacts.top)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.statistics["functions"] == 1
