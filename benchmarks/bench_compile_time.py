"""End-to-end compile-time benchmark of the fast compile path.

Runs the Table 6 kernel sweep — both compilers, every kernel — three ways:

* **seed**: the seed compiler's behaviour (legacy O(E) dependence scans,
  full serial DSE with no pruning or memoization, legacy full re-walk
  optimization passes),
* **fast**: the current defaults (interned IR + worklist passes, cached
  adjacency, pruned + memoized DSE), serial, and
* **parallel**: the fast path with ``HLSOptions(jobs=N)``.

It *enforces* the PR's contract: the fast serial sweep is >= 3x faster than
the seed sweep (``REPRO_COMPILE_MIN_SPEEDUP`` overrides the bar for noisy
shared runners), the DSE prunes a meaningful share of its candidate design
points, and — most importantly — all three variants choose the same
schedules and emit byte-identical Verilog for every kernel.

Usage::

    python -m pytest benchmarks/bench_compile_time.py -q   # paper scale
    python benchmarks/bench_compile_time.py --smoke        # CI-sized run
"""

import argparse
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if os.path.abspath(_SRC) not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.hls import HLSOptions, clear_schedule_memo, compile_program
from repro.hls import scheduling as hls_scheduling
from repro.kernels import build_kernel
from repro.passes import optimization_pipeline
from repro.verilog import generate_verilog_impl as generate_verilog
from repro.verilog.emitter import emit_design

#: Paper-scale Table 6 kernel parameters.
PAPER_PARAMS = {
    "transpose": {"size": 16},
    "stencil_1d": {"size": 64},
    "histogram": {"pixels": 256, "bins": 256},
    "gemm": {"size": 16},
    "convolution": {"size": 16},
}

#: Reduced sizes for the CI smoke run (same shape, seconds not minutes).
SMOKE_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 64},
    "gemm": {"size": 8},
    "convolution": {"size": 8},
}

#: Required end-to-end speedup of the fast serial sweep over the seed sweep.
MIN_SPEEDUP = float(os.environ.get("REPRO_COMPILE_MIN_SPEEDUP", "3.0"))
#: Job count for the parallel variant.
PARALLEL_JOBS = int(os.environ.get("REPRO_DSE_BENCH_JOBS", "4"))


def _compile_kernel(name, params, hls_options, legacy_pipeline=False):
    """One kernel through both compilers; returns (seconds, verilog, report)."""
    artifacts = build_kernel(name, **params)
    start = time.perf_counter()
    optimization_pipeline(verify_each=False,
                          legacy=legacy_pipeline).run(artifacts.module)
    hir_text = emit_design(
        generate_verilog(artifacts.module, top=artifacts.top).design)
    result = compile_program(artifacts.hls_program, artifacts.hls_function,
                             options=hls_options)
    seconds = time.perf_counter() - start
    hls_text = emit_design(result.design)
    return seconds, hir_text + "\n" + hls_text, result.report


def run_sweep(params, variant):
    """Compile every kernel; variant is 'seed', 'fast' or 'parallel'."""
    clear_schedule_memo()
    texts, reports = {}, {}
    total = 0.0
    if variant == "seed":
        with hls_scheduling.legacy_scan_mode():
            for name, kernel_params in params.items():
                seconds, text, report = _compile_kernel(
                    name, kernel_params, HLSOptions.seed_equivalent(),
                    legacy_pipeline=True)
                total += seconds
                texts[name], reports[name] = text, report
        return total, texts, reports
    options = (HLSOptions(jobs=PARALLEL_JOBS) if variant == "parallel"
               else HLSOptions(jobs=1))
    for name, kernel_params in params.items():
        seconds, text, report = _compile_kernel(name, kernel_params, options)
        total += seconds
        texts[name], reports[name] = text, report
    return total, texts, reports


def run_benchmark(params, min_speedup=MIN_SPEEDUP, verbose=True,
                  json_path=None):
    seed_seconds, seed_texts, _ = run_sweep(params, "seed")
    fast_seconds, fast_texts, fast_reports = run_sweep(params, "fast")
    par_seconds, par_texts, par_reports = run_sweep(params, "parallel")

    # Bit-identical results across all three variants, kernel by kernel.
    for name in params:
        assert seed_texts[name] == fast_texts[name], (
            f"{name}: fast compile emitted different Verilog than the seed")
        assert seed_texts[name] == par_texts[name], (
            f"{name}: parallel DSE emitted different Verilog than the seed")

    examined = sum(r.dse_evaluations for r in fast_reports.values())
    pruned = sum(r.dse_pruned for r in fast_reports.values())
    scheduled = sum(r.dse_scheduled for r in fast_reports.values())
    speedup = seed_seconds / fast_seconds if fast_seconds else float("inf")

    if verbose:
        cpus = os.cpu_count() or 1
        print(f"\ncompile-time sweep over {len(params)} kernels:")
        print(f"  seed      {seed_seconds:8.3f}s")
        print(f"  fast      {fast_seconds:8.3f}s  ({speedup:.1f}x, "
              f"required >= {min_speedup:.1f}x)")
        print(f"  parallel  {par_seconds:8.3f}s  (jobs={PARALLEL_JOBS}, "
              f"{cpus} CPU{'s' if cpus != 1 else ''} available; wall-clock "
              f"scaling needs >1 CPU and REPRO_DSE_EXECUTOR=process to "
              f"escape the GIL — results are identical regardless)")
        print(f"  DSE design points: {examined} examined, {pruned} pruned, "
              f"{scheduled} scheduled")

    if json_path:
        from conftest import write_bench_json
        write_bench_json(json_path, [{
            "name": "compile-sweep",
            "kernels": ",".join(sorted(params)),
            "seed_seconds": seed_seconds,
            "fast_seconds": fast_seconds,
            "parallel_seconds": par_seconds,
            "parallel_jobs": PARALLEL_JOBS,
            "speedup": speedup,
            "dse_examined": examined,
            "dse_pruned": pruned,
            "dse_scheduled": scheduled,
        }])
        if verbose:
            print(f"  wrote {json_path}")

    assert speedup >= min_speedup, (
        f"fast compile path only {speedup:.2f}x faster than the seed "
        f"(required {min_speedup}x)")
    # Pruning must carry real weight: most examined design points are
    # rejected by the lower bound without ever running the scheduler.
    assert pruned > 0, "DSE pruned no candidates"
    assert pruned >= examined // 4, (
        f"DSE pruned only {pruned} of {examined} design points")
    assert scheduled < examined, "every design point was still scheduled"
    return speedup


def test_compile_time_speedup_paper_scale():
    """Fast compile path >= 3x over the seed on the Table 6 sweep,
    with pruned DSE and bit-identical output (serial and parallel)."""
    run_benchmark(PAPER_PARAMS)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced kernel sizes (CI-sized, seconds)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help=f"override the speedup bar (default "
                             f"{MIN_SPEEDUP} or REPRO_COMPILE_MIN_SPEEDUP)")
    parser.add_argument("--json", default=os.environ.get("REPRO_BENCH_JSON"),
                        help="write the measurements to this JSON file "
                             "(default: $REPRO_BENCH_JSON if set)")
    arguments = parser.parse_args(argv)
    params = SMOKE_PARAMS if arguments.smoke else PAPER_PARAMS
    bar = arguments.min_speedup if arguments.min_speedup is not None else MIN_SPEEDUP
    speedup = run_benchmark(params, min_speedup=bar, json_path=arguments.json)
    print(f"ok: {speedup:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
