"""Figures 1–3 — schedule-verifier diagnostics and memory banking."""

import pytest

from repro.evaluation import figures
from repro.passes import verify_schedule


@pytest.mark.table("figure1")
def test_figure1_diagnostic(benchmark):
    """Time to detect the Figure 1 scheduling error (verifier latency)."""
    module = figures.build_array_add(correct=False)
    report = benchmark(lambda: verify_schedule(module))
    assert not report.ok


@pytest.mark.table("figure1")
def test_figure1_clean_design(benchmark):
    module = figures.build_array_add(correct=True)
    report = benchmark(lambda: verify_schedule(module))
    assert report.ok


@pytest.mark.table("figure2")
def test_figure2_diagnostic(benchmark):
    module = figures.build_mac(multiplier_stages=3)
    report = benchmark(lambda: verify_schedule(module))
    assert len(report.diagnostics) == 2


@pytest.mark.table("figure3")
def test_figure3_banking(benchmark):
    result = benchmark(figures.figure3)
    assert result.reproduced


@pytest.mark.table("figure1")
def test_verifier_scales_with_design_size(benchmark):
    """Ablation: schedule verification cost on a larger (256-PE) design."""
    from repro.kernels import gemm
    module = gemm.build_hir(8).module
    report = benchmark.pedantic(lambda: verify_schedule(module), rounds=2,
                                iterations=1)
    assert report.ok


@pytest.mark.table("figures")
def test_figures_summary():
    print()
    print(figures.figure1().render())
    print(figures.figure2().render())
    print(figures.figure3().render())
    assert figures.figure1().reproduced
    assert figures.figure2().reproduced
    assert figures.figure3().reproduced
