"""Benchmarks of the simulation substrate (the RTL-simulation substitute).

Not a paper table, but a substrate ablation: how fast each simulation engine
executes the generated designs — the interpreted reference, the compiled
event-driven engine (cold: includes levelization + code generation; warm:
compilation amortized), the batched engine (N stimulus lanes per run), and
the fused whole-run vector engine — and that end-to-end correctness holds
at benchmark sizes.
"""

import os
import time

import numpy as np
import pytest

from repro.kernels import build_kernel
from repro.sim import run_design_impl as run_design
from repro.sim.engine import clear_compile_cache
from repro.verilog import generate_verilog_impl as generate_verilog

#: Single-run speedup the compiled engine must deliver on GEMM (cold compile
#: included); measured ~4x on the development machine, so 3x leaves margin.
#: Shared CI runners can lower the bar via REPRO_GEMM_MIN_SPEEDUP.
GEMM_MIN_SPEEDUP = float(os.environ.get("REPRO_GEMM_MIN_SPEEDUP", "3.0"))

#: Warm-vs-warm speedup the vector engine must deliver over the compiled
#: engine on GEMM steady state; measured ~3.9x on the development machine,
#: the ISSUE floor is 2x.  CI can lower the bar via REPRO_VECTOR_MIN_SPEEDUP.
VECTOR_MIN_SPEEDUP = float(os.environ.get("REPRO_VECTOR_MIN_SPEEDUP", "2.0"))


@pytest.mark.table("simulation")
@pytest.mark.parametrize("engine", ["interpreted", "compiled", "vector"])
@pytest.mark.parametrize("kernel,params", [
    ("transpose", {"size": 8}),
    ("stencil_1d", {"size": 32}),
    ("histogram", {"pixels": 64, "bins": 32}),
    ("fifo", {"depth": 64}),
], ids=["transpose-8", "stencil-32", "histogram-64", "fifo-64"])
def test_simulate_generated_design(benchmark, bench_recorder, kernel, params,
                                   engine):
    artifacts = build_kernel(kernel, **params)
    design = generate_verilog(artifacts.module, top=artifacts.top).design
    inputs = artifacts.make_inputs(0)

    def run():
        return run_design(
            design,
            memories={name: (memref_type, inputs[name])
                      for name, memref_type in artifacts.interfaces.items()},
            scalar_inputs=artifacts.scalar_args,
            drain_cycles=16,
            engine=engine,
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_recorder(f"simulate/{kernel}/{engine}",
                   seconds=time.perf_counter() - start,
                   cycles=int(result.cycles))
    assert result.done
    expected = artifacts.reference(inputs)
    for name, reference in expected.items():
        produced = result.memory_array(name)
        reference = np.asarray(reference)
        if kernel == "stencil_1d":
            produced, reference = produced[1:], reference[1:]
        assert np.array_equal(produced, reference)


@pytest.mark.table("simulation")
def test_compiled_engine_speedup_on_gemm(bench_recorder):
    """The compiled engine is >= 3x faster than the interpreter on the
    paper-scale GEMM, even paying elaboration + compilation in-run; a warm
    second run amortizes compilation entirely."""
    artifacts = build_kernel("gemm", size=16)
    clear_compile_cache()

    start = time.perf_counter()
    interpreted, inputs = artifacts.simulate(seed=0, engine="interpreted")
    interpreted_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold, _ = artifacts.simulate(seed=0, engine="compiled")
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm, _ = artifacts.simulate(seed=0, engine="compiled")
    warm_seconds = time.perf_counter() - start

    assert interpreted.done and cold.done and warm.done
    assert interpreted.cycles == cold.cycles == warm.cycles
    expected = artifacts.reference(inputs)["C"]
    assert np.array_equal(cold.memory_array("C"), expected)

    cold_speedup = interpreted_seconds / cold_seconds
    warm_speedup = interpreted_seconds / warm_seconds
    bench_recorder("engine-speedup/gemm-16",
                   interpreted_seconds=interpreted_seconds,
                   cold_seconds=cold_seconds, warm_seconds=warm_seconds,
                   cold_speedup=cold_speedup, warm_speedup=warm_speedup,
                   cycles=int(interpreted.cycles))
    print(f"\nGEMM 16x16 ({interpreted.cycles} cycles): "
          f"interpreted {interpreted_seconds:.3f}s, "
          f"compiled cold {cold_seconds:.3f}s ({cold_speedup:.1f}x), "
          f"warm {warm_seconds:.3f}s ({warm_speedup:.1f}x)")
    assert cold_speedup >= GEMM_MIN_SPEEDUP, (
        f"compiled engine only {cold_speedup:.2f}x faster than interpreter "
        f"(required {GEMM_MIN_SPEEDUP}x)"
    )
    assert warm_speedup >= GEMM_MIN_SPEEDUP


@pytest.mark.table("simulation")
def test_vector_engine_speedup_on_gemm(bench_recorder):
    """The fused vector run beats the compiled engine's per-cycle dispatch on
    the paper-scale GEMM steady state — warm-vs-warm, so both sides pay
    neither levelization nor codegen and the comparison isolates the
    per-cycle interpreter-reentry cost the vector engine removes."""
    artifacts = build_kernel("gemm", size=16)
    clear_compile_cache()

    start = time.perf_counter()
    compiled_cold, inputs = artifacts.simulate(seed=0, engine="compiled")
    compiled_cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled_warm, _ = artifacts.simulate(seed=0, engine="compiled")
    compiled_warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vector_cold, _ = artifacts.simulate(seed=0, engine="vector")
    vector_cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vector_warm, _ = artifacts.simulate(seed=0, engine="vector")
    vector_warm_seconds = time.perf_counter() - start

    assert compiled_cold.done and vector_cold.done
    assert vector_warm.cycles == compiled_warm.cycles
    expected = artifacts.reference(inputs)["C"]
    assert np.array_equal(vector_warm.memory_array("C"), expected)

    cold_speedup = compiled_cold_seconds / vector_cold_seconds
    warm_speedup = compiled_warm_seconds / vector_warm_seconds
    bench_recorder("engine-speedup/gemm-16-vector",
                   compiled_warm_seconds=compiled_warm_seconds,
                   vector_cold_seconds=vector_cold_seconds,
                   vector_warm_seconds=vector_warm_seconds,
                   cold_speedup=cold_speedup, warm_speedup=warm_speedup,
                   cycles=int(vector_warm.cycles))
    print(f"\nGEMM 16x16 ({vector_warm.cycles} cycles): "
          f"compiled warm {compiled_warm_seconds:.3f}s, "
          f"vector cold {vector_cold_seconds:.3f}s ({cold_speedup:.1f}x), "
          f"warm {vector_warm_seconds:.3f}s ({warm_speedup:.1f}x)")
    assert warm_speedup >= VECTOR_MIN_SPEEDUP, (
        f"vector engine only {warm_speedup:.2f}x faster than the warm "
        f"compiled engine (required {VECTOR_MIN_SPEEDUP}x)"
    )


@pytest.mark.table("simulation")
def test_batched_engine_amortizes_stimulus_sweep(bench_recorder):
    """Batched lanes beat one interpreted run per stimulus set; every lane
    still matches the numpy reference exactly."""
    artifacts = build_kernel("gemm", size=8)
    seeds = list(range(16))

    start = time.perf_counter()
    single, inputs = artifacts.simulate(seed=seeds[0], engine="interpreted")
    interpreted_per_run = time.perf_counter() - start
    assert np.array_equal(single.memory_array("C"),
                          artifacts.reference(inputs)["C"])

    start = time.perf_counter()
    batch, inputs_per_lane = artifacts.simulate_batch(seeds)
    batched_seconds = time.perf_counter() - start
    batched_per_run = batched_seconds / len(seeds)

    for lane, lane_inputs in enumerate(inputs_per_lane):
        expected = artifacts.reference(lane_inputs)["C"]
        assert np.array_equal(batch.memory_array("C", lane), expected)

    bench_recorder("batched-sweep/gemm-8",
                   lanes=len(seeds),
                   interpreted_seconds_per_run=interpreted_per_run,
                   batched_seconds_per_run=batched_per_run,
                   per_scenario_speedup=interpreted_per_run / batched_per_run)
    print(f"\nGEMM 8x8 x{len(seeds)} stimuli: interpreted "
          f"{interpreted_per_run:.3f}s/run, batched {batched_per_run:.3f}s/run "
          f"({interpreted_per_run / batched_per_run:.1f}x per scenario)")
    assert batched_per_run < interpreted_per_run
