"""Benchmarks of the simulation substrate (the RTL-simulation substitute).

Not a paper table, but a substrate ablation: how fast the cycle-accurate
simulator executes the generated designs, and that end-to-end correctness
holds at benchmark sizes.
"""

import numpy as np
import pytest

from repro.kernels import build_kernel
from repro.sim import run_design
from repro.verilog import generate_verilog


@pytest.mark.table("simulation")
@pytest.mark.parametrize("kernel,params", [
    ("transpose", {"size": 8}),
    ("stencil_1d", {"size": 32}),
    ("histogram", {"pixels": 64, "bins": 32}),
    ("fifo", {"depth": 64}),
], ids=["transpose-8", "stencil-32", "histogram-64", "fifo-64"])
def test_simulate_generated_design(benchmark, kernel, params):
    artifacts = build_kernel(kernel, **params)
    design = generate_verilog(artifacts.module, top=artifacts.top).design
    inputs = artifacts.make_inputs(0)

    def run():
        return run_design(
            design,
            memories={name: (memref_type, inputs[name])
                      for name, memref_type in artifacts.interfaces.items()},
            scalar_inputs=artifacts.scalar_args,
            drain_cycles=16,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.done
    expected = artifacts.reference(inputs)
    for name, reference in expected.items():
        produced = result.memory_array(name)
        reference = np.asarray(reference)
        if kernel == "stencil_1d":
            produced, reference = produced[1:], reference[1:]
        assert np.array_equal(produced, reference)
