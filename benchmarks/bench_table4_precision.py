"""Table 4 — effect of precision optimization on the matrix transpose."""

import pytest

from repro.evaluation import table4
from repro.hls import compile_program
from repro.kernels import transpose
from repro.passes import optimization_pipeline
from repro.resources import estimate_resources
from repro.verilog import generate_verilog_impl as generate_verilog

SIZE = 16


@pytest.mark.table("table4")
@pytest.mark.parametrize("optimize", [False, True],
                         ids=["HIR-no-opt", "HIR-auto-opt"])
def test_hir_design_point(benchmark, optimize):
    def run():
        design = transpose.build_hir(SIZE)
        if optimize:
            optimization_pipeline(verify_each=False).run(design.module)
        return estimate_resources(generate_verilog(design.module,
                                                   top="transpose").design)

    report = benchmark(run)
    assert report.as_dict()["LUT"] > 0


@pytest.mark.table("table4")
@pytest.mark.parametrize("manual", [False, True],
                         ids=["HLS", "HLS-manual-opt"])
def test_hls_design_point(benchmark, manual):
    def run():
        program = transpose.build_hls(SIZE, manual_precision=manual)
        return estimate_resources(compile_program(program, "transpose").design)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.as_dict()["FF"] > 0


@pytest.mark.table("table4")
def test_table4_summary():
    rows = table4.generate(size=SIZE)
    print()
    print(table4.render(rows))
    assert table4.check_shape(rows)
    auto = rows["HIR (auto opt)"].measured.as_dict()
    noopt = rows["HIR (no opt)"].measured.as_dict()
    # Precision optimization removes a large fraction of the registers, as in
    # the paper (72 -> 18 FFs).
    assert auto["FF"] <= noopt["FF"] // 2
