"""Table 5 — FPGA resource usage of the six kernels, HIR vs the baseline.

The benchmark times the HIR flow (optimize + generate + estimate) per kernel;
the summary test regenerates the full table (both compilers) once, prints it
next to the published numbers and asserts the qualitative shape (DSP/BRAM
parity, LUT/FF directions).
"""

import pytest

from repro.evaluation import table5
from repro.kernels import build_kernel
from repro.passes import optimization_pipeline
from repro.resources import estimate_resources
from repro.verilog import generate_verilog_impl as generate_verilog

KERNELS = ["transpose", "stencil_1d", "histogram", "convolution", "fifo", "gemm"]


@pytest.mark.table("table5")
@pytest.mark.parametrize("kernel", KERNELS)
def test_hir_resource_estimation(benchmark, paper_params, kernel):
    """Time the HIR compile + resource estimation used for the HIR column."""
    def run():
        artifacts = build_kernel(kernel, **paper_params[kernel])
        optimization_pipeline(verify_each=False).run(artifacts.module)
        design = generate_verilog(artifacts.module, top=artifacts.top).design
        return estimate_resources(design)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.as_dict()["FF"] > 0


@pytest.mark.table("table5")
def test_table5_summary(paper_params):
    rows = table5.generate({name: paper_params[name] for name in KERNELS})
    print()
    print(table5.render(rows))
    checks = table5.check_shape(rows)
    assert all(checks.values()), checks
    # The paper's exact-match claims: DSP and BRAM counts are identical for
    # every kernel, including the 768 DSPs of the 16x16 GEMM.
    gemm = rows["gemm"]
    assert gemm.hir.as_dict()["DSP"] == gemm.baseline.as_dict()["DSP"] == 768
