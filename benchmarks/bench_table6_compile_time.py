"""Table 6 — compile time of the HIR code generator vs the HLS baseline.

Each benchmark measures one compiler on one kernel at the paper's problem
sizes.  ``test_table6_summary`` then prints the regenerated table (measured
speedups next to the published 333x–2166x figures) and asserts the shape:
HIR code generation is faster on every kernel.
"""

import pytest

from repro.evaluation import table6
from repro.hls import compile_program
from repro.kernels import build_kernel
from repro.passes import optimization_pipeline
from repro.verilog import generate_verilog_impl as generate_verilog

HIR_KERNELS = ["transpose", "stencil_1d", "histogram", "convolution", "gemm"]


def _hir_compile(artifacts):
    optimization_pipeline(verify_each=False).run(artifacts.module)
    return generate_verilog(artifacts.module, top=artifacts.top)


@pytest.mark.table("table6")
@pytest.mark.parametrize("kernel", HIR_KERNELS)
def test_hir_code_generation_time(benchmark, paper_params, kernel):
    """HIR column of Table 6: optimization pipeline + Verilog generation."""
    def run():
        artifacts = build_kernel(kernel, **paper_params[kernel])
        return _hir_compile(artifacts)

    result = benchmark.pedantic(run, rounds=3 if kernel != "gemm" else 1,
                                iterations=1)
    assert result.design.top == build_kernel(kernel, **paper_params[kernel]).top


@pytest.mark.table("table6")
@pytest.mark.parametrize("kernel", HIR_KERNELS)
def test_hls_baseline_compile_time(benchmark, paper_params, kernel):
    """Baseline column of Table 6: scheduling, DSE, binding, RTL generation."""
    artifacts = build_kernel(kernel, **paper_params[kernel])

    def run():
        return compile_program(artifacts.hls_program, artifacts.hls_function)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.report.loops


@pytest.mark.table("table6")
def test_table6_summary(paper_params):
    """Regenerate the whole table once and check the paper's shape."""
    rows = table6.generate({k: paper_params[k] for k in HIR_KERNELS})
    print()
    print(table6.render(rows))
    assert table6.check_shape(rows)
