"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
kernel sizes match the paper's configuration (16x16 GEMM, 256-bin histogram,
64-element stencil); the heavyweight baseline compilations are measured with
a single round so the whole harness stays in the minutes range.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table(name): marks the paper table/figure a benchmark regenerates"
    )


@pytest.fixture(scope="session")
def paper_params():
    """Paper-scale kernel parameters (Section 8)."""
    return {
        "transpose": {"size": 16},
        "stencil_1d": {"size": 64},
        "histogram": {"pixels": 256, "bins": 256},
        "gemm": {"size": 16},
        "convolution": {"size": 16},
        "fifo": {"depth": 512},
    }
