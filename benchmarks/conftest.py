"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
kernel sizes match the paper's configuration (16x16 GEMM, 256-bin histogram,
64-element stencil); the heavyweight baseline compilations are measured with
a single round so the whole harness stays in the minutes range.
"""

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

import pytest

#: Measurements accumulated by the bench_* modules during one pytest run,
#: written to $REPRO_BENCH_JSON at session end (one file per run, so CI can
#: upload it as an artifact and the perf trajectory accumulates per commit).
BENCH_RECORDS = []


def record_benchmark(name, **metrics):
    """Append one named measurement (floats/ints/strings only)."""
    BENCH_RECORDS.append({"name": name, **metrics})


def write_bench_json(path, records):
    """Emit records in the versioned envelope of :mod:`repro.obs.metrics`
    (CI validates every emitted file against that schema).  Published
    atomically so an interrupted run never leaves a torn artifact for CI
    to upload."""
    from repro.obs.metrics import bench_payload
    from repro.store.io import atomic_write_json
    return atomic_write_json(path, bench_payload(records))


def pytest_sessionstart(session):
    # $REPRO_BENCH_TRACE: record the whole benchmark run (Flow stages,
    # passes, DSE, engine runs) as one Chrome trace for per-commit upload.
    if os.environ.get("REPRO_BENCH_TRACE"):
        from repro.obs.tracer import TRACER
        TRACER.enable()


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and BENCH_RECORDS:
        write_bench_json(path, BENCH_RECORDS)
    trace_path = os.environ.get("REPRO_BENCH_TRACE")
    if trace_path:
        from repro.obs.export import write_chrome_trace
        write_chrome_trace(trace_path)


@pytest.fixture(scope="session")
def bench_recorder():
    """The benchmark-measurement recorder (see :func:`record_benchmark`)."""
    return record_benchmark


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table(name): marks the paper table/figure a benchmark regenerates"
    )


@pytest.fixture(scope="session")
def paper_params():
    """Paper-scale kernel parameters (Section 8)."""
    return {
        "transpose": {"size": 16},
        "stencil_1d": {"size": 64},
        "histogram": {"pixels": 256, "bins": 256},
        "gemm": {"size": 16},
        "convolution": {"size": 16},
        "fifo": {"depth": 512},
    }
