"""Pytest configuration: make the in-tree ``src`` layout importable.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; adding ``src`` to ``sys.path``
here lets ``pytest tests/`` and ``pytest benchmarks/`` run directly from a
checkout.  When the package *is* properly installed this is a harmless no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
