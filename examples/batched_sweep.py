#!/usr/bin/env python3
"""Batched stimulus sweep: one compiled design, many scenarios at once.

One `Flow` session compiles the GEMM accelerator once; each simulation then
reuses the cached design (the engine additionally caches its compiled step
functions per design).  The sweep runs three ways —

1. the interpreted reference simulator, one run per stimulus,
2. the compiled event-driven engine, one run per stimulus, and
3. `flow.simulate_batch(seeds)`, all stimuli in one numpy-vectorized run —

checks every result against numpy, and prints the throughput of each.

Run with:  python examples/batched_sweep.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import Flow

SIZE = 6
SCENARIOS = 12


def main() -> None:
    flow = Flow.from_kernel("gemm", size=SIZE)
    seeds = list(range(SCENARIOS))

    print(f"GEMM {SIZE}x{SIZE}, {SCENARIOS} random stimulus sets")
    print("=" * 60)

    start = time.perf_counter()
    for seed in seeds:
        outcome = flow.simulate(seed=seed, engine="interpreted").value
        assert outcome.run.done
    interpreted = time.perf_counter() - start
    print(f"interpreted : {interpreted:6.2f}s "
          f"({interpreted / SCENARIOS:6.3f}s per scenario)")

    start = time.perf_counter()
    for seed in seeds:
        outcome = flow.simulate(seed=seed, engine="compiled").value
        expected = flow.reference(outcome.inputs)["C"]
        assert np.array_equal(outcome.memory_array("C"), expected)
    compiled = time.perf_counter() - start
    print(f"compiled    : {compiled:6.2f}s "
          f"({compiled / SCENARIOS:6.3f}s per scenario, "
          f"{interpreted / compiled:4.1f}x)")

    start = time.perf_counter()
    batch = flow.simulate_batch(seeds).value
    batched = time.perf_counter() - start
    for lane, inputs in enumerate(batch.inputs_per_lane):
        expected = flow.reference(inputs)["C"]
        assert np.array_equal(batch.memory_array("C", lane), expected)
    print(f"batched     : {batched:6.2f}s "
          f"({batched / SCENARIOS:6.3f}s per scenario, "
          f"{interpreted / batched:4.1f}x)")
    print(f"\nall {SCENARIOS} scenarios match the numpy reference; "
          f"every lane took {int(batch.run.cycles[0])} cycles")


if __name__ == "__main__":
    main()
