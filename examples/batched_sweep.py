#!/usr/bin/env python3
"""Batched stimulus sweep: one compiled design, many scenarios at once.

The compiled engine pays elaboration + compilation once per design; the
batched engine goes further and advances N independent stimulus sets per
step-function call (every signal holds a numpy lane array).  This example
sweeps a GEMM accelerator over many random input matrices three ways —

1. the interpreted reference simulator, one run per stimulus,
2. the compiled event-driven engine, one run per stimulus, and
3. the batched engine, all stimuli in one run —

checks every result against numpy, and prints the throughput of each.

Run with:  python examples/batched_sweep.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.kernels import build_kernel

SIZE = 6
SCENARIOS = 12


def main() -> None:
    artifacts = build_kernel("gemm", size=SIZE)
    seeds = list(range(SCENARIOS))

    print(f"GEMM {SIZE}x{SIZE}, {SCENARIOS} random stimulus sets")
    print("=" * 60)

    start = time.perf_counter()
    for seed in seeds:
        run, inputs = artifacts.simulate(seed=seed, engine="interpreted")
        assert run.done
    interpreted = time.perf_counter() - start
    print(f"interpreted : {interpreted:6.2f}s "
          f"({interpreted / SCENARIOS:6.3f}s per scenario)")

    start = time.perf_counter()
    for seed in seeds:
        run, inputs = artifacts.simulate(seed=seed, engine="compiled")
        expected = artifacts.reference(inputs)["C"]
        assert np.array_equal(run.memory_array("C"), expected)
    compiled = time.perf_counter() - start
    print(f"compiled    : {compiled:6.2f}s "
          f"({compiled / SCENARIOS:6.3f}s per scenario, "
          f"{interpreted / compiled:4.1f}x)")

    start = time.perf_counter()
    batch_run, inputs_per_lane = artifacts.simulate_batch(seeds)
    batched = time.perf_counter() - start
    for lane, inputs in enumerate(inputs_per_lane):
        expected = artifacts.reference(inputs)["C"]
        assert np.array_equal(batch_run.memory_array("C", lane), expected)
    print(f"batched     : {batched:6.2f}s "
          f"({batched / SCENARIOS:6.3f}s per scenario, "
          f"{interpreted / batched:4.1f}x)")
    print(f"\nall {SCENARIOS} scenarios match the numpy reference; "
          f"every lane took {int(batch_run.cycles[0])} cycles")


if __name__ == "__main__":
    main()
