#!/usr/bin/env python3
"""Composing kernels into multi-stage dataflow designs (repro.graph).

Two pipelines are built, lowered to single multi-module Verilog designs and
simulated end to end against their chained numpy references:

* ``gemm -> transpose -> stencil_1d`` — a 3-stage linear-algebra pipeline
  with a reshape-compatible edge (a matrix streamed into a 1-D stencil);
* ``histogram -> prefix_sum`` — the cumulative distribution of an image,
  built here by hand to show the DesignGraph API (the same pipeline is
  registered as the ``histogram_cdf`` scenario).

Run with:  python examples/compose_pipelines.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import DesignGraph, Flow, FlowConfig

config = FlowConfig(pipeline="optimize", verify_each=False,
                    engine="differential")


def main() -> None:
    # --- a registered scenario, one call away ----------------------------
    flow = Flow.from_scenario("gemm_pipeline", size=4, config=config)
    artifacts = flow.compose().value
    print("gemm_pipeline static schedule (cycles):")
    print(artifacts.describe_schedule())
    outcome = flow.validate(seed=1).value
    print(f"-> simulated {outcome.cycles} cycles on both engines in "
          f"lockstep; matches the chained numpy reference: {outcome.ok}\n")

    # --- the same machinery, graph built by hand --------------------------
    graph = DesignGraph("image_cdf")
    histogram = graph.add_kernel("histogram", pixels=64, bins=16)
    scan = graph.add_kernel("prefix_sum", size=16)
    graph.connect(histogram, "hist", scan, "xs")
    graph.expose(histogram, "img", "img")
    graph.expose(scan, "sums", "cdf")

    flow = Flow.from_graph(graph, config=config)
    run = flow.simulate(seed=7).value
    cdf = run.memory_array("cdf")
    expected = np.cumsum(np.bincount(np.asarray(run.inputs["img"]),
                                     minlength=16)[:16])
    print(f"image_cdf: {len(graph.nodes)} nodes / {len(graph.edges)} stream "
          f"edge(s), {run.run.cycles} cycles")
    print("hardware CDF :", cdf)
    print("numpy CDF    :", expected)
    print("match        :", np.array_equal(cdf, expected))


if __name__ == "__main__":
    main()
