#!/usr/bin/env python3
"""A GEMM accelerator built as an array of processing elements.

This is the paper's headline hand-optimized kernel (Section 7.3): nested
``hir.unroll_for`` loops describe an ``N x N`` array of multiply-accumulate
processing elements, fed from banked on-chip buffers, with a staggered
write-back phase.  The example drives one `Flow` session per instance:
a paper-scale one for the resource report, and a small one that is
simulated against numpy.

Run with:  python examples/gemm_pe_array.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import Flow, FlowConfig

SIM_SIZE = 4       # simulated instance (fast)
REPORT_SIZE = 16   # paper-scale instance (resource report only)


def main() -> None:
    config = FlowConfig(pipeline="optimize", verify_each=False)

    # --- paper-scale resource report -------------------------------------
    flow = Flow.from_kernel("gemm", size=REPORT_SIZE, config=config)
    report = flow.resources().value
    print(f"{REPORT_SIZE}x{REPORT_SIZE} PE array "
          f"(code generation {flow.verilog().seconds * 1000:.0f} ms): {report}")
    print(f"  -> {REPORT_SIZE * REPORT_SIZE} PEs x 3 DSP slices per 32x32 "
          f"multiplier = {report.as_dict()['DSP']} DSPs "
          "(Table 5 reports 768 for both compilers)")

    # --- functional check on a small instance ----------------------------
    small = Flow.from_kernel("gemm", size=SIM_SIZE, config=config)
    assert small.verified().value.ok
    outcome = small.simulate(seed=3).value
    expected = small.reference(outcome.inputs)["C"]
    produced = outcome.memory_array("C")
    print(f"\n{SIM_SIZE}x{SIM_SIZE} instance simulated in {outcome.run.cycles} "
          f"cycles; matches numpy matmul: {np.array_equal(produced, expected)}")
    print(produced)


if __name__ == "__main__":
    main()
