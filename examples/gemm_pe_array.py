#!/usr/bin/env python3
"""A GEMM accelerator built as an array of processing elements.

This is the paper's headline hand-optimized kernel (Section 7.3): nested
``hir.unroll_for`` loops describe an ``N x N`` array of multiply-accumulate
processing elements, fed from banked on-chip buffers, with a staggered
write-back phase.  The example compiles the design, reports the resources
(one 32x32 multiplier, i.e. three DSP slices, per PE), and simulates a small
instance against numpy.

Run with:  python examples/gemm_pe_array.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.kernels import gemm
from repro.passes import optimization_pipeline, verify_schedule
from repro.resources import estimate_resources
from repro.sim import run_design
from repro.verilog import generate_verilog

SIM_SIZE = 4       # simulated instance (fast)
REPORT_SIZE = 16   # paper-scale instance (resource report only)


def main() -> None:
    # --- paper-scale resource report -------------------------------------
    artifacts = gemm.build(REPORT_SIZE)
    optimization_pipeline(verify_each=False).run(artifacts.module)
    result = generate_verilog(artifacts.module, top=artifacts.top)
    report = estimate_resources(result.design)
    print(f"{REPORT_SIZE}x{REPORT_SIZE} PE array "
          f"(code generation {result.seconds * 1000:.0f} ms): {report}")
    print(f"  -> {REPORT_SIZE * REPORT_SIZE} PEs x 3 DSP slices per 32x32 "
          f"multiplier = {report.as_dict()['DSP']} DSPs "
          "(Table 5 reports 768 for both compilers)")

    # --- functional check on a small instance ----------------------------
    small = gemm.build(SIM_SIZE)
    assert verify_schedule(small.module).ok
    small_result = generate_verilog(small.module, top=small.top)
    inputs = small.make_inputs(seed=3)
    run = run_design(
        small_result.design,
        memories={name: (memref_type, inputs[name])
                  for name, memref_type in small.interfaces.items()},
        drain_cycles=16,
    )
    expected = small.reference(inputs)["C"]
    produced = run.memory_array("C")
    print(f"\n{SIM_SIZE}x{SIM_SIZE} instance simulated in {run.cycles} cycles; "
          f"matches numpy matmul: {np.array_equal(produced, expected)}")
    print(produced)


if __name__ == "__main__":
    main()
