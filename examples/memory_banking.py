#!/usr/bin/env python3
"""Memory banking with distributed memref dimensions (Figure 3).

A memref whose dimensions are *distributed* is spread across multiple
physical buffers: elements whose indices differ in a distributed dimension
live in different banks and can be accessed in the same cycle.  This example
prints the bank layout of the paper's Figure 3 memref, shows the banked RAM
the code generator instantiates, and contrasts it with a fully packed
(single-buffer) layout.

Run with:  python examples/memory_banking.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.evaluation.figures import figure3
from repro.hir import MemrefType
from repro.ir import I32


def describe(memref: MemrefType) -> None:
    print(f"{memref}")
    print(f"  rank={memref.rank}, elements={memref.num_elements}")
    print(f"  packed dims={memref.packed_dims()}, "
          f"distributed dims={memref.distributed_dims()}")
    print(f"  banks={memref.num_banks}, elements/bank={memref.elements_per_bank}, "
          f"read latency={memref.read_latency} cycle(s)")


def main() -> None:
    print("=== Figure 3 memref ===")
    result = figure3()
    print(result.render())

    print("\n=== layout comparison ===")
    describe(MemrefType((3, 2), I32, port="r", packing=(1,)))   # Figure 3
    describe(MemrefType((3, 2), I32, port="r"))                 # fully packed
    describe(MemrefType((3, 2), I32, port="r", packing=()))     # fully distributed

    print("\nA fully distributed memref is implemented with one register per "
          "element (combinational reads); packed dimensions share a RAM and "
          "read with one cycle of latency — that is exactly the latency the "
          "schedule analysis assigns to hir.mem_read.")


if __name__ == "__main__":
    main()
