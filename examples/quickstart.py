#!/usr/bin/env python3
"""Quickstart: describe, verify, compile and simulate a matrix transpose.

This walks the full HIR flow on the paper's Listing 1 design through the
`Flow` session API — one staged, cached entry point:

1. build the HIR design with the Python builder API,
2. `flow.hir()` / `flow.verified()` — structural + schedule verification,
3. `flow.optimized()` — the optimization pipeline (precision reduction, CSE, ...),
4. `flow.verilog()` / `flow.resources()` — synthesizable Verilog + FPGA estimate,
5. `flow.simulate(inputs=...)` — cycle-accurate validation against numpy.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import Flow, FlowConfig
from repro.hir import DesignBuilder, MemrefType
from repro.ir import I32, print_module

SIZE = 16


def build_transpose() -> DesignBuilder:
    """The paper's Listing 1: a pipelined 16x16 matrix transpose."""
    design = DesignBuilder("quickstart")
    in_type = MemrefType((SIZE, SIZE), I32, port="r")
    out_type = MemrefType((SIZE, SIZE), I32, port="w")
    with design.func("transpose", [("Ai", in_type), ("Co", out_type)]) as f:
        with f.for_loop(0, SIZE, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, SIZE, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                value = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv],
                                   time=j_loop.time)
                j_delayed = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(value, f.arg("Co"), [j_delayed, i_loop.iv],
                            time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
    return design


def main() -> None:
    # One session owns the whole toolchain.  `engine="compiled"` selects the
    # levelized, event-driven simulator; "interpreted" walks the AST, and
    # "differential" runs both in lockstep, checking them against each other.
    flow = Flow(build_transpose(), config=FlowConfig(engine="compiled"))

    # 1. structural verification (flow.hir) + schedule verification.
    flow.hir()
    report = flow.verified().value
    print("schedule verification:", "ok" if report.ok else report.render())

    # 2. the textual IR (round-trippable generic form).
    print("\n--- HIR (generic textual form, excerpt) ---")
    print("\n".join(print_module(flow.module).splitlines()[:12]))

    # 3. optimize and generate Verilog.  Stages are lazy and cached: asking
    # for the Verilog runs the pass pipeline exactly once.
    verilog = flow.verilog()
    print("\n--- pass pipeline ---")
    print(flow.pass_report())
    print(f"\ncode generation took {verilog.seconds * 1000:.2f} ms")
    print("--- generated Verilog (excerpt) ---")
    print("\n".join(verilog.value.text.splitlines()[:20]))

    # 4. resource estimate.
    print("\nresource estimate:", flow.resources().value)

    # 5. simulate against numpy.  Inputs map interface names to tensors;
    # write-only interfaces (Co) are zero-filled automatically.
    rng = np.random.default_rng(7)
    matrix = rng.integers(-1000, 1000, size=(SIZE, SIZE))
    outcome = flow.simulate(inputs={"Ai": matrix}).value
    output = outcome.memory_array("Co")
    print(f"\nsimulated {outcome.run.cycles} cycles on the {outcome.engine} "
          f"engine; matches numpy transpose: {np.array_equal(output, matrix.T)}")

    # Every stage remembers its provenance and cost:
    print(f"\n{flow.report()}")


if __name__ == "__main__":
    main()
