#!/usr/bin/env python3
"""Quickstart: describe, verify, compile and simulate a matrix transpose.

This walks the full HIR flow on the paper's Listing 1 design:

1. build the HIR design with the Python builder API,
2. verify the structure and the schedule,
3. run the optimization pipeline (precision reduction, CSE, ...),
4. generate synthesizable Verilog and estimate FPGA resources, and
5. simulate the generated design against a numpy reference.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.hir import DesignBuilder, MemrefType
from repro.ir import I32, print_module, verify
from repro.passes import optimization_pipeline, verify_schedule
from repro.resources import estimate_resources
from repro.sim import run_design
from repro.verilog import emit_design, generate_verilog

SIZE = 16


def build_transpose() -> DesignBuilder:
    """The paper's Listing 1: a pipelined 16x16 matrix transpose."""
    design = DesignBuilder("quickstart")
    in_type = MemrefType((SIZE, SIZE), I32, port="r")
    out_type = MemrefType((SIZE, SIZE), I32, port="w")
    with design.func("transpose", [("Ai", in_type), ("Co", out_type)]) as f:
        with f.for_loop(0, SIZE, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, SIZE, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                value = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv],
                                   time=j_loop.time)
                j_delayed = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(value, f.arg("Co"), [j_delayed, i_loop.iv],
                            time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
    return design


def main() -> None:
    design = build_transpose()

    # 1. structural verification + schedule verification.
    verify(design.module)
    report = verify_schedule(design.module)
    print("schedule verification:", "ok" if report.ok else report.render())

    # 2. the textual IR (round-trippable generic form).
    print("\n--- HIR (generic textual form, excerpt) ---")
    print("\n".join(print_module(design.module).splitlines()[:12]))

    # 3. optimize and generate Verilog.
    pipeline = optimization_pipeline()
    pipeline.run(design.module)
    print("\n--- pass pipeline ---")
    print(pipeline.timing_report())

    result = generate_verilog(design.module, top="transpose")
    print(f"\ncode generation took {result.seconds * 1000:.2f} ms")
    print("--- generated Verilog (excerpt) ---")
    print("\n".join(emit_design(result.design).splitlines()[:20]))

    # 4. resource estimate.
    print("\nresource estimate:", estimate_resources(result.design))

    # 5. simulate against numpy.  `engine="compiled"` selects the levelized,
    # event-driven engine; "interpreted" (the default) walks the AST, and
    # "differential" runs both in lockstep and checks them against each other.
    rng = np.random.default_rng(7)
    matrix = rng.integers(-1000, 1000, size=(SIZE, SIZE))
    in_type = MemrefType((SIZE, SIZE), I32, port="r")
    out_type = MemrefType((SIZE, SIZE), I32, port="w")
    run = run_design(result.design,
                     memories={"Ai": (in_type, matrix),
                               "Co": (out_type, np.zeros((SIZE, SIZE)))},
                     engine="compiled")
    output = run.memory_array("Co")
    print(f"\nsimulated {run.cycles} cycles; "
          f"matches numpy transpose: {np.array_equal(output, matrix.T)}")


if __name__ == "__main__":
    main()
