#!/usr/bin/env python3
"""The schedule verifier in action: Figures 1 and 2 of the paper.

Two broken designs are built on purpose:

* the array-add loop of Figure 1, whose ``hir.mem_write`` consumes the loop
  induction variable one cycle after the loop (II = 1) has already advanced
  it, and
* the multiply-accumulate of Figure 2, where a two-stage multiplier was
  replaced by a three-stage one without re-balancing the adder's other input.

The example prints the compiler diagnostics, then shows the corrected designs
passing verification.

Run with:  python examples/schedule_errors.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Flow
from repro.evaluation.figures import build_array_add, build_mac


def check(module) -> "object":
    """flow.verified() returns the schedule report without raising."""
    return Flow(module).verified().value


def main() -> None:
    print("=== Figure 1: invalid operand time ===")
    broken = check(build_array_add(correct=False))
    print(broken.render())
    fixed = check(build_array_add(correct=True))
    print("after inserting hir.delay on the index:",
          "no errors" if fixed.ok else fixed.render())

    print("\n=== Figure 2: pipeline imbalance ===")
    broken = check(build_mac(multiplier_stages=3))
    print(broken.render())
    balanced = check(build_mac(multiplier_stages=2))
    print("with the original 2-stage multiplier:",
          "no errors" if balanced.ok else balanced.render())


if __name__ == "__main__":
    main()
