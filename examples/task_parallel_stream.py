#!/usr/bin/env python3
"""Deterministic task-level parallelism: a flow-through FIFO stream.

Section 5.3 of the paper argues that HIR (like HDLs, unlike HLS) can express
*deterministic* producer/consumer parallelism with no handshake logic: when
two tasks run in lock step, no FIFO back-pressure is needed.  This example
builds exactly that — a producer loop streaming data into an on-chip buffer
and a consumer loop, started a fixed number of cycles later, streaming it
out — runs it through a `Flow` session, and shows the data arrives intact
and the two loops really do overlap in time.

Run with:  python examples/task_parallel_stream.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import Flow, FlowConfig
from repro.kernels import fifo
from repro.resources import estimate_resources

DEPTH = 128


def main() -> None:
    # pipeline="none" simulates the module exactly as written.
    flow = Flow.from_kernel("fifo", depth=DEPTH,
                            config=FlowConfig(pipeline="none"))
    report = flow.verified().value
    print("schedule verification:", "ok" if report.ok else report.render())

    print("resources (HIR flow-through FIFO):", flow.resources().value)
    # The hand-written baseline is already a Verilog Design (no HIR module),
    # so it is charged by the resource model directly.
    baseline = fifo.build_verilog_fifo(DEPTH)
    print("resources (hand-written Verilog FIFO):", estimate_resources(baseline))

    outcome = flow.simulate(seed=11).value
    out = outcome.memory_array("dout")
    expected = flow.reference(outcome.inputs)["dout"]
    print(f"\nstreamed {DEPTH} words in {outcome.run.cycles} cycles "
          f"(producer + consumer overlapped, no handshake)")
    print("data intact:", np.array_equal(out, expected))
    # A non-overlapped implementation would need ~2x DEPTH cycles plus
    # per-transfer handshaking; the overlap keeps total latency near DEPTH.
    print("overlap efficiency:", f"{DEPTH / outcome.run.cycles:.2f} words/cycle")


if __name__ == "__main__":
    main()
