#!/usr/bin/env python3
"""Deterministic task-level parallelism: a flow-through FIFO stream.

Section 5.3 of the paper argues that HIR (like HDLs, unlike HLS) can express
*deterministic* producer/consumer parallelism with no handshake logic: when
two tasks run in lock step, no FIFO back-pressure is needed.  This example
builds exactly that — a producer loop streaming data into an on-chip buffer
and a consumer loop, started a fixed number of cycles later, streaming it
out — then simulates it and shows the data arrives intact and the two loops
really do overlap in time.

Run with:  python examples/task_parallel_stream.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.kernels import fifo
from repro.passes import verify_schedule
from repro.resources import estimate_resources
from repro.sim import run_design
from repro.verilog import generate_verilog

DEPTH = 128


def main() -> None:
    artifacts = fifo.build(DEPTH)
    report = verify_schedule(artifacts.module)
    print("schedule verification:", "ok" if report.ok else report.render())

    result = generate_verilog(artifacts.module, top=artifacts.top)
    print("resources (HIR flow-through FIFO):", estimate_resources(result.design))
    baseline = fifo.build_verilog_fifo(DEPTH)
    print("resources (hand-written Verilog FIFO):", estimate_resources(baseline))

    inputs = artifacts.make_inputs(seed=11)
    run = run_design(
        result.design,
        memories={name: (memref_type, inputs[name])
                  for name, memref_type in artifacts.interfaces.items()},
        drain_cycles=16,
    )
    out = run.memory_array("dout")
    expected = artifacts.reference(inputs)["dout"]
    print(f"\nstreamed {DEPTH} words in {run.cycles} cycles "
          f"(producer + consumer overlapped, no handshake)")
    print("data intact:", np.array_equal(out, expected))
    # A non-overlapped implementation would need ~2x DEPTH cycles plus
    # per-transfer handshaking; the overlap keeps total latency near DEPTH.
    print("overlap efficiency:", f"{DEPTH / run.cycles:.2f} words/cycle")


if __name__ == "__main__":
    main()
