"""repro: a reproduction of the HIR hardware-accelerator IR (ASPLOS 2023).

Top-level layout:

* :mod:`repro.ir`         — MLIR-like IR core (SSA, ops, regions, parser/printer).
* :mod:`repro.hir`        — the HIR dialect: explicit schedules, memrefs, loops.
* :mod:`repro.passes`     — schedule verification and optimization passes.
* :mod:`repro.verilog`    — Verilog AST, FSM synthesis and the HIR code generator.
* :mod:`repro.resources`  — FPGA resource model (LUT/FF/DSP/BRAM estimation).
* :mod:`repro.sim`        — cycle-accurate simulators for generated designs.
* :mod:`repro.hls`        — a Vivado-HLS-like baseline compiler used by the evaluation.
* :mod:`repro.kernels`    — the paper's benchmark kernels (HIR and HLS variants).
* :mod:`repro.evaluation` — harness regenerating every table and figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
