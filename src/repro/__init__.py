"""repro: a reproduction of the HIR hardware-accelerator IR (ASPLOS 2023).

Top-level layout:

* :mod:`repro.flow`       — the `Flow` session API: one staged, cached entry
                            point for build → optimize → codegen → simulate.
* :mod:`repro.ir`         — MLIR-like IR core (SSA, ops, regions, parser/printer).
* :mod:`repro.hir`        — the HIR dialect: explicit schedules, memrefs, loops.
* :mod:`repro.passes`     — schedule verification and optimization passes.
* :mod:`repro.verilog`    — Verilog AST, FSM synthesis and the HIR code generator.
* :mod:`repro.resources`  — FPGA resource model (LUT/FF/DSP/BRAM estimation).
* :mod:`repro.sim`        — cycle-accurate simulators for generated designs.
* :mod:`repro.hls`        — a Vivado-HLS-like baseline compiler used by the evaluation.
* :mod:`repro.kernels`    — the paper's benchmark kernels (HIR and HLS variants)
                            plus new workloads (matvec, scan, SpMV, sorting).
* :mod:`repro.graph`      — multi-kernel dataflow composition: kernel graphs
                            lowered to one statically scheduled design.
* :mod:`repro.fuzz`       — differential fuzzing of all of the above: random
                            programs cross-checked over pipelines/engines/cache.
* :mod:`repro.obs`        — observability: tracing spans/counters, Chrome-trace
                            and JSONL exporters, cache-stats registry, the
                            engine-identical simulation profiler, bench schema.
* :mod:`repro.evaluation` — harness regenerating every table and figure.

The package namespace re-exports the session API lazily, so ``import repro``
stays light::

    from repro import Flow, FlowConfig
    flow = Flow.from_kernel("gemm", size=8)
    print(flow.validate(seed=1).value)

The same flow is scriptable from the shell: ``python -m repro --help``.
"""

__version__ = "0.2.0"

#: Lazily resolved top-level exports (PEP 562): name -> (module, attribute).
_LAZY_EXPORTS = {
    "Artifact": ("repro.flow", "Artifact"),
    "Flow": ("repro.flow", "Flow"),
    "FlowConfig": ("repro.flow", "FlowConfig"),
    "FlowError": ("repro.flow", "FlowError"),
    "DesignGraph": ("repro.graph", "DesignGraph"),
    "GraphError": ("repro.graph", "GraphError"),
    "KernelArtifacts": ("repro.kernels.base", "KernelArtifacts"),
    "build_kernel": ("repro.kernels", "build_kernel"),
    "build_scenario": ("repro.graph", "build_scenario"),
    "kernel_names": ("repro.kernels", "kernel_names"),
    "register_kernel": ("repro.kernels", "register_kernel"),
    "register_scenario": ("repro.graph", "register_scenario"),
    "run_fuzz": ("repro.fuzz", "run_fuzz"),
    "scenario_names": ("repro.graph", "scenario_names"),
    # Observability (repro.obs)
    "Tracer": ("repro.obs", "Tracer"),
    "get_tracer": ("repro.obs", "get_tracer"),
    "enable_tracing": ("repro.obs", "enable_tracing"),
    "disable_tracing": ("repro.obs", "disable_tracing"),
    "tracing": ("repro.obs", "tracing"),
    "write_chrome_trace": ("repro.obs", "write_chrome_trace"),
    "SimProfile": ("repro.obs", "SimProfile"),
    "all_cache_stats": ("repro.obs", "all_cache_stats"),
    "render_cache_report": ("repro.obs", "render_cache_report"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name):
    entry = _LAZY_EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(entry[0]), entry[1])
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
