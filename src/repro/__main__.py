"""``python -m repro`` — the Flow toolchain from the shell.

Subcommands mirror the :class:`repro.flow.Flow` stages:

* ``list``      — registered kernels, simulation engines, pass pipelines.
* ``build``     — kernel → (optimize) → Verilog [+ resource estimate].
* ``simulate``  — one stimulus set, checked against the numpy reference.
* ``sweep``     — N stimulus lanes on the batched engine, all checked.
* ``report``    — the full evaluation harness (Tables 4–6, Figures 1–3).
* ``compose``   — multi-kernel dataflow scenarios: build, schedule and
  simulate a registered :class:`repro.graph.DesignGraph` end to end.
* ``fuzz``      — differential fuzzing: random HIR programs cross-checked
  over pipelines, engines, composition and the Flow stage cache.
* ``stats``     — run a representative workload and report every registered
  cache (hit rates, capacities) plus the DSE exploration and resilience
  counters.
* ``store``     — inspect and maintain the persistent artifact store
  (``stats``/``verify``/``gc``/``clear``); see :mod:`repro.store`.
* ``serve``     — run the flow service: an HTTP front end on the artifact
  store that coalesces identical concurrent requests and shards
  independent ones across a supervised worker pool (:mod:`repro.serve`).
* ``remote``    — the same verbs as the local CLI, executed by a running
  ``repro serve`` instance (``build``/``simulate``/``sweep``/``compose``
  plus ``stats``/``health``/``shutdown``).

Observability: ``--trace FILE`` (on build/simulate/sweep/compose/stats)
writes a Chrome ``trace_event`` JSON of the whole run — load it in
ui.perfetto.dev or chrome://tracing.  ``--profile`` (simulate/sweep/compose)
collects and prints the per-op simulation profile.

Robustness: every ``REPRO_*`` variable is validated before dispatch (a typo
exits with a one-line error instead of silently reverting to a default), and
a ``REPRO_FAULT_PLAN`` fault-injection plan (see :mod:`repro.resilience`)
applies to the whole command.  File outputs (``-o``, ``--trace``) are
published atomically — an interrupted command never leaves a torn file.

Kernel size parameters are passed as repeated ``-p key=value`` options::

    python -m repro build gemm -p size=8 --resources
    python -m repro simulate transpose -p size=8 --engine compiled
    python -m repro sweep gemm -p size=4 --seeds 8
    python -m repro compose --list
    python -m repro compose gemm_pipeline --seed 3 --schedule
    python -m repro report --quick --validate
    python -m repro fuzz --seed 0 --count 100 --max-ops 40
    python -m repro serve --port 8731 --workers 4
    python -m repro remote build gemm -p size=8 --url http://127.0.0.1:8731
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, int]:
    parameters: Dict[str, int] = {}
    for pair in pairs or []:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"bad -p {pair!r}: expected key=value")
        try:
            parameters[key] = int(value)
        except ValueError:
            raise SystemExit(f"bad -p {pair!r}: value must be an integer")
    return parameters


def _flow_config(arguments):
    from repro.flow import FlowConfig

    overrides = {}
    if getattr(arguments, "engine", None) is not None:
        overrides["engine"] = arguments.engine
    if getattr(arguments, "pipeline", None) is not None:
        overrides["pipeline"] = arguments.pipeline
    if getattr(arguments, "jobs", None) is not None:
        overrides["dse_jobs"] = arguments.jobs
    if getattr(arguments, "trace", None):
        overrides["trace"] = True
    if getattr(arguments, "profile", False):
        overrides["profile"] = True
    # Environment REPRO_* variables participate via from_env, giving the CLI
    # the same precedence chain as the library: flag > env > default.
    return FlowConfig.from_env(**overrides)


def _kernel_flow(arguments):
    from repro.flow import Flow

    return Flow.from_kernel(arguments.kernel,
                            config=_flow_config(arguments),
                            **_parse_params(arguments.param))


def _cmd_list(arguments) -> int:
    from repro.flow import PIPELINES
    from repro.graph import scenario_names
    from repro.kernels import kernel_names
    from repro.sim import available_engines, get_default_engine

    print("kernels  :", ", ".join(kernel_names()))
    print("scenarios:", ", ".join(scenario_names()))
    print("engines  :", ", ".join(available_engines()),
          f"(default: {get_default_engine()})")
    print("pipelines:", ", ".join(PIPELINES))
    return 0


def _cmd_build(arguments) -> int:
    from repro.store.io import atomic_write_text

    flow = _kernel_flow(arguments)
    verilog = flow.verilog()
    if arguments.output:
        atomic_write_text(arguments.output, verilog.value.text)
        print(f"wrote {len(verilog.value.text.splitlines())} lines of Verilog "
              f"to {arguments.output}")
    else:
        print(verilog.value.text)
    if arguments.resources:
        print(f"\nresources: {flow.resources().value}", file=sys.stderr)
    print(f"\n{flow.report()}", file=sys.stderr)
    return 0


def _print_profile(profile) -> None:
    if profile is not None:
        print(profile.render(), file=sys.stderr)


def _cmd_simulate(arguments) -> int:
    flow = _kernel_flow(arguments)
    artifact = flow.validate(seed=arguments.seed)
    outcome = artifact.value
    status = "ok" if outcome.ok else "MISMATCH"
    print(f"{outcome.name}: engine={outcome.engine} seed={arguments.seed} "
          f"cycles={outcome.cycles} {status}")
    if arguments.profile and outcome.run is not None:
        _print_profile(outcome.run.profile)
    print(flow.report(), file=sys.stderr)
    return 0 if outcome.ok else 1


def _check_batch_lanes(flow, seeds, outcome) -> int:
    """Validate and print one batched lane per seed; returns the failure
    count (shared by the ``sweep`` and ``compose --seeds`` subcommands)."""
    from repro.flow import outputs_match

    failures = 0
    for lane, inputs in enumerate(outcome.inputs_per_lane):
        ok = bool(outcome.run.done[lane])
        if ok and flow.reference is not None:
            ok = outputs_match(flow.reference(inputs),
                               lambda name: outcome.memory_array(name, lane),
                               flow.output_warmup)
        failures += 0 if ok else 1
        print(f"lane {lane:>3}: seed={seeds[lane]} "
              f"cycles={int(outcome.run.cycles[lane])} "
              f"{'ok' if ok else 'MISMATCH'}")
    return failures


def _cmd_sweep(arguments) -> int:
    flow = _kernel_flow(arguments)
    seeds = list(range(arguments.seeds))
    artifact = flow.simulate_batch(seeds)
    failures = _check_batch_lanes(flow, seeds, artifact.value)
    if arguments.profile and artifact.value.profiles:
        print("lane 0 profile:", file=sys.stderr)
        _print_profile(artifact.value.profiles[0])
    rate = len(seeds) / artifact.seconds if artifact.seconds > 0 else 0.0
    print(f"{len(seeds)} lanes in {artifact.seconds:.2f}s "
          f"({rate:.1f} scenarios/s), {failures} mismatching",
          file=sys.stderr)
    return 0 if failures == 0 else 1


def _cmd_compose(arguments) -> int:
    from repro.flow import Flow
    from repro.graph import build_scenario, scenario_names

    if arguments.list or arguments.scenario is None:
        if arguments.scenario is None and not arguments.list:
            raise SystemExit(
                "compose needs a scenario name (or --list); registered: "
                + ", ".join(scenario_names()))
        print("scenarios:", ", ".join(scenario_names()))
        return 0
    graph = build_scenario(arguments.scenario, **_parse_params(arguments.param))
    flow = Flow.from_graph(graph, config=_flow_config(arguments))
    artifacts = flow.compose().value
    if arguments.schedule:
        print(artifacts.describe_schedule(), file=sys.stderr)
    if arguments.seeds:
        seeds = list(range(arguments.seeds))
        outcome = flow.simulate_batch(seeds).value
        failures = _check_batch_lanes(flow, seeds, outcome)
        if arguments.profile and outcome.profiles:
            print("lane 0 profile:", file=sys.stderr)
            _print_profile(outcome.profiles[0])
        print(flow.report(), file=sys.stderr)
        return 0 if failures == 0 else 1
    validated = flow.validate(seed=arguments.seed).value
    if arguments.profile and validated.run is not None:
        _print_profile(validated.run.profile)
    status = "ok" if validated.ok else "MISMATCH"
    print(f"{validated.name}: {len(graph.nodes)} nodes, "
          f"{len(graph.edges)} stream edges, engine={validated.engine} "
          f"seed={arguments.seed} cycles={validated.cycles} {status}")
    print(flow.report(), file=sys.stderr)
    return 0 if validated.ok else 1


def _cmd_report(arguments) -> int:
    from repro.evaluation import runner

    results = runner.run_all(quick=arguments.quick,
                             sim_engine=arguments.engine,
                             validate=arguments.validate,
                             jobs=arguments.jobs or 1,
                             timing=arguments.timing)
    print(results.render())
    return 0


def _cmd_fuzz(arguments) -> int:
    from repro.fuzz import DEFAULT_OUT_DIR, ORACLES, run_fuzz

    out_dir = arguments.out_dir or DEFAULT_OUT_DIR
    oracles = tuple(ORACLES)
    if arguments.oracles:
        oracles = tuple(name.strip()
                        for name in arguments.oracles.split(",") if name.strip())
        unknown = sorted(set(oracles) - set(ORACLES))
        if unknown:
            raise SystemExit(
                f"unknown oracle(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ORACLES)}")
    report = run_fuzz(seed=arguments.seed,
                      count=arguments.count,
                      max_ops=arguments.max_ops,
                      out_dir=None if arguments.no_repro else out_dir,
                      oracles=oracles,
                      shrink_failures=not arguments.no_shrink,
                      log=lambda line: print(line, file=sys.stderr))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_stats(arguments) -> int:
    """Exercise every cache with a representative workload, then report.

    The caches (Flow stages, simulator compile cache, DSE schedule memo)
    are in-process, so ``stats`` runs its own small build → validate →
    sweep → HLS-compile workload — twice where repetition is what produces
    hits — and then renders the registry.
    """
    from repro.flow import Flow
    from repro.hls import compile_program
    from repro.obs.cachestats import ensure_builtin_caches, render_cache_report
    from repro.obs.export import stats_tree
    from repro.obs.tracer import TRACER

    ensure_builtin_caches()
    TRACER.enable()
    config = _flow_config(arguments).with_(trace=True)
    flow = Flow.from_kernel(arguments.kernel, config=config,
                            **_parse_params(arguments.param))
    with TRACER.span("stats.workload", cat="cli", kernel=arguments.kernel):
        flow.validate(seed=0)
        flow.validate(seed=1)            # hits every compile stage
        flow.simulate_batch(range(arguments.seeds))
        # Second sweep re-uses the engine's compiled artifacts.
        flow.simulate_batch(range(arguments.seeds))
        artifacts = flow.source
        if getattr(artifacts, "hls_program", None) is not None:
            options = config.hls_options()
            with config.limits():
                # Second compile re-explores the same design points: the
                # DSE schedule memo serves them.
                compile_program(artifacts.hls_program, artifacts.hls_function,
                                options=options)
                compile_program(artifacts.hls_program, artifacts.hls_function,
                                options=options)
    print(f"workload: {arguments.kernel} x (validate x2 + "
          f"{arguments.seeds}-lane sweep + HLS compile x2)\n")
    print(render_cache_report())
    dse_counters = {name: value
                    for name, value in sorted(TRACER.counters.items())
                    if name.startswith("dse.")}
    if dse_counters:
        print("\nDSE counters:")
        for name, value in dse_counters.items():
            print(f"  {name:<24} {int(value)}")
    _print_resilience_counters()
    if arguments.tree:
        print(f"\n{stats_tree(TRACER)}")
    return 0


def _print_resilience_counters() -> None:
    """Store activity and fault/recovery counters (always-on, process-wide)."""
    from repro.resilience import resilience_counters
    from repro.store.store import store_counters

    store = {f"store.{name}": value
             for name, value in sorted(store_counters().items()) if value}
    recovery = dict(sorted(resilience_counters().items()))
    if store:
        print("\nstore counters:")
        for name, value in store.items():
            print(f"  {name:<24} {value}")
    if recovery:
        print("\nresilience counters:")
        for name, value in recovery.items():
            print(f"  {name:<24} {value}")


def _cmd_store(arguments) -> int:
    from repro.store import default_store, get_store

    store = (get_store(arguments.dir) if arguments.dir
             else default_store())
    if store is None:
        print("error: no artifact store configured; set REPRO_STORE_DIR or "
              "pass --dir", file=sys.stderr)
        return 2
    action = arguments.action
    if action == "stats":
        print(store.stats().render())
        return 0
    if action == "verify":
        report = store.verify()
        print(report.render())
        return 0 if report.ok else 1
    if action == "gc":
        if arguments.max_bytes is None and arguments.max_blobs is None:
            print("error: gc needs --max-bytes and/or --max-blobs",
                  file=sys.stderr)
            return 2
        print(store.gc(max_bytes=arguments.max_bytes,
                       max_blobs=arguments.max_blobs).render())
        return 0
    removed = store.clear()
    print(f"cleared {removed} blob(s) from {store.root}")
    return 0


def _cmd_serve(arguments) -> int:
    """Run the flow service until SIGTERM/SIGINT (or ``POST /v1/shutdown``).

    The bound URL is printed to stdout first (one parseable line), so
    launchers using ``--port 0`` can discover the ephemeral port.  Shutdown
    is always clean: stop accepting, drain the shard pool, then print the
    serve counters to stderr.
    """
    import signal
    import threading

    from repro.serve import ServeServer

    server = ServeServer(host=arguments.host, port=arguments.port,
                         workers=arguments.workers,
                         timeout=arguments.timeout)
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.start()
    store = "off" if server.store is None else server.store.root
    print(f"serving on {server.url}", flush=True)
    print(f"workers={server.workers} timeout="
          f"{server.timeout if server.timeout is not None else 'none'} "
          f"store={store}", file=sys.stderr, flush=True)
    try:
        while not stop.is_set() and server._serve_thread.is_alive():
            stop.wait(0.2)
    finally:
        server.stop()
        counters = {name: value for name, value in
                    sorted(server.counters.items()) if value}
        summary = ", ".join(f"{name.removeprefix('serve.')}={value}"
                            for name, value in counters.items()) or "idle"
        print(f"serve: shut down cleanly ({summary})", file=sys.stderr)
    return 0


def _cmd_remote(arguments) -> int:
    """Mirror the local CLI verbs through a running ``repro serve``."""
    import json as _json

    from repro.serve import ServeClient, ServeRequest
    from repro.store.io import atomic_write_text

    client = ServeClient(arguments.url)
    action = arguments.action
    if action in ("stats", "health"):
        payload = client.stats() if action == "stats" else client.health()
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if action == "shutdown":
        client.shutdown()
        print(f"shutdown requested at {client.url}")
        return 0
    if arguments.target is None:
        raise SystemExit(f"remote {action} needs a target name")
    request = ServeRequest.make(
        action, arguments.target, _parse_params(arguments.param),
        seed=arguments.seed,
        seeds=arguments.seeds if action == "sweep" else None,
        pipeline=arguments.pipeline, engine=arguments.engine)
    response = client.request(request)
    if not response.ok:
        error = response.error or {}
        print(f"error: [{error.get('type', 'unknown')}] "
              f"{error.get('message', 'no message')}", file=sys.stderr)
        return 1
    origin = (f"{response.provenance} shard={response.shard} "
              f"key={response.key[:12]} {response.seconds:.2f}s")
    result = response.result()
    if action == "build":
        text = result["verilog"]
        if arguments.output:
            atomic_write_text(arguments.output, text)
            print(f"wrote {len(text.splitlines())} lines of Verilog to "
                  f"{arguments.output}")
        else:
            print(text)
        print(f"{request.describe()}: resources={result['resources']} "
              f"({origin})", file=sys.stderr)
        return 0
    if action == "sweep":
        for lane in result["lanes"]:
            print(f"lane {lane['seed']:>3}: cycles={lane['cycles']} "
                  f"{'ok' if lane['ok'] else 'MISMATCH'}")
        print(f"{request.describe()}: {len(result['lanes'])} lanes, "
              f"{result['mismatches']} mismatching ({origin})",
              file=sys.stderr)
        return 0 if result["mismatches"] == 0 else 1
    # simulate / compose
    status = "ok" if result["ok"] else "MISMATCH"
    print(f"{request.describe()}: engine={result['engine']} "
          f"seed={result['seed']} cycles={result['cycles']} {status}")
    print(origin, file=sys.stderr)
    return 0 if result["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="The HIR flow: build, optimize, codegen, simulate.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_kernel_options(sub, engine=True):
        sub.add_argument("kernel", help="registered kernel name (see `list`)")
        sub.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                         help="kernel size parameter (repeatable)")
        sub.add_argument("--pipeline", default=None,
                         choices=("optimize", "verify", "none", "legacy"),
                         help="pass pipeline (default: optimize)")
        if engine:
            sub.add_argument("--engine", default=None,
                             help="simulation engine (interpreted, compiled,"
                                  " differential or vector; default:"
                                  " process/env)")

    def add_obs_options(sub, profile=True):
        sub.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome trace_event JSON of this run "
                              "(open in ui.perfetto.dev)")
        if profile:
            sub.add_argument("--profile", action="store_true",
                             help="collect and print the simulation profile")

    list_parser = subparsers.add_parser(
        "list", help="registered kernels, engines and pipelines")
    list_parser.set_defaults(handler=_cmd_list)

    build = subparsers.add_parser(
        "build", help="compile a kernel to Verilog")
    add_kernel_options(build)
    build.add_argument("-o", "--output", default=None,
                       help="write the Verilog here instead of stdout")
    build.add_argument("--resources", action="store_true",
                       help="append an FPGA resource estimate")
    add_obs_options(build, profile=False)
    build.set_defaults(handler=_cmd_build)

    simulate = subparsers.add_parser(
        "simulate", help="simulate one stimulus set and check it")
    add_kernel_options(simulate)
    simulate.add_argument("--seed", type=int, default=0,
                          help="stimulus seed (default 0)")
    add_obs_options(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    # No --engine here: a sweep always runs the batched engine.
    sweep = subparsers.add_parser(
        "sweep", help="run N seeds on the batched engine")
    add_kernel_options(sweep, engine=False)
    sweep.add_argument("--seeds", type=int, default=8,
                       help="number of stimulus lanes (default 8)")
    add_obs_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    compose = subparsers.add_parser(
        "compose",
        help="build and simulate a multi-kernel dataflow scenario")
    compose.add_argument("scenario", nargs="?", default=None,
                         help="registered scenario name (see --list)")
    compose.add_argument("--list", action="store_true",
                         help="list registered scenarios and exit")
    compose.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                         help="scenario size parameter (repeatable)")
    compose.add_argument("--pipeline", default=None,
                         choices=("optimize", "verify", "none", "legacy"),
                         help="pass pipeline (default: optimize)")
    compose.add_argument("--engine", default=None,
                         help="simulation engine (interpreted, compiled,"
                              " differential or vector; default:"
                              " process/env)")
    compose.add_argument("--seed", type=int, default=0,
                         help="stimulus seed for the validation run")
    compose.add_argument("--seeds", type=int, default=None,
                         help="run N lanes on the batched engine instead")
    compose.add_argument("--schedule", action="store_true",
                         help="print the static node schedule")
    add_obs_options(compose)
    compose.set_defaults(handler=_cmd_compose)

    report = subparsers.add_parser(
        "report", help="regenerate the paper's tables and figures")
    report.add_argument("--quick", action="store_true",
                        help="reduced kernel sizes")
    report.add_argument("--engine", default=None,
                        help="simulation engine for simulated experiments")
    report.add_argument("--validate", action="store_true",
                        help="cross-check every kernel against its reference")
    report.add_argument("--jobs", type=int, default=None,
                        help="DSE parallelism for the --timing breakdown")
    report.add_argument("--timing", action="store_true",
                        help="append compile-timing breakdowns")
    report.set_defaults(handler=_cmd_report)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: random programs over every oracle")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first program seed (default 0)")
    fuzz.add_argument("--count", type=int, default=100,
                      help="number of programs to generate (default 100)")
    fuzz.add_argument("--max-ops", type=int, default=40,
                      help="compute-op budget per program (default 40)")
    fuzz.add_argument("--out-dir", default=None,
                      help="directory for minimized reproducer scripts "
                           "(default fuzz-failures/)")
    fuzz.add_argument("--oracles", default=None,
                      help="comma-separated subset of: pipeline, engines, "
                           "compose, flow-cache, profile, faults "
                           "(default: all)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report raw failures without minimizing them")
    fuzz.add_argument("--no-repro", action="store_true",
                      help="do not write reproducer scripts")
    fuzz.set_defaults(handler=_cmd_fuzz)

    stats = subparsers.add_parser(
        "stats",
        help="run a representative workload and report every cache")
    stats.add_argument("kernel", nargs="?", default="gemm",
                       help="kernel to exercise the caches with "
                            "(default gemm)")
    stats.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                       help="kernel size parameter (repeatable)")
    stats.add_argument("--engine", default=None,
                       help="simulation engine (interpreted, compiled,"
                            " differential or vector; default:"
                            " process/env)")
    stats.add_argument("--seeds", type=int, default=4,
                       help="batched-sweep lanes in the workload (default 4)")
    stats.add_argument("--tree", action="store_true",
                       help="append the aggregated span tree")
    add_obs_options(stats, profile=False)
    stats.set_defaults(handler=_cmd_stats)

    store = subparsers.add_parser(
        "store",
        help="inspect and maintain the persistent artifact store")
    store.add_argument("action",
                       choices=("stats", "verify", "gc", "clear"),
                       help="stats: contents summary; verify: checksum every "
                            "blob (quarantining corrupt ones); gc: evict "
                            "least-recently-used blobs down to a budget; "
                            "clear: remove every blob")
    store.add_argument("--dir", default=None,
                       help="store directory (default: $REPRO_STORE_DIR)")
    store.add_argument("--max-bytes", type=int, default=None,
                       help="gc: keep at most this many payload bytes")
    store.add_argument("--max-blobs", type=int, default=None,
                       help="gc: keep at most this many blobs")
    store.set_defaults(handler=_cmd_store)

    serve = subparsers.add_parser(
        "serve",
        help="run the flow service: coalescing, sharded HTTP front end "
             "on the artifact store")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 (default) picks a free port — the "
                            "bound URL is printed on stdout")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker shards (default $REPRO_SERVE_WORKERS "
                            "or 4)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-request timeout in seconds (default "
                            "$REPRO_SERVE_TIMEOUT or unlimited)")
    serve.set_defaults(handler=_cmd_serve)

    remote = subparsers.add_parser(
        "remote",
        help="run CLI verbs against a `repro serve` instance")
    remote.add_argument("action",
                        choices=("build", "simulate", "sweep", "compose",
                                 "stats", "health", "shutdown"),
                        help="service verb (build/simulate/sweep/compose "
                             "mirror the local CLI)")
    remote.add_argument("target", nargs="?", default=None,
                        help="kernel (build/simulate/sweep) or scenario "
                             "(compose) name")
    remote.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                        help="kernel/scenario size parameter (repeatable)")
    remote.add_argument("--seed", type=int, default=0,
                        help="stimulus seed (simulate/compose; default 0)")
    remote.add_argument("--seeds", type=int, default=8,
                        help="sweep: batched stimulus lanes (default 8)")
    remote.add_argument("--pipeline", default=None,
                        choices=("optimize", "verify", "none", "legacy"),
                        help="pass pipeline override")
    remote.add_argument("--engine", default=None,
                        help="simulation engine override")
    remote.add_argument("--url", default=None,
                        help="server URL (default $REPRO_SERVE_URL)")
    remote.add_argument("-o", "--output", default=None,
                        help="build: write the Verilog here instead of "
                             "stdout")
    remote.set_defaults(handler=_cmd_remote)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and dispatch; tool errors become one-line messages, not
    tracebacks (the contract ``tests/cli`` pins down)."""
    from repro.envcheck import environment_error
    from repro.ir.errors import IRError
    from repro.kernels import UnknownKernelError

    arguments = build_parser().parse_args(argv)
    problem = environment_error()
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    trace_path = getattr(arguments, "trace", None)
    if trace_path:
        # Enable before dispatch so every span of the command — Flow
        # stages, passes, DSE, simulation — lands in one trace.
        from repro.obs.tracer import TRACER
        TRACER.enable()
    try:
        return arguments.handler(arguments)
    except UnknownKernelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except IRError as error:
        # FlowError, ScheduleError, SimulationError... — user-facing tool
        # errors with curated messages; unexpected exceptions still traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if trace_path:
            from repro.obs.export import write_chrome_trace
            write_chrome_trace(trace_path)
            print(f"wrote Chrome trace to {trace_path} "
                  f"(open in ui.perfetto.dev)", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
