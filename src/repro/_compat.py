"""Deprecation plumbing for the pre-`Flow` entry points.

PR 3 consolidated the toolchain behind :class:`repro.flow.Flow`; the old
free functions keep working as thin shims that forward to the same
implementations the Flow stages use, emitting a :class:`DeprecationWarning`
that names the replacement.  Policy: shims stay for at least two further
PRs after their deprecation is announced in the README, then may be removed.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard deprecation warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see the README migration "
        "table). The shim forwards to the same implementation and will be "
        "removed in a future release.",
        DeprecationWarning,
        stacklevel=3,
    )


__all__ = ["warn_deprecated"]
