"""Fail-fast validation of the ``REPRO_*`` environment variables.

The library deliberately *tolerates* malformed environment values (a busted
``REPRO_DSE_JOBS`` silently falls back to serial so an import never fails),
but the CLI should not: a typo in a tuning knob that silently reverts to the
default is the kind of quiet misconfiguration that wastes an afternoon.
``python -m repro`` therefore validates the whole environment once at parse
time and exits with a one-line error (status 2) before doing any work.

:func:`validate_environment` is pure (pass any mapping), so tests can probe
it without touching the real environment.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Mapping, Optional

__all__ = ["VALIDATED_VARS", "validate_environment", "environment_error"]


def _positive_int(value: str) -> Optional[str]:
    try:
        parsed = int(value)
    except ValueError:
        return f"expected a positive integer, got {value!r}"
    if parsed < 1:
        return f"expected a positive integer, got {parsed}"
    return None


def _non_negative_int(value: str) -> Optional[str]:
    try:
        parsed = int(value)
    except ValueError:
        return f"expected a non-negative integer, got {value!r}"
    if parsed < 0:
        return f"expected a non-negative integer, got {parsed}"
    return None


def _positive_float(value: str) -> Optional[str]:
    try:
        parsed = float(value)
    except ValueError:
        return f"expected a positive number of seconds, got {value!r}"
    if not parsed > 0:
        return f"expected a positive number of seconds, got {value!r}"
    return None


def _executor(value: str) -> Optional[str]:
    if value not in ("thread", "process"):
        return f"expected 'thread' or 'process', got {value!r}"
    return None


def _engine(value: str) -> Optional[str]:
    from repro.sim import available_engines
    engines = available_engines()
    if value not in engines:
        return f"expected one of {', '.join(engines)}; got {value!r}"
    return None


def _store_dir(value: str) -> Optional[str]:
    # Blank disables persistence; a usable value must not name an existing
    # non-directory (the store would clobber or trip over it much later).
    if not value.strip():
        return None
    if os.path.exists(value) and not os.path.isdir(value):
        return f"{value!r} exists and is not a directory"
    return None


def _serve_url(value: str) -> Optional[str]:
    from urllib.parse import urlparse
    if not value.strip():
        return None
    parsed = urlparse(value)
    if parsed.scheme not in ("http", "https") or not parsed.netloc:
        return (f"expected an http(s)://host:port URL, got {value!r}")
    return None


def _fault_plan(value: str) -> Optional[str]:
    from repro.resilience import FaultPlan, FaultPlanError
    try:
        FaultPlan.parse(value)
    except FaultPlanError as error:
        return str(error)
    return None


#: Variable name -> validator returning an error string (or None if fine).
VALIDATED_VARS: Dict[str, Callable[[str], Optional[str]]] = {
    "REPRO_DSE_JOBS": _positive_int,
    "REPRO_DSE_MEMO_SIZE": _non_negative_int,
    "REPRO_SIM_CACHE_SIZE": _non_negative_int,
    "REPRO_DSE_TIMEOUT": _positive_float,
    "REPRO_DSE_EXECUTOR": _executor,
    "REPRO_SIM_ENGINE": _engine,
    "REPRO_STORE_DIR": _store_dir,
    "REPRO_FAULT_PLAN": _fault_plan,
    "REPRO_SERVE_WORKERS": _positive_int,
    "REPRO_SERVE_TIMEOUT": _positive_float,
    "REPRO_SERVE_URL": _serve_url,
}


def validate_environment(
        environ: Optional[Mapping[str, str]] = None) -> List[str]:
    """Every problem with the ``REPRO_*`` variables in ``environ``.

    Unset variables are fine (they mean "inherit the default"); set ones
    must parse.  Returns one ``"NAME: problem"`` string per bad variable,
    in a stable (sorted) order; an empty list means the environment is
    clean.
    """
    environ = os.environ if environ is None else environ
    problems: List[str] = []
    for name in sorted(VALIDATED_VARS):
        value = environ.get(name)
        if value is None:
            continue
        problem = VALIDATED_VARS[name](value)
        if problem is not None:
            problems.append(f"{name}: {problem}")
    return problems


def environment_error(
        environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """A one-line description of the first environment problem, or None."""
    problems = validate_environment(environ)
    if not problems:
        return None
    suffix = "" if len(problems) == 1 else \
        f" (+{len(problems) - 1} more problem(s))"
    return f"invalid environment: {problems[0]}{suffix}"
