"""Evaluation harness: regenerates every table and figure of the paper."""

from repro.evaluation import figures, paper_data, runner, table4, table5, table6
from repro.evaluation.runner import EvaluationResults, run_all

__all__ = [
    "figures",
    "paper_data",
    "runner",
    "table4",
    "table5",
    "table6",
    "EvaluationResults",
    "run_all",
]
