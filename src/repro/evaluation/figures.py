"""Figures 1–3 of the paper, regenerated.

* **Figure 1** — the schedule verifier's diagnostic for the array-add design
  whose ``hir.mem_write`` consumes the induction variable one cycle too late
  in an II=1 loop.
* **Figure 2** — the pipeline-imbalance diagnostic for the multiply-accumulate
  design after its two-stage multiplier is replaced by a three-stage one.
* **Figure 3** — memory banking: the bank layout of
  ``!hir.memref<3*2*i32, packing=[1]>`` and the banked storage the code
  generator instantiates for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.module import ModuleOp
from repro.ir.types import I8, I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.passes import (
    INVALID_OPERAND_TIME,
    PIPELINE_IMBALANCE,
    RESULT_DELAY_MISMATCH,
    VerificationReport,
    verify_schedule,
)
from repro.flow import Flow, FlowConfig
from repro.verilog.ast import MemoryDecl, RegDecl
from repro.evaluation.paper_data import PAPER_FIGURE3_BANKS


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #


def build_array_add(correct: bool = False, size: int = 128) -> ModuleOp:
    """The Figure 1a design; ``correct=True`` applies the fix (delay the index)."""
    design = DesignBuilder("array_add")
    a_type = MemrefType((size,), I32, port="r")
    b_type = MemrefType((size,), I32, port="r")
    c_type = MemrefType((size,), I32, port="w")
    with design.func("Array_Add", [("A", a_type), ("B", b_type), ("C", c_type)]) as f:
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1, iv_type=I8,
                        iv_name="i") as loop:
            f.yield_(loop.time, offset=1)
            a_value = f.mem_read(f.arg("A"), [loop.iv], time=loop.time)
            b_value = f.mem_read(f.arg("B"), [loop.iv], time=loop.time)
            total = f.add(a_value, b_value)
            index = (f.delay(loop.iv, 1, time=loop.time) if correct else loop.iv)
            f.mem_write(total, f.arg("C"), [index], time=loop.time, offset=1)
        f.return_()
    return design.module


@dataclass
class FigureResult:
    """A regenerated diagnostic figure."""

    title: str
    report: VerificationReport
    expected_kinds: List[str]

    @property
    def reproduced(self) -> bool:
        found = {d.kind for d in self.report.diagnostics}
        return all(kind in found for kind in self.expected_kinds)

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        lines.append(self.report.render())
        lines.append(f"reproduced: {self.reproduced}")
        return "\n".join(lines)


def figure1() -> FigureResult:
    report = verify_schedule(build_array_add(correct=False))
    return FigureResult(
        "Figure 1: scheduling error detected in the array-add design",
        report,
        [INVALID_OPERAND_TIME],
    )


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #


def build_mac(multiplier_stages: int = 3) -> ModuleOp:
    """The Figure 2a design: a MAC whose multiplier has N pipeline stages.

    The design is written (and its signature declared) for a two-stage
    multiplier; instantiating a three-stage multiplier without re-balancing
    the adder's other input is the bug Figure 2 illustrates.
    """
    design = DesignBuilder("mac_design")
    design.extern_func(f"mult_{multiplier_stages}stage", [I32, I32], [I32],
                       result_delays=[multiplier_stages],
                       arg_names=["a", "b"])
    with design.func("mac", [("a", I32), ("b", I32), ("c", I32)],
                     result_types=[I32], result_delays=[3]) as f:
        product = f.call(f"mult_{multiplier_stages}stage",
                         [f.arg("a"), f.arg("b")], time=f.time)[0]
        c_delayed = f.delay(f.arg("c"), 2, time=f.time)
        total = f.add(product, c_delayed)
        registered = f.delay(total, 1, time=f.time, offset=2)
        f.return_([registered])
    return design.module


def figure2() -> FigureResult:
    report = verify_schedule(build_mac(multiplier_stages=3))
    return FigureResult(
        "Figure 2: pipeline imbalance after swapping in a 3-stage multiplier",
        report,
        [PIPELINE_IMBALANCE, RESULT_DELAY_MISMATCH],
    )


# --------------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------------- #


@dataclass
class Figure3Result:
    memref: MemrefType
    bank_layout: Dict[int, List[Tuple[int, int]]]
    generated_banks: int
    generated_storage: List[str]

    @property
    def reproduced(self) -> bool:
        return self.bank_layout == PAPER_FIGURE3_BANKS and self.generated_banks == 2

    def render(self) -> str:
        lines = [f"Figure 3: memory banking of {self.memref}"]
        for bank, elements in sorted(self.bank_layout.items()):
            cells = ", ".join(f"A[{i},{j}]" for i, j in elements)
            lines.append(f"  buffer {bank}: {cells}")
        lines.append(f"  generated storage: {', '.join(self.generated_storage)}")
        lines.append(f"  reproduced: {self.reproduced}")
        return "\n".join(lines)


def figure3() -> Figure3Result:
    """Bank layout of the Figure 3 memref plus the storage codegen creates."""
    memref = MemrefType((3, 2), I32, port="r", packing=(1,))
    layout: Dict[int, List[Tuple[int, int]]] = {}
    for i in range(3):
        for j in range(2):
            layout.setdefault(memref.bank_of((i, j)), []).append((i, j))

    # A tiny design that allocates the Figure 3 tensor and touches each bank,
    # so the code generator instantiates the banked storage.
    design = DesignBuilder("banking_demo")
    out_type = MemrefType((4,), I32, port="w")
    with design.func("banking_demo", [("out", out_type)]) as f:
        reader, writer = f.alloc((3, 2), I32, ports=("r", "w"), packing=[1],
                                 name="A")
        with f.for_loop(0, 3, 1, time=f.time, iter_offset=1, iv_name="r") as loop:
            f.mem_write(1, writer, [loop.iv, 0], time=loop.time)
            f.mem_write(2, writer, [loop.iv, 1], time=loop.time)
            f.yield_(loop.time, offset=1)
        value0 = f.mem_read(reader, [0, 0], time=loop.done, offset=1)
        value1 = f.mem_read(reader, [0, 1], time=loop.done, offset=2)
        f.mem_write(value0, f.arg("out"), [0], time=loop.done, offset=2)
        f.mem_write(value1, f.arg("out"), [1], time=loop.done, offset=3)
        f.return_()
    flow = Flow(design, top="banking_demo", config=FlowConfig(pipeline="none"))
    module = flow.design.top_module
    storage = [item.name for item in module.items
               if isinstance(item, (MemoryDecl, RegDecl)) and item.name.startswith("A_")]
    banks = sum(1 for item in module.items
                if isinstance(item, MemoryDecl) and item.name.startswith("A_"))
    return Figure3Result(memref, layout, banks, storage)
