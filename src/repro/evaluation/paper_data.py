"""The numbers published in the paper's evaluation (Section 8).

Stored verbatim so every regenerated table can print the measured value next
to the published one; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from typing import Dict

#: Table 4 — resource usage of the matrix transpose (LUT, FF).
PAPER_TABLE4: Dict[str, Dict[str, int]] = {
    "Vivado HLS": {"LUT": 41, "FF": 92},
    "Vivado HLS (manual opt)": {"LUT": 7, "FF": 51},
    "HIR (no opt)": {"LUT": 32, "FF": 72},
    "HIR (auto opt)": {"LUT": 8, "FF": 18},
}

#: Table 5 — FPGA resource usage, baseline (Vivado HLS / hand Verilog) vs HIR.
PAPER_TABLE5: Dict[str, Dict[str, Dict[str, int]]] = {
    "transpose": {
        "baseline": {"LUT": 7, "FF": 51, "DSP": 0, "BRAM": 0},
        "hir": {"LUT": 8, "FF": 18, "DSP": 0, "BRAM": 0},
    },
    "stencil_1d": {
        "baseline": {"LUT": 152, "FF": 237, "DSP": 6, "BRAM": 0},
        "hir": {"LUT": 114, "FF": 147, "DSP": 6, "BRAM": 0},
    },
    "histogram": {
        "baseline": {"LUT": 130, "FF": 107, "DSP": 0, "BRAM": 1},
        "hir": {"LUT": 101, "FF": 146, "DSP": 0, "BRAM": 1},
    },
    "gemm": {
        "baseline": {"LUT": 14495, "FF": 24538, "DSP": 768, "BRAM": 0},
        "hir": {"LUT": 12645, "FF": 29062, "DSP": 768, "BRAM": 0},
    },
    "convolution": {
        "baseline": {"LUT": 1517, "FF": 2490, "DSP": 0, "BRAM": 0},
        "hir": {"LUT": 289, "FF": 661, "DSP": 0, "BRAM": 0},
    },
    "fifo": {
        "baseline": {"LUT": 34, "FF": 36, "DSP": 0, "BRAM": 1},
        "hir": {"LUT": 43, "FF": 140, "DSP": 0, "BRAM": 1},
    },
}

#: Table 6 — compile times in seconds and the resulting speedup.
PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "transpose": {"hir_seconds": 0.006, "hls_seconds": 13.0, "speedup": 2166.0},
    "stencil_1d": {"hir_seconds": 0.007, "hls_seconds": 8.0, "speedup": 1142.0},
    "histogram": {"hir_seconds": 0.007, "hls_seconds": 13.0, "speedup": 1857.0},
    "gemm": {"hir_seconds": 0.099, "hls_seconds": 33.0, "speedup": 333.0},
    "convolution": {"hir_seconds": 0.013, "hls_seconds": 14.0, "speedup": 1076.0},
}

#: The headline claim: average compile-time speedup over Vivado HLS.
PAPER_AVERAGE_SPEEDUP = 1112.0

#: Figure 3 — expected bank layout of !hir.memref<3*2*i32, packing=[1]>.
PAPER_FIGURE3_BANKS = {
    0: [(0, 0), (1, 0), (2, 0)],
    1: [(0, 1), (1, 1), (2, 1)],
}
