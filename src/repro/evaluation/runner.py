"""Run the whole evaluation: every table and figure of the paper.

``python -m repro.evaluation.runner`` regenerates Tables 4–6 and Figures 1–3
and prints them next to the published numbers.  ``quick=True`` shrinks the
kernel sizes so the full sweep finishes in seconds (used by tests); the
default parameters match the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.evaluation import figures, table4, table5, table6
from repro.flow import Flow, FlowConfig

#: Reduced kernel sizes for a fast smoke run of the whole evaluation.
QUICK_TABLE5_PARAMS: Dict[str, Dict[str, int]] = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 64},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
}

QUICK_TABLE6_PARAMS: Dict[str, Dict[str, int]] = {
    name: params for name, params in QUICK_TABLE5_PARAMS.items() if name != "fifo"
}

#: The post-paper workloads (PR 5), validated alongside the paper's six.
NEW_WORKLOAD_PARAMS: Dict[str, Dict[str, int]] = {
    "matvec": {"size": 16},
    "prefix_sum": {"size": 64},
    "spmv": {"rows": 16, "nnz": 4},
    "sorting_network": {"size": 8},
}

QUICK_NEW_WORKLOAD_PARAMS: Dict[str, Dict[str, int]] = {
    "matvec": {"size": 6},
    "prefix_sum": {"size": 16},
    "spmv": {"rows": 6, "nnz": 3},
    "sorting_network": {"size": 8},
}

#: Composed dataflow scenarios validated end to end (repro.graph).
SCENARIO_PARAMS: Dict[str, Dict[str, int]] = {
    "gemm_pipeline": {"size": 8},
    "histogram_cdf": {"pixels": 128, "bins": 32},
    "sorted_scan": {"size": 8},
}

QUICK_SCENARIO_PARAMS: Dict[str, Dict[str, int]] = {
    "gemm_pipeline": {"size": 4},
    "histogram_cdf": {"pixels": 64, "bins": 16},
    "sorted_scan": {"size": 8},
}


@dataclass
class ValidationRow:
    """Functional validation of one kernel on the selected engine."""

    kernel: str
    engine: str
    cycles: int
    ok: bool


def validate_kernels(engine: str = "differential",
                     params: Optional[Dict[str, Dict[str, int]]] = None,
                     config: Optional[FlowConfig] = None,
                     ) -> Dict[str, ValidationRow]:
    """Cross-check every kernel's simulated outputs against its reference.

    With the default ``differential`` engine this also compares the compiled
    engine's trace against the interpreter cycle by cycle, so a pass means
    both engines agree *and* match the numpy model.  Runs each kernel
    through a :class:`~repro.flow.Flow` session with ``pipeline="none"``
    (validating exactly the module as built, like the seed harness did).
    """
    config = (config or FlowConfig()).with_(pipeline="none", engine=engine)
    rows: Dict[str, ValidationRow] = {}
    if params is None:
        params = {**table5.DEFAULT_PARAMS, **NEW_WORKLOAD_PARAMS}
    for kernel, kernel_params in params.items():
        flow = Flow.from_kernel(kernel, config=config, **kernel_params)
        outcome = flow.validate(seed=1).value
        rows[kernel] = ValidationRow(kernel=kernel, engine=outcome.engine,
                                     cycles=outcome.cycles, ok=outcome.ok)
    return rows


def validate_scenarios(engine: str = "differential",
                       params: Optional[Dict[str, Dict[str, int]]] = None,
                       config: Optional[FlowConfig] = None,
                       ) -> Dict[str, ValidationRow]:
    """Cross-check every composed dataflow scenario end to end.

    Each scenario is lowered through :mod:`repro.graph`, simulated on the
    selected engine (default: interpreted and compiled in lockstep) and
    compared against the chained numpy references of its nodes.
    """
    config = (config or FlowConfig()).with_(pipeline="none", engine=engine)
    rows: Dict[str, ValidationRow] = {}
    for scenario, scenario_params in (params or SCENARIO_PARAMS).items():
        flow = Flow.from_scenario(scenario, config=config, **scenario_params)
        outcome = flow.validate(seed=1).value
        rows[f"graph:{scenario}"] = ValidationRow(
            kernel=f"graph:{scenario}", engine=outcome.engine,
            cycles=outcome.cycles, ok=outcome.ok)
    return rows


def render_validation(rows: Dict[str, ValidationRow]) -> str:
    lines = ["Functional validation (simulated vs numpy reference)",
             f"{'kernel':<20} {'engine':<14} {'cycles':>8}  status"]
    for row in rows.values():
        status = "ok" if row.ok else "MISMATCH"
        lines.append(f"{row.kernel:<20} {row.engine:<14} {row.cycles:>8}  "
                     f"{status}")
    return "\n".join(lines)


def render_compile_timing(quick: bool = False, jobs: int = 1,
                          config: Optional[FlowConfig] = None) -> str:
    """A ``--timing`` breakdown of one representative compile of each flow.

    Shows the HIR pipeline's per-pass report (including verifier time and
    analysis-cache hits) and the baseline compiler's per-phase seconds plus
    its DSE counters (design points examined / pruned / memoized /
    scheduled) on the heaviest kernel, GEMM.
    """
    from repro.hls import compile_program

    config = config or FlowConfig()
    size = 4 if quick else 16
    flow = Flow.from_kernel("gemm", size=size,
                            config=config.with_(pipeline="optimize"))
    flow.verilog()

    artifacts = flow.source
    with config.limits():
        result = compile_program(artifacts.hls_program, artifacts.hls_function,
                                 options=config.hls_options(jobs=jobs))
    report = result.report
    lines = [f"Compile timing breakdown (gemm, size={size}, jobs={jobs})",
             "",
             "HIR optimization pipeline:",
             flow.pass_report(),
             "",
             "HLS baseline phases:"]
    for phase, seconds in report.phase_seconds.items():
        lines.append(f"{phase:<32} {seconds * 1e3:8.3f} ms")
    lines.append(
        f"DSE design points: {report.dse_evaluations} examined, "
        f"{report.dse_pruned} pruned, {report.dse_memo_hits} memoized, "
        f"{report.dse_scheduled} scheduled"
    )
    return "\n".join(lines)


@dataclass
class EvaluationResults:
    table4: Dict[str, table4.Table4Row] = field(default_factory=dict)
    table5: Dict[str, table5.Table5Row] = field(default_factory=dict)
    table6: Dict[str, table6.Table6Row] = field(default_factory=dict)
    figure1: Optional[figures.FigureResult] = None
    figure2: Optional[figures.FigureResult] = None
    figure3: Optional[figures.Figure3Result] = None
    validation: Dict[str, ValidationRow] = field(default_factory=dict)
    compile_timing: Optional[str] = None

    def render(self) -> str:
        parts = [
            table4.render(self.table4),
            "",
            table5.render(self.table5),
            "",
            table6.render(self.table6),
            "",
            self.figure1.render() if self.figure1 else "",
            "",
            self.figure2.render() if self.figure2 else "",
            "",
            self.figure3.render() if self.figure3 else "",
        ]
        if self.validation:
            parts += ["", render_validation(self.validation)]
        if self.compile_timing:
            parts += ["", self.compile_timing]
        return "\n".join(parts)


def run_all(quick: bool = False, sim_engine: Optional[str] = None,
            validate: bool = False, jobs: int = 1,
            timing: bool = False,
            config: Optional[FlowConfig] = None) -> EvaluationResults:
    """Regenerate every experiment; ``quick`` shrinks problem sizes.

    ``config`` is the :class:`~repro.flow.FlowConfig` threaded through every
    Flow-driven measurement; ``sim_engine`` (kept for compatibility with the
    pre-Flow CLI) additionally sets the process-wide default simulation
    engine so non-Flow experiments pick it up too.  ``validate`` appends a
    functional-validation sweep of every kernel to the results.  ``timing``
    appends per-pass / per-phase compile-time breakdowns; ``jobs`` sets the
    fast path's DSE parallelism for that breakdown (results are identical
    at any job count).  The Table 6 columns themselves are never affected:
    the baseline there stays frozen at the seed configuration.
    """
    config = config or FlowConfig.from_env()
    if sim_engine is None:
        sim_engine = config.engine
    previous_engine = None
    if sim_engine is not None:
        from repro.sim import set_default_engine
        previous_engine = set_default_engine(sim_engine)
    try:
        results = EvaluationResults()
        results.table4 = table4.generate(size=8 if quick else 16)
        results.table5 = table5.generate(QUICK_TABLE5_PARAMS if quick else None)
        results.table6 = table6.generate(QUICK_TABLE6_PARAMS if quick else None)
        results.figure1 = figures.figure1()
        results.figure2 = figures.figure2()
        results.figure3 = figures.figure3()
        if validate:
            # Validation always uses the differential harness (both engines
            # in lockstep), independent of the engine the experiments use.
            kernel_params = ({**QUICK_TABLE5_PARAMS,
                              **QUICK_NEW_WORKLOAD_PARAMS} if quick else None)
            results.validation = validate_kernels(params=kernel_params,
                                                  config=config)
            results.validation.update(validate_scenarios(
                params=QUICK_SCENARIO_PARAMS if quick else None,
                config=config))
        if timing:
            results.compile_timing = render_compile_timing(quick=quick,
                                                           jobs=jobs,
                                                           config=config)
        return results
    finally:
        if previous_engine is not None:
            from repro.sim import set_default_engine
            set_default_engine(previous_engine)


def main() -> None:  # pragma: no cover - manual entry point
    import argparse

    from repro.sim import available_engines

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use reduced kernel sizes for a fast run")
    parser.add_argument("--engine", choices=available_engines(), default=None,
                        help="simulation engine for every simulated experiment")
    parser.add_argument("--validate", action="store_true",
                        help="cross-check every kernel against its reference")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel DSE candidate evaluations for the "
                             "--timing fast-path breakdown (identical "
                             "results at any job count; Table 6's frozen "
                             "baseline is never parallelised)")
    parser.add_argument("--timing", action="store_true",
                        help="append per-pass / per-phase compile timing "
                             "breakdowns")
    arguments = parser.parse_args()
    print(run_all(quick=arguments.quick, sim_engine=arguments.engine,
                  validate=arguments.validate, jobs=arguments.jobs,
                  timing=arguments.timing).render())


if __name__ == "__main__":  # pragma: no cover
    main()
