"""Run the whole evaluation: every table and figure of the paper.

``python -m repro.evaluation.runner`` regenerates Tables 4–6 and Figures 1–3
and prints them next to the published numbers.  ``quick=True`` shrinks the
kernel sizes so the full sweep finishes in seconds (used by tests); the
default parameters match the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.evaluation import figures, table4, table5, table6

#: Reduced kernel sizes for a fast smoke run of the whole evaluation.
QUICK_TABLE5_PARAMS: Dict[str, Dict[str, int]] = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 64},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
}

QUICK_TABLE6_PARAMS: Dict[str, Dict[str, int]] = {
    name: params for name, params in QUICK_TABLE5_PARAMS.items() if name != "fifo"
}


@dataclass
class EvaluationResults:
    table4: Dict[str, table4.Table4Row] = field(default_factory=dict)
    table5: Dict[str, table5.Table5Row] = field(default_factory=dict)
    table6: Dict[str, table6.Table6Row] = field(default_factory=dict)
    figure1: Optional[figures.FigureResult] = None
    figure2: Optional[figures.FigureResult] = None
    figure3: Optional[figures.Figure3Result] = None

    def render(self) -> str:
        parts = [
            table4.render(self.table4),
            "",
            table5.render(self.table5),
            "",
            table6.render(self.table6),
            "",
            self.figure1.render() if self.figure1 else "",
            "",
            self.figure2.render() if self.figure2 else "",
            "",
            self.figure3.render() if self.figure3 else "",
        ]
        return "\n".join(parts)


def run_all(quick: bool = False) -> EvaluationResults:
    """Regenerate every experiment; ``quick`` shrinks problem sizes."""
    results = EvaluationResults()
    results.table4 = table4.generate(size=8 if quick else 16)
    results.table5 = table5.generate(QUICK_TABLE5_PARAMS if quick else None)
    results.table6 = table6.generate(QUICK_TABLE6_PARAMS if quick else None)
    results.figure1 = figures.figure1()
    results.figure2 = figures.figure2()
    results.figure3 = figures.figure3()
    return results


def main() -> None:  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use reduced kernel sizes for a fast run")
    arguments = parser.parse_args()
    print(run_all(quick=arguments.quick).render())


if __name__ == "__main__":  # pragma: no cover
    main()
