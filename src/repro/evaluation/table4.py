"""Table 4 — effect of precision optimization on the matrix transpose.

Four design points are compared, mirroring the paper:

* **Vivado HLS** — the baseline compiler on the plain C-like source (32-bit
  loop counters, no manual tuning).
* **Vivado HLS (manual opt)** — the same source after the programmer manually
  narrows the loop counters (the tool cannot do it automatically).
* **HIR (no opt)** — the HIR design compiled without the optimization
  pipeline.
* **HIR (auto opt)** — the HIR design after the automatic precision
  optimization (plus the rest of the standard pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.flow import Flow, FlowConfig
from repro.hls.compiler import compile_program
from repro.kernels import transpose
from repro.resources import ResourceReport, estimate_resources
from repro.evaluation.paper_data import PAPER_TABLE4


@dataclass
class Table4Row:
    name: str
    measured: ResourceReport
    paper_lut: int
    paper_ff: int


def _hir_resources(optimize: bool, size: int) -> ResourceReport:
    config = FlowConfig(pipeline="optimize" if optimize else "none",
                        verify_each=False)
    flow = Flow(transpose.build_hir(size), top="transpose", config=config)
    return flow.resources().value


def _hls_resources(manual_precision: bool, size: int) -> ResourceReport:
    program = transpose.build_hls(size, manual_precision=manual_precision)
    result = compile_program(program, "transpose")
    return estimate_resources(result.design)


def generate(size: int = 16) -> Dict[str, Table4Row]:
    """Regenerate Table 4; returns one row per design point."""
    rows = {
        "Vivado HLS": _hls_resources(False, size),
        "Vivado HLS (manual opt)": _hls_resources(True, size),
        "HIR (no opt)": _hir_resources(False, size),
        "HIR (auto opt)": _hir_resources(True, size),
    }
    return {
        name: Table4Row(name, report,
                        PAPER_TABLE4[name]["LUT"], PAPER_TABLE4[name]["FF"])
        for name, report in rows.items()
    }


def render(rows: Dict[str, Table4Row]) -> str:
    lines = ["Table 4: resource usage of a matrix transpose",
             f"{'Design':<26} {'LUT':>8} {'FF':>8} {'paper LUT':>10} {'paper FF':>9}"]
    lines.append("-" * len(lines[-1]))
    for row in rows.values():
        values = row.measured.as_dict()
        lines.append(
            f"{row.name:<26} {values['LUT']:>8} {values['FF']:>8} "
            f"{row.paper_lut:>10} {row.paper_ff:>9}"
        )
    return "\n".join(lines)


def check_shape(rows: Dict[str, Table4Row]) -> bool:
    """The paper's qualitative findings that must hold on our measurements."""
    measured = {name: row.measured.as_dict() for name, row in rows.items()}
    auto = measured["HIR (auto opt)"]
    noopt = measured["HIR (no opt)"]
    hls = measured["Vivado HLS"]
    manual = measured["Vivado HLS (manual opt)"]
    return (
        # Precision optimization reduces both LUTs and FFs for HIR...
        auto["LUT"] <= noopt["LUT"] and auto["FF"] <= noopt["FF"]
        # ...and manual precision reduction helps the HLS design.
        and manual["LUT"] <= hls["LUT"] and manual["FF"] <= hls["FF"]
        # The optimized HIR design uses no more FFs than the unoptimized HLS one.
        and auto["FF"] <= hls["FF"]
    )
