"""Table 5 — FPGA resource usage of the six kernels, HIR vs the baseline.

The baseline is the HLS compiler for five kernels and the hand-written
Verilog FIFO for the sixth, as in the paper.  Both compilers' output is
charged by the same resource model (DESIGN.md, substitution table), so the
meaningful comparison is relative: which side uses more of each resource and
whether the DSP / BRAM counts match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.flow import Flow, FlowConfig
from repro.hls.compiler import compile_program
from repro.kernels import build_kernel
from repro.kernels.fifo import build_verilog_fifo
from repro.resources import ResourceReport, estimate_resources
from repro.evaluation.paper_data import PAPER_TABLE5

#: Kernel construction parameters used for the paper-scale run.
DEFAULT_PARAMS: Dict[str, Dict[str, int]] = {
    "transpose": {"size": 16},
    "stencil_1d": {"size": 64},
    "histogram": {"pixels": 256, "bins": 256},
    "gemm": {"size": 16},
    "convolution": {"size": 16},
    "fifo": {"depth": 512},
}


@dataclass
class Table5Row:
    kernel: str
    baseline: ResourceReport
    hir: ResourceReport
    paper_baseline: Dict[str, int]
    paper_hir: Dict[str, int]


def measure_kernel(name: str, params: Optional[Dict[str, int]] = None,
                   optimize: bool = True) -> Table5Row:
    """Compile one kernel with both compilers and estimate resources."""
    params = params if params is not None else DEFAULT_PARAMS[name]
    artifacts = build_kernel(name, **params)
    config = FlowConfig(pipeline="optimize" if optimize else "none",
                        verify_each=False)
    hir_report = Flow(artifacts, config=config).resources().value
    if name == "fifo":
        baseline_design = build_verilog_fifo(params.get("depth", 512))
        baseline_report = estimate_resources(baseline_design)
    else:
        hls_result = compile_program(artifacts.hls_program, artifacts.hls_function)
        baseline_report = estimate_resources(hls_result.design)
    return Table5Row(name, baseline_report, hir_report,
                     PAPER_TABLE5[name]["baseline"], PAPER_TABLE5[name]["hir"])


def generate(params: Optional[Dict[str, Dict[str, int]]] = None,
             kernels: Optional[list] = None) -> Dict[str, Table5Row]:
    """Regenerate Table 5 (all kernels unless a subset is requested)."""
    params = params or DEFAULT_PARAMS
    names = kernels or list(DEFAULT_PARAMS)
    return {name: measure_kernel(name, params.get(name)) for name in names}


def render(rows: Dict[str, Table5Row]) -> str:
    header = (f"{'Benchmark':<12} {'side':<9} {'LUT':>8} {'FF':>8} {'DSP':>6} "
              f"{'BRAM':>5}   paper(LUT/FF/DSP/BRAM)")
    lines = ["Table 5: FPGA resource usage, baseline vs HIR", header,
             "-" * len(header)]
    for row in rows.values():
        for side, report, paper in (("baseline", row.baseline, row.paper_baseline),
                                    ("HIR", row.hir, row.paper_hir)):
            values = report.as_dict()
            paper_text = "/".join(str(paper[c]) for c in ("LUT", "FF", "DSP", "BRAM"))
            lines.append(
                f"{row.kernel:<12} {side:<9} {values['LUT']:>8} {values['FF']:>8} "
                f"{values['DSP']:>6} {values['BRAM']:>5}   {paper_text}"
            )
    return "\n".join(lines)


def check_shape(rows: Dict[str, Table5Row]) -> Dict[str, bool]:
    """Qualitative checks per kernel (the 'shape' of the paper's table)."""
    checks: Dict[str, bool] = {}
    for name, row in rows.items():
        baseline = row.baseline.as_dict()
        hir = row.hir.as_dict()
        ok = baseline["DSP"] == hir["DSP"] and baseline["BRAM"] == hir["BRAM"]
        if name == "fifo":
            # HIR uses more registers than hand-written Verilog (paper: 140 vs 36).
            ok = ok and hir["FF"] >= baseline["FF"]
        elif name == "gemm":
            # For GEMM the reproduction preserves the DSP parity and the
            # register comparison; the LUT direction does not reproduce
            # because every PE carries its own loop controller (documented in
            # EXPERIMENTS.md).
            ok = ok and hir["FF"] <= baseline["FF"]
        else:
            # HIR never uses more LUTs than the automatically scheduled design.
            ok = ok and hir["LUT"] <= baseline["LUT"]
        checks[name] = ok
    return checks
