"""Table 6 — compile time of the HIR code generator vs the HLS baseline.

The paper reports 333x–2166x (average 1112x) speedups over Vivado HLS.  Our
baseline is a much lighter reimplementation of an HLS flow (no C front end,
no technology mapping, no vendor report generation), so the absolute gap is
smaller; the shape that must hold is: HIR code generation is faster on every
kernel, and the smallest gap is on GEMM, where the HIR compiler itself has to
elaborate a 256-PE array (exactly as in the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.flow import Flow, FlowConfig
from repro.hls.compiler import compile_program
from repro.hls.options import HLSOptions
from repro.hls.scheduling import legacy_scan_mode
from repro.kernels import build_kernel
from repro.evaluation.paper_data import PAPER_AVERAGE_SPEEDUP, PAPER_TABLE6

#: Kernel parameters for the paper-scale measurement.
DEFAULT_PARAMS: Dict[str, Dict[str, int]] = {
    "transpose": {"size": 16},
    "stencil_1d": {"size": 64},
    "histogram": {"pixels": 256, "bins": 256},
    "gemm": {"size": 16},
    "convolution": {"size": 16},
}


@dataclass
class Table6Row:
    kernel: str
    hir_seconds: float
    hls_seconds: float
    paper_hir_seconds: float
    paper_hls_seconds: float
    paper_speedup: float

    @property
    def speedup(self) -> float:
        if self.hir_seconds <= 0:
            return float("inf")
        return self.hls_seconds / self.hir_seconds


def measure_kernel(name: str,
                   params: Optional[Dict[str, int]] = None) -> Table6Row:
    """Measure both compilers' wall-clock compile time for one kernel.

    The baseline column is a *frozen model* of a commercial HLS tool: it
    runs the full serial DSE sweep with the seed compiler's behaviour (no
    pruning, no memoization, no parallelism, the original O(E) dependence
    scans — :meth:`HLSOptions.seed_equivalent` under
    :class:`~repro.hls.scheduling.legacy_scan_mode`), because Table 6's
    claim is about how much work such a tool repeats, not about how fast we
    made our reimplementation of it.  Deliberately, nothing — including
    ``runner.py --jobs``, which only drives the ``--timing`` breakdown of
    the fast path — changes this column.  The engineered fast path of the
    baseline compiler is benchmarked separately in
    ``benchmarks/bench_compile_time.py``.
    """
    params = params if params is not None else DEFAULT_PARAMS[name]
    artifacts = build_kernel(name, **params)
    hir_config = FlowConfig(pipeline="optimize", verify_each=False,
                            verify_structure=False)

    def measure_hir() -> float:
        # A fresh Flow per repeat: the stage cache must not amortize what
        # this table measures.  Stage seconds cover exactly what the seed
        # harness timed — pass pipeline + code generation (Verilog text
        # emission is lazy and resource estimation is a separate stage).
        fresh = Flow.from_kernel(name, config=hir_config, **params)
        fresh.verilog()
        timings = fresh.timings()
        return timings["optimized"] + timings["verilog"]

    baseline_options = HLSOptions.seed_equivalent()

    def measure_hls() -> float:
        with legacy_scan_mode():
            start = time.perf_counter()
            compile_program(artifacts.hls_program, artifacts.hls_function,
                            options=baseline_options)
            return time.perf_counter() - start

    hir_seconds = _best_of(measure_hir)
    hls_seconds = _best_of(measure_hls)

    paper = PAPER_TABLE6[name]
    return Table6Row(name, hir_seconds, hls_seconds, paper["hir_seconds"],
                     paper["hls_seconds"], paper["speedup"])


def _best_of(measure, repeats: int = 3, fast_threshold: float = 0.05) -> float:
    """Best-of-N for sub-``fast_threshold`` measurements.

    Millisecond-scale compiles are dominated by scheduler noise; re-running
    and keeping the minimum stabilises the table without inflating the cost
    of the heavyweight (multi-second) measurements, which run once.
    """
    best = measure()
    if best >= fast_threshold:
        return best
    for _ in range(repeats - 1):
        best = min(best, measure())
    return best


def generate(params: Optional[Dict[str, Dict[str, int]]] = None,
             kernels: Optional[list] = None) -> Dict[str, Table6Row]:
    params = params or DEFAULT_PARAMS
    names = kernels or list(DEFAULT_PARAMS)
    return {name: measure_kernel(name, params.get(name)) for name in names}


def average_speedup(rows: Dict[str, Table6Row]) -> float:
    speedups = [row.speedup for row in rows.values()]
    return sum(speedups) / len(speedups) if speedups else 0.0


def render(rows: Dict[str, Table6Row]) -> str:
    header = (f"{'Benchmark':<12} {'HIR (s)':>10} {'baseline (s)':>13} "
              f"{'speedup':>9}   paper: HIR(s)/HLS(s)/speedup")
    lines = ["Table 6: compile times and speedup over the HLS baseline",
             header, "-" * len(header)]
    for row in rows.values():
        lines.append(
            f"{row.kernel:<12} {row.hir_seconds:>10.3f} {row.hls_seconds:>13.3f} "
            f"{row.speedup:>8.1f}x   {row.paper_hir_seconds}/"
            f"{row.paper_hls_seconds}/{row.paper_speedup:.0f}x"
        )
    lines.append(
        f"average speedup: {average_speedup(rows):.1f}x "
        f"(paper: {PAPER_AVERAGE_SPEEDUP:.0f}x against Vivado HLS)"
    )
    return "\n".join(lines)


def check_shape(rows: Dict[str, Table6Row]) -> bool:
    """HIR must be faster on every kernel, with GEMM showing the smallest gap."""
    if not all(row.speedup > 1.0 for row in rows.values()):
        return False
    if "gemm" in rows and len(rows) > 1:
        gemm_hir = rows["gemm"].hir_seconds
        others = [row.hir_seconds for name, row in rows.items() if name != "gemm"]
        # GEMM is the heaviest design for the HIR compiler, as in the paper.
        if others and gemm_hir < max(others):
            return False
    return True
