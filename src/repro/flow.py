"""One staged, cached, configurable entry point for the whole toolchain.

:class:`Flow` owns the end-to-end HIR pipeline the paper evaluates —
describe → verify → optimize → Verilog → resources → cycle-accurate
simulation — as lazy, cached, invalidation-aware stages::

    flow = Flow.from_kernel("gemm", size=8)
    flow.hir()              # the (structurally verified) HIR module
    flow.verified()         # schedule-verification report
    flow.optimized()        # module after the configured pass pipeline
    flow.verilog()          # generated Design + emitted text + stats
    flow.resources()        # LUT/FF/DSP/BRAM estimate
    flow.simulate(seed=3)   # one stimulus set on the configured engine
    flow.simulate_batch(range(16))   # N stimulus lanes, one compiled design
    flow.validate(seed=3)   # simulate + compare against the numpy reference

Every stage returns a typed :class:`Artifact` handle that remembers what it
was built from (``fingerprint`` + ``provenance``), how long it took
(``seconds``) and whether this access was served from the stage cache
(``cached``).  Stages are keyed on a content fingerprint of the source
module, so mutating the module after a compile transparently invalidates
every downstream artifact — there is no stale-design hazard.

Configuration lives in one place, :class:`FlowConfig`, with a single
documented precedence (highest wins):

1. **per-call keyword** — ``flow.simulate(seed, engine="compiled")``;
2. **FlowConfig field** — ``Flow(..., config=FlowConfig(engine="compiled"))``;
3. **process default** — :func:`repro.sim.set_default_engine`;
4. **environment** — ``REPRO_SIM_ENGINE``, ``REPRO_DSE_JOBS``,
   ``REPRO_DSE_EXECUTOR``, ``REPRO_DSE_MEMO_SIZE``, ``REPRO_SIM_CACHE_SIZE``
   (``FlowConfig.from_env()`` snapshots all of them);
5. **built-in default**.

The pre-Flow entry points (``generate_verilog``, ``run_design``,
``run_design_batch``, ``KernelArtifacts.generate_design``) remain as thin
deprecation shims over the same implementations; a Flow with
``pipeline="none"`` is byte- and trace-identical to that legacy path
(enforced by ``tests/flow/test_flow_golden.py``).
"""

from __future__ import annotations

import os
import time as _time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.ir.errors import IRError
from repro.ir.module import ModuleOp
from repro.ir.printer import module_fingerprint
from repro.ir.verifier import verify as verify_structure
from repro.hir.ops import FuncOp
from repro.hir.types import MemrefType
from repro.obs.tracer import TRACER

T = TypeVar("T")

#: Pass-pipeline choices accepted by :attr:`FlowConfig.pipeline`.
PIPELINES: Tuple[str, ...] = ("optimize", "verify", "none", "legacy")

#: Environment variables :meth:`FlowConfig.from_env` snapshots, mapped to the
#: config field each one feeds.
ENV_VARS: Dict[str, str] = {
    "REPRO_SIM_ENGINE": "engine",
    "REPRO_DSE_JOBS": "dse_jobs",
    "REPRO_DSE_EXECUTOR": "dse_executor",
    "REPRO_DSE_MEMO_SIZE": "dse_memo_size",
    "REPRO_SIM_CACHE_SIZE": "sim_cache_size",
    "REPRO_STORE_DIR": "store_dir",
}


class FlowError(IRError):
    """Raised on Flow misconfiguration (unknown pipeline, missing models...)."""


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FlowConfig:
    """Every knob of the toolchain in one immutable object.

    ``None`` means "inherit": the engine falls back to the process default
    (:func:`repro.sim.set_default_engine` / ``REPRO_SIM_ENGINE``), the DSE
    and cache fields fall back to their ``REPRO_*`` environment defaults.
    """

    #: Simulation engine ("interpreted", "compiled", "differential" or the
    #: fused whole-run "vector").
    engine: Optional[str] = None
    #: Pass pipeline run by :meth:`Flow.optimized`: "optimize" (the paper's
    #: full auto-opt pipeline), "verify" (schedule verification only),
    #: "none" (byte-identical to the legacy generate_verilog path) or
    #: "legacy" (the seed pass implementations, kept as an oracle).
    pipeline: str = "optimize"
    #: Run the structural verifier on the source module in :meth:`Flow.hir`.
    verify_structure: bool = True
    #: Verify the IR after each pass (PassManager(verify_each=...)).
    verify_each: bool = True
    #: Code-generator options (None: CodegenOptions() defaults).
    emit_location_comments: bool = True
    emit_assertions: bool = False
    #: Testbench defaults for simulate()/simulate_batch().
    drain_cycles: int = 16
    max_cycles: int = 100000
    #: Baseline-HLS design-space exploration (None: REPRO_DSE_* env).
    dse_jobs: Optional[int] = None
    dse_executor: Optional[str] = None
    dse_memo_size: Optional[int] = None
    #: Simulator compile-cache bound (None: REPRO_SIM_CACHE_SIZE env).
    sim_cache_size: Optional[int] = None
    #: Persistent artifact store root (:mod:`repro.store`): ``None`` inherits
    #: ``REPRO_STORE_DIR``, ``""`` disables persistence explicitly.  When a
    #: store resolves, the optimized-IR, Verilog-text, resource-report and
    #: compiled-simulator-source stages read through to disk and publish
    #: their results, so a cold process re-running a warm design skips the
    #: pass pipeline, emission and simulator codegen.
    store_dir: Optional[str] = None
    #: Fall back from a failing compiled engine to the interpreted engine
    #: (one retry; counted as ``flow.engine_fallback``).  Divergence findings
    #: from the differential engine are never swallowed.
    engine_fallback: bool = True
    #: Observability: enable the process tracer (:data:`repro.obs.TRACER`)
    #: for the duration of every stage build and simulation of this flow.
    trace: bool = False
    #: Collect a :class:`repro.obs.simprofile.SimProfile` during
    #: simulate()/simulate_batch() (reachable as ``outcome.profile``).
    profile: bool = False

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise FlowError(
                f"unknown pipeline {self.pipeline!r}; choose one of "
                f"{list(PIPELINES)}"
            )
        if self.engine is not None:
            from repro.sim.engine import available_engines
            if self.engine not in available_engines():
                raise FlowError(
                    f"unknown simulation engine {self.engine!r}; choose one "
                    f"of {available_engines()}"
                )
        if self.dse_jobs is not None and self.dse_jobs < 1:
            raise FlowError(f"dse_jobs must be >= 1, got {self.dse_jobs}")
        if self.dse_executor is not None and self.dse_executor not in (
                "thread", "process"):
            raise FlowError(
                f"dse_executor must be 'thread' or 'process', "
                f"got {self.dse_executor!r}"
            )

    # -- construction -------------------------------------------------------
    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None,
                 **overrides: Any) -> "FlowConfig":
        """Snapshot every ``REPRO_*`` variable into an explicit config.

        Unset variables stay ``None`` (inherit), so a ``from_env()`` config
        behaves exactly like the environment it was read from — but frozen
        at snapshot time.  ``overrides`` are applied on top.
        """
        env = os.environ if env is None else env
        values: Dict[str, Any] = {}
        if "REPRO_SIM_ENGINE" in env:
            values["engine"] = env["REPRO_SIM_ENGINE"]
        for var, attr in (("REPRO_DSE_JOBS", "dse_jobs"),
                          ("REPRO_DSE_MEMO_SIZE", "dse_memo_size"),
                          ("REPRO_SIM_CACHE_SIZE", "sim_cache_size")):
            if var in env:
                try:
                    values[attr] = int(env[var])
                except ValueError:
                    pass
        if "REPRO_DSE_EXECUTOR" in env:
            values["dse_executor"] = env["REPRO_DSE_EXECUTOR"]
        if "REPRO_STORE_DIR" in env:
            values["store_dir"] = env["REPRO_STORE_DIR"]
        values.update(overrides)
        return cls(**values)

    def with_(self, **overrides: Any) -> "FlowConfig":
        """A copy with ``overrides`` applied (config objects are frozen)."""
        return replace(self, **overrides)

    # -- resolution (the documented precedence) -----------------------------
    def resolve_engine(self, override: Optional[str] = None) -> str:
        """per-call > config > process default (set_default_engine/env)."""
        if override is not None:
            return override
        if self.engine is not None:
            return self.engine
        from repro.sim.engine import get_default_engine
        return get_default_engine()

    def hls_options(self, jobs: Optional[int] = None):
        """Build :class:`repro.hls.options.HLSOptions` under this config
        (per-call ``jobs`` wins, then config, then ``REPRO_DSE_*``)."""
        from repro.hls.options import HLSOptions
        kwargs: Dict[str, Any] = {}
        if jobs is not None:
            kwargs["jobs"] = jobs
        elif self.dse_jobs is not None:
            kwargs["jobs"] = self.dse_jobs
        if self.dse_executor is not None:
            kwargs["executor"] = self.dse_executor
        return HLSOptions(**kwargs)

    def resolve_store(self):
        """The :class:`repro.store.ArtifactStore` this config persists to.

        ``store_dir`` set → that directory; ``store_dir=""`` → ``None``
        (persistence off); ``store_dir=None`` → the ``REPRO_STORE_DIR``
        environment store, if any.
        """
        from repro.store import get_store
        if self.store_dir is not None:
            return get_store(self.store_dir) if self.store_dir.strip() else None
        from repro.store import default_store
        return default_store()

    def codegen_options(self):
        from repro.verilog.codegen import CodegenOptions
        return CodegenOptions(
            emit_location_comments=self.emit_location_comments,
            emit_assertions=self.emit_assertions,
        )

    @contextmanager
    def limits(self):
        """Install the configured cache bounds for the duration of a stage.

        Fields left ``None`` keep whatever is installed (environment or an
        outer override); explicit values win and are restored on exit.
        """
        from repro.hls.dse import set_memo_capacity
        from repro.sim.engine.cache import set_cache_capacity
        previous_sim = previous_memo = None
        sim_set = memo_set = False
        try:
            if self.sim_cache_size is not None:
                previous_sim = set_cache_capacity(self.sim_cache_size)
                sim_set = True
            if self.dse_memo_size is not None:
                previous_memo = set_memo_capacity(self.dse_memo_size)
                memo_set = True
            yield self
        finally:
            if sim_set:
                set_cache_capacity(previous_sim)
            if memo_set:
                set_memo_capacity(previous_memo)

    def describe(self) -> str:
        """One line per field, with inherited fields marked."""
        lines = []
        for f in fields(self):
            value = getattr(self, f.name)
            shown = "<inherit>" if value is None else value
            lines.append(f"{f.name:<22} {shown}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Artifact handles
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Artifact(Generic[T]):
    """A stage result that remembers its provenance and cost.

    ``fingerprint`` identifies the exact inputs (module content + config)
    the value was built from; ``provenance`` spells those inputs out;
    ``seconds`` is always the time spent *building* the value — a handle
    served from the stage cache keeps the original build time and reports
    the (tiny) cache lookup separately in ``fetch_seconds``.
    """

    stage: str
    value: T
    seconds: float
    fingerprint: str
    provenance: Tuple[Tuple[str, str], ...] = ()
    cached: bool = False
    #: Time this access spent fetching the handle from the stage cache;
    #: ``None`` when the value was built fresh (``cached`` is False).
    fetch_seconds: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.cached:
            fetched = ("" if self.fetch_seconds is None else
                       f", fetched in {self.fetch_seconds * 1e6:.0f} us")
            origin = f"cached; built in {self.seconds * 1e3:.2f} ms{fetched}"
        else:
            origin = f"built in {self.seconds * 1e3:.2f} ms"
        provenance = ", ".join(f"{k}={v[:12]}" for k, v in self.provenance)
        if provenance:
            provenance = f" {{{provenance}}}"
        return (f"<Artifact {self.stage} [{self.fingerprint[:12]}] "
                f"{type(self.value).__name__} ({origin}){provenance}>")


class VerilogArtifact:
    """Value of :meth:`Flow.verilog`: the design, its text, codegen stats.

    ``text`` is emitted lazily on first access (and then cached), so the
    ``verilog`` stage's ``seconds`` measure code *generation* alone —
    comparable with the legacy ``generate_verilog().seconds``.
    """

    def __init__(self, design: Any, statistics: Mapping[str, int]) -> None:
        self.design = design
        self.statistics = statistics
        self._text: Optional[str] = None

    @property
    def text(self) -> str:
        if self._text is None:
            from repro.verilog.emitter import emit_design
            self._text = emit_design(self.design)
        return self._text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<VerilogArtifact top={self.design.top!r} "
                f"modules={len(self.design.modules)}>")


@dataclass(frozen=True)
class SimulationOutcome:
    """Value of :meth:`Flow.simulate`."""

    run: Any                      # repro.sim.testbench.SimulationRun
    inputs: Mapping[str, Any]
    engine: str
    seed: Optional[int] = None

    def memory_array(self, name: str):
        return self.run.memory_array(name)

    @property
    def profile(self):
        """The run's :class:`~repro.obs.simprofile.SimProfile` (None unless
        the flow simulated with ``FlowConfig(profile=True)``)."""
        return self.run.profile


@dataclass(frozen=True)
class BatchOutcome:
    """Value of :meth:`Flow.simulate_batch`."""

    run: Any                      # repro.sim.engine.batch.BatchedSimulationRun
    inputs_per_lane: Sequence[Mapping[str, Any]]
    seeds: Optional[Sequence[int]] = None

    def memory_array(self, name: str, lane: Optional[int] = None):
        return self.run.memory_array(name, lane)

    @property
    def profiles(self):
        """Per-lane :class:`~repro.obs.simprofile.SimProfile` list (None
        unless the flow simulated with ``FlowConfig(profile=True)``)."""
        return self.run.profiles


@dataclass(frozen=True)
class ValidationOutcome:
    """Value of :meth:`Flow.validate`."""

    name: str
    engine: str
    cycles: int
    ok: bool
    run: Any = None


# --------------------------------------------------------------------------- #
# The Flow session
# --------------------------------------------------------------------------- #

#: Live Flow sessions, so the ``flow.stages`` cache report can aggregate the
#: per-session stage caches (which are unbounded — one artifact per stage).
_LIVE_FLOWS: "weakref.WeakSet" = weakref.WeakSet()

#: Process-lifetime stage-cache hit/miss counters across every Flow session.
_STAGE_STATS = {"hits": 0, "misses": 0}


def _flow_stage_stats():
    from repro.obs.cachestats import CacheStats
    size = sum(len(flow._stages) for flow in _LIVE_FLOWS)
    return CacheStats(name="flow.stages", capacity=None, size=size,
                      hits=_STAGE_STATS["hits"],
                      misses=_STAGE_STATS["misses"], evictions=0)


def _register_flow_stats() -> None:
    from repro.obs.cachestats import register_cache
    register_cache("flow.stages", _flow_stage_stats)


_register_flow_stats()


def outputs_match(expected: Mapping[str, Any],
                  produced: Callable[[str], Any],
                  output_warmup: Optional[Mapping[str, int]] = None) -> bool:
    """Compare reference outputs against simulated memories, warmup-aware.

    The single comparison the whole stack shares — :meth:`Flow.validate`,
    ``KernelArtifacts.check_outputs`` and the CLI sweep all delegate here.
    ``expected`` maps output names to reference tensors; ``produced(name)``
    returns the simulated memory contents; ``output_warmup`` gives leading
    elements the hardware does not produce (skipped on both sides).
    """
    warmup = output_warmup or {}
    for name, reference in expected.items():
        produced_array = np.asarray(produced(name))
        reference_array = np.asarray(reference)
        skip = warmup.get(name, 0)
        if skip:
            produced_array = produced_array[skip:]
            reference_array = reference_array[skip:]
        if not np.array_equal(produced_array, reference_array):
            return False
    return True


class Flow:
    """A session over one design: staged, cached, invalidation-aware.

    ``source`` may be a :class:`~repro.ir.module.ModuleOp`, a
    :class:`~repro.hir.build.DesignBuilder`, or a
    :class:`~repro.kernels.base.KernelArtifacts` (which contributes its
    interfaces, stimulus generator, reference model and external models).
    Explicit keyword arguments override whatever the source provides.
    """

    def __init__(
        self,
        source: Any,
        top: Optional[str] = None,
        *,
        config: Optional[FlowConfig] = None,
        name: Optional[str] = None,
        interfaces: Optional[Mapping[str, MemrefType]] = None,
        scalar_args: Optional[Mapping[str, int]] = None,
        make_inputs: Optional[Callable[[int], Dict[str, Any]]] = None,
        reference: Optional[Callable[[Mapping[str, Any]], Mapping[str, Any]]] = None,
        external_models: Optional[Mapping[str, Callable]] = None,
        output_warmup: Optional[Mapping[str, int]] = None,
    ) -> None:
        #: stage name -> (cache key, artifact)
        self._stages: Dict[str, Tuple[tuple, Artifact]] = {}
        # Config must exist before compose() runs (stages consult it for
        # tracing); the DesignGraph branch below builds a stage in __init__.
        self.config = config or FlowConfig()
        _LIVE_FLOWS.add(self)
        from repro.graph.graph import DesignGraph  # local: layering
        #: The DesignGraph behind a composed flow (None for plain sources).
        self.graph: Optional[DesignGraph] = None
        if isinstance(source, DesignGraph):
            self.graph = source
            name = name or source.name
            # Build through the compose stage so the first composition is
            # cached under the graph fingerprint like any later rebuild.
            source = self.compose().value
        module = source.module if hasattr(source, "module") else source
        if not isinstance(module, ModuleOp):
            raise FlowError(
                f"Flow needs a ModuleOp, a DesignBuilder, KernelArtifacts or "
                f"a DesignGraph; got {type(source).__name__}"
            )
        #: The object this Flow was constructed from (e.g. KernelArtifacts),
        #: for callers that need source-side extras such as ``hls_program``.
        self.source = source
        self.module = module
        pick = lambda override, attr, default: (  # noqa: E731
            override if override is not None
            else getattr(source, attr, None) or default)
        self.top: str = top or getattr(source, "top", None) or self._default_top()
        # A bare ModuleOp's .name is the op name ("builtin.module"), not a
        # design name — only non-module sources contribute one.
        source_name = None if source is module else getattr(source, "name", None)
        self.name: str = name or source_name or self.top
        self.interfaces: Dict[str, MemrefType] = dict(
            pick(interfaces, "interfaces", None) or self._derive_interfaces())
        self.scalar_args: Dict[str, int] = dict(pick(scalar_args, "scalar_args", {}))
        self.make_inputs = pick(make_inputs, "make_inputs", None)
        self.reference = pick(reference, "reference", None)
        self.external_models: Dict[str, Callable] = dict(
            pick(external_models, "external_models", {}))
        self.output_warmup: Dict[str, int] = dict(
            pick(output_warmup, "output_warmup", {}))

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_kernel(cls, kernel: str, *, config: Optional[FlowConfig] = None,
                    **parameters: Any) -> "Flow":
        """Build a registered kernel and wrap it in a Flow.

        Kernel size parameters are passed through to the kernel builder
        (``Flow.from_kernel("gemm", size=8)``).
        """
        from repro.kernels import build_kernel
        return cls(build_kernel(kernel, **parameters), config=config)

    @classmethod
    def from_graph(cls, graph: Any, *,
                   config: Optional[FlowConfig] = None) -> "Flow":
        """Wrap a :class:`~repro.graph.DesignGraph` in a Flow.

        The flow gains a ``compose`` stage ahead of ``hir``: the composed
        module is cached under the graph's fingerprint (which folds in every
        node module's content), so editing any node's HIR — or rewiring the
        graph — transparently rebuilds the composition and invalidates every
        downstream stage.
        """
        return cls(graph, config=config)

    @classmethod
    def from_scenario(cls, scenario: str, *,
                      config: Optional[FlowConfig] = None,
                      **parameters: Any) -> "Flow":
        """Build a registered composed scenario and wrap it in a Flow."""
        from repro.graph import build_scenario
        return cls(build_scenario(scenario, **parameters), config=config)

    # -- source introspection ------------------------------------------------
    def _functions(self) -> List[FuncOp]:
        return [op for op in self.module.symbols()
                if isinstance(op, FuncOp) and not op.is_external]

    def _default_top(self) -> str:
        functions = self._functions()
        if len(functions) == 1:
            return functions[0].symbol_name
        names = [f.symbol_name for f in functions]
        raise FlowError(
            f"cannot infer the top function of a module with "
            f"{len(functions)} functions ({names}); pass Flow(..., top=...)"
        )

    def _top_func(self) -> FuncOp:
        func = self.module.lookup(self.top)
        if not isinstance(func, FuncOp):
            raise FlowError(f"top function @{self.top} not found in module")
        return func

    def _derive_interfaces(self) -> Dict[str, MemrefType]:
        func = self._top_func()
        return {name: arg.type
                for arg, name in zip(func.arguments, func.arg_names)
                if isinstance(arg.type, MemrefType)}

    # -- stage cache --------------------------------------------------------
    def _stage(self, stage: str, key: tuple, fingerprint: str,
               provenance: Tuple[Tuple[str, str], ...],
               build: Callable[[], Tuple[Any, float]]) -> Artifact:
        fetch_start = _time.perf_counter()
        cached = self._stages.get(stage)
        if cached is not None and cached[0] == key:
            _STAGE_STATS["hits"] += 1
            with TRACER.activated(self.config.trace):
                TRACER.count("flow.stage.hit")
                TRACER.event("flow.stage.hit", cat="flow", stage=stage,
                             fingerprint=fingerprint[:12])
            return replace(cached[1], cached=True,
                           fetch_seconds=_time.perf_counter() - fetch_start)
        _STAGE_STATS["misses"] += 1
        with TRACER.activated(self.config.trace):
            TRACER.count("flow.stage.miss")
            with TRACER.span(f"flow.{stage}", cat="flow",
                             flow=getattr(self, "name", ""),
                             fingerprint=fingerprint[:12],
                             provenance=dict(provenance)):
                value, seconds = build()
        artifact = Artifact(stage=stage, value=value, seconds=seconds,
                            fingerprint=fingerprint, provenance=provenance,
                            cached=False)
        self._stages[stage] = (key, artifact)
        return artifact

    def clear(self) -> None:
        """Drop every cached stage artifact (next access rebuilds)."""
        self._stages.clear()

    def timings(self) -> Dict[str, float]:
        """Seconds spent building each currently cached stage."""
        return {stage: artifact.seconds
                for stage, (_, artifact) in self._stages.items()}

    # -- stages -------------------------------------------------------------
    def compose(self):
        """The composed artifacts of a graph-backed flow (cached per graph).

        The cache key is :meth:`repro.graph.DesignGraph.fingerprint` — a hash
        over every node module's content plus the edge/expose structure — so
        mutating one node's HIR rebuilds the composition while an untouched
        graph is served from cache.
        """
        if self.graph is None:
            raise FlowError(
                f"flow '{getattr(self, 'name', '?')}' was not built from a "
                "DesignGraph; construct it with Flow.from_graph(...)"
            )
        fingerprint = self.graph.fingerprint()
        key = (fingerprint,)
        provenance = (("graph", fingerprint),)

        def build():
            start = _time.perf_counter()
            artifacts = self.graph.build()
            return artifacts, _time.perf_counter() - start

        return self._stage("compose", key, fingerprint, provenance, build)

    def _adopt_composed(self, artifacts: Any, fingerprint: str) -> None:
        """Point this flow at freshly composed artifacts (graph changed)."""
        self._adopted_graph_fingerprint = fingerprint
        self.module = artifacts.module
        self.top = artifacts.top
        self.interfaces = dict(artifacts.interfaces)
        self.scalar_args = dict(artifacts.scalar_args)
        self.make_inputs = artifacts.make_inputs
        self.reference = artifacts.reference
        self.external_models = dict(artifacts.external_models)
        self.output_warmup = dict(artifacts.output_warmup)

    def hir(self) -> Artifact[ModuleOp]:
        """The source HIR module, structurally verified (lazily, per content)."""
        if self.graph is not None:
            composed = self.compose()
            # Adopt whenever the graph content moved past what this flow
            # last adopted — NOT on the artifact's cached flag, which a
            # direct compose() call in between would already have consumed.
            if composed.fingerprint != getattr(
                    self, "_adopted_graph_fingerprint", None):
                self._adopt_composed(composed.value, composed.fingerprint)
        fingerprint = module_fingerprint(self.module)
        key = (fingerprint, self.config.verify_structure)
        provenance = (("module", fingerprint),
                      ("verify_structure", str(self.config.verify_structure)))

        def build():
            start = _time.perf_counter()
            if self.config.verify_structure:
                verify_structure(self.module)
            return self.module, _time.perf_counter() - start

        return self._stage("hir", key, fingerprint, provenance, build)

    def verified(self):
        """Schedule-verification report for the source module (no raise)."""
        from repro.passes.schedule_verifier import verify_schedule
        parent = self.hir()
        key = (parent.fingerprint,)
        provenance = (("module", parent.fingerprint),)

        def build():
            start = _time.perf_counter()
            report = verify_schedule(self.module)
            return report, _time.perf_counter() - start

        return self._stage("verified", key, parent.fingerprint, provenance,
                           build)

    def _build_manager(self):
        from repro.passes.pipeline import (
            optimization_pipeline,
            verification_pipeline,
        )
        pipeline = self.config.pipeline
        if pipeline == "verify":
            return verification_pipeline(verify_each=self.config.verify_each)
        return optimization_pipeline(verify_each=self.config.verify_each,
                                     legacy=(pipeline == "legacy"))

    def optimized(self) -> Artifact[ModuleOp]:
        """The module after the configured pass pipeline.

        ``pipeline="none"`` returns the source module untouched (the legacy
        ``generate_verilog`` behaviour); the optimizing pipelines run on a
        clone, so the source module is never mutated by a Flow.
        """
        parent = self.hir()
        pipeline = self.config.pipeline
        key = (parent.fingerprint, pipeline, self.config.verify_each)
        provenance = (("module", parent.fingerprint),
                      ("pipeline", pipeline),
                      ("verify_each", str(self.config.verify_each)))

        def build():
            start = _time.perf_counter()
            if pipeline == "none":
                return self.module, _time.perf_counter() - start
            if pipeline == "verify":
                # Verification does not mutate; run it on the source module.
                self._build_manager().run(self.module)
                return self.module, _time.perf_counter() - start
            # Disk tier: an optimizing pipeline's output is a deterministic,
            # round-trippable function of (source content, pipeline config),
            # so a store hit replaces the whole pass pipeline with a parse.
            # Blobs are printed with_locations so the parsed module carries
            # the original source locations — Verilog regenerated from it is
            # byte-identical, location comments included.
            store = self.config.resolve_store()
            store_key = (f"{parent.fingerprint}-{pipeline}-"
                         f"{int(self.config.verify_each)}")
            if store is not None:
                text = store.get_text("ir", store_key)
                if text is not None:
                    try:
                        from repro.ir.parser import parse_module
                        module = parse_module(text, filename="<store:ir>")
                        return module, _time.perf_counter() - start
                    except IRError:
                        pass    # unparsable blob: rebuild (and re-publish)
            clone = self.module.clone()
            manager = self._build_manager()
            manager.run(clone)
            self._pass_report = manager.timing_report()
            if store is not None:
                from repro.ir.printer import print_module
                store.put("ir", store_key,
                          print_module(clone, with_locations=True))
            return clone, _time.perf_counter() - start

        return self._stage("optimized", key, parent.fingerprint, provenance,
                           build)

    def pass_report(self) -> Optional[str]:
        """Per-pass timing report of the last optimize run (None before)."""
        return getattr(self, "_pass_report", None)

    def verilog(self) -> Artifact[VerilogArtifact]:
        """Generate Verilog for the optimized module (cached per content)."""
        from repro.verilog.codegen import generate_verilog_impl
        parent = self.optimized()
        # The optimized module is either the source itself (parent
        # fingerprint IS its content hash) or a Flow-internal clone that
        # nothing else can mutate and that is a deterministic function of
        # (source content, pipeline) — so keying on the parent fingerprint +
        # pipeline is sound and avoids re-printing the clone per access.
        fingerprint = parent.fingerprint
        options = self.config.codegen_options()
        key = (fingerprint, self.config.pipeline, self.config.verify_each,
               self.top, options.emit_location_comments,
               options.emit_assertions)
        provenance = (("optimized", fingerprint), ("top", self.top),
                      ("pipeline", self.config.pipeline))

        def build():
            start = _time.perf_counter()
            result = generate_verilog_impl(parent.value, top=self.top,
                                           options=options)
            value = VerilogArtifact(design=result.design,
                                    statistics=dict(result.statistics))
            # Disk tier: preload (or publish) the emitted text, so `.text`
            # costs a checksum-verified read instead of a full emission.
            store = self.config.resolve_store()
            if store is not None:
                store_key = self._design_key(fingerprint)
                text = store.get_text("verilog", store_key)
                if text is not None:
                    value._text = text
                else:
                    store.put("verilog", store_key, value.text)
            return value, _time.perf_counter() - start

        return self._stage("verilog", key, fingerprint, provenance, build)

    def _design_key(self, fingerprint: str) -> str:
        """The persistent-store key for design-level artifacts: the module
        content fingerprint plus everything else that shapes the design."""
        options = self.config.codegen_options()
        return (f"{fingerprint}-{self.top}-{self.config.pipeline}-"
                f"{int(self.config.verify_each)}"
                f"{int(options.emit_location_comments)}"
                f"{int(options.emit_assertions)}")

    def resources(self):
        """Estimate FPGA resources of the generated design."""
        import json
        from repro.resources.model import ResourceReport, estimate_resources
        parent = self.verilog()
        key = (parent.fingerprint,)
        provenance = (("verilog", parent.fingerprint),)

        def build():
            start = _time.perf_counter()
            store = self.config.resolve_store()
            store_key = self._design_key(parent.fingerprint)
            if store is not None:
                text = store.get_text("resources", store_key)
                if text is not None:
                    try:
                        raw = json.loads(text)
                        report = ResourceReport(
                            lut=raw["lut"], ff=raw["ff"],
                            dsp=raw["dsp"], bram=raw["bram"])
                        return report, _time.perf_counter() - start
                    except (ValueError, KeyError, TypeError):
                        pass    # malformed blob: rebuild (and re-publish)
            report = estimate_resources(parent.value.design)
            if store is not None:
                store.put("resources", store_key, json.dumps(
                    {"lut": report.lut, "ff": report.ff,
                     "dsp": report.dsp, "bram": report.bram},
                    sort_keys=True))
            return report, _time.perf_counter() - start

        return self._stage("resources", key, parent.fingerprint, provenance,
                           build)

    # -- simulation ---------------------------------------------------------
    @property
    def design(self):
        """Convenience: the generated :class:`~repro.verilog.ast.Design`."""
        return self.verilog().value.design

    @property
    def verilog_text(self) -> str:
        """Convenience: the emitted Verilog source text."""
        return self.verilog().value.text

    def _resolve_inputs(self, seed: Optional[int],
                        inputs: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        if inputs is None:
            if self.make_inputs is None:
                raise FlowError(
                    f"flow '{self.name}' has no stimulus generator; pass "
                    "simulate(inputs={...}) or construct the Flow with "
                    "make_inputs="
                )
            return dict(self.make_inputs(0 if seed is None else seed))
        resolved = dict(inputs)
        unknown = sorted(set(resolved) - set(self.interfaces))
        if unknown:
            raise FlowError(
                f"unknown interface(s) {unknown}; top @{self.top} exposes "
                f"{sorted(self.interfaces)}"
            )
        for name, memref_type in self.interfaces.items():
            if name not in resolved:
                if memref_type.can_read:
                    # The design reads this memory: running it zero-filled
                    # would silently compute on garbage.
                    raise FlowError(
                        f"missing stimulus for readable interface '{name}' "
                        f"of @{self.top}; only write-only interfaces may be "
                        "omitted (they are zero-filled)"
                    )
                resolved[name] = np.zeros(memref_type.shape, dtype=np.int64)
        return resolved

    def simulate(self, seed: int = 0, *,
                 inputs: Optional[Mapping[str, Any]] = None,
                 engine: Optional[str] = None,
                 scalar_args: Optional[Mapping[str, int]] = None,
                 drain_cycles: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 profile: Optional[bool] = None,
                 ) -> Artifact[SimulationOutcome]:
        """Simulate one stimulus set on the resolved engine.

        Stimuli come from the flow's ``make_inputs(seed)`` generator unless
        ``inputs`` maps interface names to tensors directly (missing
        write-only interfaces are zero-filled).  Simulation always runs —
        only the compile artifacts behind it are cached (the Flow stages
        plus the per-design engine compile cache).  ``profile`` (per-call;
        default :attr:`FlowConfig.profile`) collects a
        :class:`~repro.obs.simprofile.SimProfile` into ``outcome.profile``.
        """
        from repro.sim.testbench import run_design_impl
        design_artifact = self.verilog()
        engine_name = self.config.resolve_engine(engine)
        steady = None
        fallback_provenance: tuple = ()
        if engine_name == "vector":
            # The fused engine is tied to the static-timing analysis: a
            # design whose schedule has no provable steady state executes on
            # the (semantically identical) compiled engine instead, and the
            # substitution is typed provenance rather than a silent swap.
            from repro.sim.engine.vector import (VectorUnsupported,
                                                 steady_state_of)
            try:
                steady = steady_state_of(self.optimized().value, self.top)
            except VectorUnsupported as error:
                from repro.resilience import bump
                bump("flow.vector_fallback")
                TRACER.count("flow.vector_fallback")
                TRACER.event("flow.vector_fallback", cat="flow",
                             flow=self.name, error=str(error))
                engine_name = "compiled"
                fallback_provenance = (
                    ("fallback", "compiled"),
                    ("fallback_reason", "no-static-steady-state"))
        resolved = self._resolve_inputs(seed, inputs)
        scalars = {**self.scalar_args, **(scalar_args or {})}
        provenance = (("verilog", design_artifact.fingerprint),
                      ("engine", engine_name), ("seed", str(seed))
                      ) + fallback_provenance
        profiler = None
        if self.config.profile if profile is None else profile:
            from repro.obs.simprofile import SimProfiler
            profiler = SimProfiler()
        # Persist generated simulator sources only for pure designs:
        # external models change elaboration in ways the design key cannot
        # see, so those compiles stay private to this process.
        store = None if self.external_models else self.config.resolve_store()
        from repro.sim.engine.cache import persist_compiled

        def run_engine(name):
            return run_design_impl(
                design_artifact.value.design,
                memories={name_: (memref_type, resolved[name_])
                          for name_, memref_type in self.interfaces.items()},
                scalar_inputs=scalars,
                external_models=self.external_models or None,
                drain_cycles=(self.config.drain_cycles if drain_cycles is None
                              else drain_cycles),
                max_cycles=(self.config.max_cycles if max_cycles is None
                            else max_cycles),
                engine=name,
                profiler=profiler,
                steady_state=steady if name == "vector" else None,
            )

        start = _time.perf_counter()
        with TRACER.activated(self.config.trace), \
                TRACER.span("flow.simulate", cat="flow", flow=self.name,
                            engine=engine_name, seed=seed,
                            fingerprint=design_artifact.fingerprint[:12]), \
                self.config.limits(), \
                persist_compiled(store,
                                 self._design_key(design_artifact.fingerprint)):
            try:
                run = run_engine(engine_name)
            except Exception as error:
                engine_name = self._fallback_engine(engine_name, error)
                run = run_engine(engine_name)
                provenance += (("fallback", "interpreted"),)
        if getattr(run, "fallback", None):
            # run_design_impl substituted the compiled engine mid-run (e.g.
            # engine="vector" with external models or a profiler attached).
            engine_name = run.engine or engine_name
            provenance += (("fallback", "compiled"),
                           ("fallback_reason", run.fallback))
        seconds = _time.perf_counter() - start
        if run.profile is not None and self.graph is not None:
            run.profile.bind_stream_edges(
                [edge.buffer_name for edge in self.graph.edges])
        outcome = SimulationOutcome(run=run, inputs=resolved,
                                    engine=engine_name,
                                    seed=None if inputs is not None else seed)
        return Artifact(stage="simulate", value=outcome, seconds=seconds,
                        fingerprint=design_artifact.fingerprint,
                        provenance=provenance)

    def _fallback_engine(self, engine_name: str, error: Exception) -> str:
        """Decide the engine-fallback chain: compiled → interpreted.

        Only compile-side failures (simulation/lowering errors, injected
        faults) fall back, and only when the failing engine is not already
        the interpreter.  A :class:`DivergenceError` is a *finding* of the
        differential engine, and a :class:`SimulationTimeout` a property of
        the design — never reasons to retry on another engine.  Anything
        else — Flow misconfiguration, stimulus errors, MemoryError —
        re-raises.
        """
        from repro.ir.errors import LoweringError, SimulationError
        from repro.resilience import InjectedFault, bump
        from repro.sim.engine.differential import DivergenceError
        from repro.sim.engine.window import SimulationTimeout
        if (not self.config.engine_fallback
                or engine_name == "interpreted"
                or isinstance(error, (DivergenceError, SimulationTimeout))
                or not isinstance(error, (SimulationError, LoweringError,
                                          InjectedFault))):
            raise error
        bump("flow.engine_fallback")
        TRACER.count("flow.engine_fallback")
        TRACER.event("flow.engine_fallback", cat="flow", flow=self.name,
                     failed=engine_name, error=type(error).__name__)
        return "interpreted"

    def simulate_batch(self, seeds: Optional[Iterable[int]] = None, *,
                       inputs_per_lane: Optional[Sequence[Mapping[str, Any]]] = None,
                       scalar_args: Optional[Mapping[str, int]] = None,
                       drain_cycles: Optional[int] = None,
                       max_cycles: Optional[int] = None,
                       profile: Optional[bool] = None,
                       ) -> Artifact[BatchOutcome]:
        """Simulate one stimulus lane per seed with the batched engine."""
        from repro.sim.engine.batch import run_design_batch_impl
        design_artifact = self.verilog()
        if inputs_per_lane is None:
            if seeds is None:
                raise FlowError("simulate_batch needs seeds or inputs_per_lane")
            seeds = list(seeds)
            lanes = [self._resolve_inputs(seed, None) for seed in seeds]
        else:
            seeds = list(seeds) if seeds is not None else None
            lanes = [self._resolve_inputs(None, inputs) for inputs in inputs_per_lane]
        scalars = {**self.scalar_args, **(scalar_args or {})}
        provenance = (("verilog", design_artifact.fingerprint),
                      ("engine", "batched"), ("lanes", str(len(lanes))))
        profiler = None
        if self.config.profile if profile is None else profile:
            from repro.obs.simprofile import BatchSimProfiler
            profiler = BatchSimProfiler()
        from repro.sim.engine.cache import persist_compiled
        store = None if self.external_models else self.config.resolve_store()
        start = _time.perf_counter()
        with TRACER.activated(self.config.trace), \
                TRACER.span("flow.simulate_batch", cat="flow",
                            flow=self.name, lanes=len(lanes),
                            fingerprint=design_artifact.fingerprint[:12]), \
                self.config.limits(), \
                persist_compiled(store,
                                 self._design_key(design_artifact.fingerprint)):
            run = run_design_batch_impl(
                design_artifact.value.design,
                memories={name: (memref_type,
                                 [inputs[name] for inputs in lanes])
                          for name, memref_type in self.interfaces.items()},
                scalar_inputs=scalars,
                external_models=self.external_models or None,
                drain_cycles=(self.config.drain_cycles if drain_cycles is None
                              else drain_cycles),
                max_cycles=(self.config.max_cycles if max_cycles is None
                            else max_cycles),
                profiler=profiler,
            )
        seconds = _time.perf_counter() - start
        if run.profiles is not None and self.graph is not None:
            edge_buffers = [edge.buffer_name for edge in self.graph.edges]
            for lane_profile in run.profiles:
                lane_profile.bind_stream_edges(edge_buffers)
        outcome = BatchOutcome(run=run, inputs_per_lane=lanes, seeds=seeds)
        return Artifact(stage="simulate_batch", value=outcome, seconds=seconds,
                        fingerprint=design_artifact.fingerprint,
                        provenance=provenance)

    def validate(self, seed: int = 0, *, engine: Optional[str] = None,
                 drain_cycles: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 ) -> Artifact[ValidationOutcome]:
        """Simulate ``seed`` and compare every output to the numpy reference."""
        if self.reference is None:
            raise FlowError(
                f"flow '{self.name}' has no reference model; construct it "
                "from KernelArtifacts or pass reference="
            )
        simulated = self.simulate(seed=seed, engine=engine,
                                  drain_cycles=drain_cycles,
                                  max_cycles=max_cycles)
        outcome = simulated.value
        ok = self._check_outputs(outcome.run, outcome.inputs)
        value = ValidationOutcome(name=self.name, engine=outcome.engine,
                                  cycles=outcome.run.cycles, ok=ok,
                                  run=outcome.run)
        return Artifact(stage="validate", value=value,
                        seconds=simulated.seconds,
                        fingerprint=simulated.fingerprint,
                        provenance=simulated.provenance + (("ok", str(ok)),))

    def _check_outputs(self, run, inputs) -> bool:
        if not run.done:
            return False
        return outputs_match(self.reference(inputs), run.memory_array,
                             self.output_warmup)

    # -- reporting ----------------------------------------------------------
    def report(self) -> str:
        """Human-readable summary of the stages built so far."""
        lines = [f"Flow '{self.name}' (top=@{self.top}, "
                 f"pipeline={self.config.pipeline})"]
        for stage, (_, artifact) in self._stages.items():
            lines.append(f"  {stage:<10} [{artifact.fingerprint[:12]}] "
                         f"{artifact.seconds * 1e3:9.2f} ms  "
                         f"{type(artifact.value).__name__}")
        if not self._stages:
            lines.append("  (no stages built yet)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Flow '{self.name}' top=@{self.top} "
                f"pipeline={self.config.pipeline} "
                f"stages={sorted(self._stages)}>")


__all__ = [
    "Artifact",
    "BatchOutcome",
    "ENV_VARS",
    "Flow",
    "FlowConfig",
    "FlowError",
    "PIPELINES",
    "SimulationOutcome",
    "ValidationOutcome",
    "VerilogArtifact",
    "outputs_match",
]
