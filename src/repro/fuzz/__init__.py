"""Differential fuzzing of the HIR toolchain (``python -m repro fuzz``).

The repo's redundancy — two pass pipelines, three simulation engines, a
cached Flow session — gives every randomly generated program several
independent paths that must agree.  This package turns that redundancy into
an automatic bug-finding machine:

* :mod:`repro.fuzz.generator` — seeded, size-bounded random generation of
  type- and schedule-correct HIR programs (:class:`ProgramSpec`),
* :mod:`repro.fuzz.spec` — the JSON-round-trippable spec and its
  deterministic materializer,
* :mod:`repro.fuzz.oracles` — the cross-pipeline, cross-engine and
  Flow-stage-cache equivalence checks,
* :mod:`repro.fuzz.shrink` — delta debugging of failing specs down to
  minimal reproducers,
* :mod:`repro.fuzz.runner` — the campaign driver and the self-contained
  reproducer scripts it writes (one per failing seed).

Quick use::

    from repro.fuzz import run_fuzz
    report = run_fuzz(seed=0, count=100, max_ops=40)
    assert report.ok, report.render()
"""

from repro.fuzz.generator import generate_spec
from repro.fuzz.oracles import (
    ORACLES,
    OracleFailure,
    check_engines,
    check_flow_cache,
    check_generator,
    check_pipeline,
    check_profile,
    check_program,
)
from repro.fuzz.runner import (
    DEFAULT_OUT_DIR,
    FuzzFailure,
    FuzzReport,
    fuzz_one,
    replay_spec,
    run_fuzz,
    write_repro,
)
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.fuzz.spec import (
    MaterializedProgram,
    OpSpec,
    ProgramSpec,
    SpecError,
    WriteSpec,
    materialize,
)

__all__ = [
    "DEFAULT_OUT_DIR",
    "FuzzFailure",
    "FuzzReport",
    "MaterializedProgram",
    "ORACLES",
    "OpSpec",
    "OracleFailure",
    "ProgramSpec",
    "ShrinkResult",
    "SpecError",
    "WriteSpec",
    "check_engines",
    "check_flow_cache",
    "check_generator",
    "check_pipeline",
    "check_profile",
    "check_program",
    "fuzz_one",
    "generate_spec",
    "materialize",
    "replay_spec",
    "run_fuzz",
    "shrink",
    "write_repro",
]
