"""Seeded, size-bounded random generation of :class:`ProgramSpec`.

The generator draws every structural decision — nest depth, loop extents,
initiation interval, iteration offsets, interface counts, read schedules,
the compute DAG and the output writes — from one ``random.Random(seed)``
stream, so a seed fully determines the program.  Programs are *type- and
schedule-correct by construction*: the generator only proposes operand
combinations the materializer can align with ``hir.delay``, keeps shift
amounts and cast widths in hardware-sensible ranges, and never builds an
all-constant multiply or shift (whose constant folding could grow values
without bound and drown the interesting rewrites).

Bias choices worth knowing about:

* constants are drawn mostly from small powers of two and their neighbours,
  so strength reduction (``x * 2**k`` → ``x << k``) and canonicalization
  patterns fire often;
* ``ii`` leans toward 1 (fully pipelined), the regime where operand-validity
  windows are tightest;
* op results are preferred over leaves when picking operands, producing
  deep dataflow rather than a wide bag of independent ops.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.fuzz.spec import (
    BINARY_KINDS,
    OpSpec,
    ProgramSpec,
    WriteSpec,
    is_const_ref,
    result_offset,
)
from repro.hir.ops import CMP_PREDICATES

#: Constants biased toward strength-reduction and canonicalization triggers.
CONST_POOL = (0, 1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 17, 31, 32, 64, -1, -2, -5)

#: Deepest validity offset the generator schedules a value at.  Bounds the
#: delay-register chains the materializer inserts (and the loop drain time).
MAX_OFFSET = 8

#: Hard ceiling on compute ops per program regardless of ``max_ops``.
OP_CEILING = 256


def generate_spec(seed: int, max_ops: int = 40,
                  sizes: Optional[Tuple[int, ...]] = None) -> ProgramSpec:
    """One random, schedule-valid program spec for ``seed``.

    ``sizes`` pins the loop extents (and thereby every interface shape) —
    the compose mode uses this to make a consumer whose inputs match a
    producer's output shape.
    """
    if max_ops < 1:
        raise ValueError(f"max_ops must be >= 1, got {max_ops}")
    rng = random.Random(seed)
    if sizes is None:
        rank = 1 if rng.random() < 0.6 else 2
        sizes = tuple(([rng.randint(2, 4)] if rank == 2 else [])
                      + [rng.randint(4, 8)])
    else:
        sizes = tuple(sizes)
        rank = len(sizes)
    ii = rng.choice((1, 1, 1, 2, 3))
    n_inputs = rng.randint(1, 3)
    n_outputs = rng.randint(1, 2)
    iter_offsets = tuple(rng.randint(1, 2) for _ in range(rank))
    read_offsets = tuple(rng.choice((0, 0, 0, 1)) for _ in range(n_inputs))
    output_ports = tuple(rng.choice(("w", "w", "w", "rw"))
                         for _ in range(n_outputs))

    # The operand pool: (ref, validity offset) with None meaning timeless.
    pool: List[Tuple[str, Optional[int]]] = [("iv", 0)]
    pool += [(f"in{k}", read_offsets[k] + 1) for k in range(n_inputs)]
    pool += [(f"c:{rng.choice(CONST_POOL)}", None) for _ in range(3)]

    ops: List[OpSpec] = []
    n_ops = rng.randint(1, min(max_ops, OP_CEILING))
    while len(ops) < n_ops:
        op = _random_op(rng, pool)
        if op is None:
            break
        offsets = [_pool_offset(pool, ref) for ref in op.operands]
        pool.append((f"op{len(ops)}", result_offset(op.kind, offsets,
                                                    op.params)))
        ops.append(op)

    writes = []
    for output in range(n_outputs):
        writes.append(WriteSpec(
            output=output,
            value=_pick_write_value(rng, pool),
            index_perm=tuple(rng.sample(range(rank), rank)),
        ))

    return ProgramSpec(
        seed=seed,
        sizes=sizes,
        ii=ii,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        ops=tuple(ops),
        writes=tuple(writes),
        iter_offsets=iter_offsets,
        read_offsets=read_offsets,
        output_ports=output_ports,
    )


def _pool_offset(pool: List[Tuple[str, Optional[int]]],
                 ref: str) -> Optional[int]:
    for candidate, offset in pool:
        if candidate == ref:
            return offset
    return None  # constants


def _pick(rng: random.Random, pool: List[Tuple[str, Optional[int]]],
          timed: Optional[bool] = None,
          max_offset: Optional[int] = None) -> Optional[Tuple[str, Optional[int]]]:
    """A random pool entry, preferring recent (deep-dataflow) entries.

    ``timed=True`` restricts to cycle-bound values, ``timed=False`` to
    constants; ``max_offset`` bounds how deep in the pipeline the value is.
    """
    candidates = [
        (ref, offset) for ref, offset in pool
        if (timed is None or (offset is not None) == timed)
        and (max_offset is None or offset is None or offset <= max_offset)
    ]
    if not candidates:
        return None
    # Squared draw: later entries (op results) are picked more often.
    index = max(rng.randrange(len(candidates)), rng.randrange(len(candidates)))
    return candidates[index]


def _random_op(rng: random.Random,
               pool: List[Tuple[str, Optional[int]]]) -> Optional[OpSpec]:
    kind = rng.choices(
        ("binary", "shift", "cmpsel", "castpair", "delay"),
        weights=(50, 15, 10, 10, 15),
    )[0]
    if kind == "binary":
        op_kind = rng.choice(BINARY_KINDS)
        first = _pick(rng, pool, timed=True, max_offset=MAX_OFFSET)
        second = _pick(rng, pool, max_offset=MAX_OFFSET)
        if first is None or second is None:
            return None
        operands = [first[0], second[0]]
        rng.shuffle(operands)
        return OpSpec(kind=op_kind, operands=tuple(operands))
    if kind == "shift":
        operand = _pick(rng, pool, timed=True, max_offset=MAX_OFFSET)
        if operand is None:
            return None
        return OpSpec(kind=rng.choice(("shl", "shr")),
                      operands=(operand[0],),
                      params=(rng.randint(0, 3),))
    if kind == "cmpsel":
        picks = [_pick(rng, pool, max_offset=MAX_OFFSET) for _ in range(4)]
        if any(pick is None for pick in picks):
            return None
        return OpSpec(kind="cmpsel",
                      operands=tuple(pick[0] for pick in picks),
                      predicate=rng.choice(CMP_PREDICATES))
    if kind == "castpair":
        operand = _pick(rng, pool, max_offset=MAX_OFFSET)
        if operand is None:
            return None
        return OpSpec(kind="castpair", operands=(operand[0],),
                      params=(rng.randint(4, 24),))
    # delay: explicit re-timing of an already cycle-bound value.
    cycles = rng.randint(1, 2)
    operand = _pick(rng, pool, timed=True, max_offset=MAX_OFFSET - cycles)
    if operand is None:
        return None
    return OpSpec(kind="delay", operands=(operand[0],), params=(cycles,))


def derive_consumer_spec(spec: ProgramSpec, max_ops: int = 40) -> ProgramSpec:
    """The compose mode's downstream program for ``spec``.

    Deterministically derives a second program whose loop extents equal the
    shape of ``spec``'s first output, so the producer's ``O0`` can stream
    into the consumer's ``A0`` through a :class:`repro.graph.DesignGraph`
    edge.  The consumer is an ordinary generated program (own seed stream),
    merely pinned to the matching shape.
    """
    out_shape = tuple(spec.sizes[dim] for dim in spec.writes[0].index_perm)
    return generate_spec(spec.seed ^ 0x5EED_C0DE, max_ops=max_ops,
                         sizes=out_shape)


def _pick_write_value(rng: random.Random,
                      pool: List[Tuple[str, Optional[int]]]) -> str:
    # Prefer op results so the written value exercises the generated DAG;
    # fall back to any non-constant, then anything.
    results = [ref for ref, _ in pool if ref.startswith("op")]
    if results and rng.random() < 0.85:
        return rng.choice(results)
    timed = [ref for ref, offset in pool
             if offset is not None and not is_const_ref(ref)]
    if timed and rng.random() < 0.9:
        return rng.choice(timed)
    return rng.choice([ref for ref, _ in pool])


__all__ = ["CONST_POOL", "MAX_OFFSET", "OP_CEILING", "derive_consumer_spec",
           "generate_spec"]
