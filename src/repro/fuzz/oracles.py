"""Differential oracles: every redundant path through the toolchain is a bug
detector.

The repo deliberately keeps redundant implementations — a legacy full-re-walk
pass pipeline next to the worklist one, an interpreted reference simulator
next to the compiled and batched engines, cached Flow stages next to cold
rebuilds.  Each oracle runs one generated program down two or more of those
paths and demands equivalence:

``generator``
    The program itself must be structurally valid and schedule-clean; a
    diagnostic here is a bug in the fuzzer's generator (or a verifier
    regression) rather than in the compiler under test.
``pipeline``
    Worklist passes vs the seed-equivalent legacy passes: byte-identical
    optimized IR text and byte-identical emitted Verilog.
``engines``
    Interpreted vs compiled simulation in lockstep (every signal and memory
    word, every phase, via :class:`DifferentialSimulator`), plus the batched
    engine lane-for-lane against per-lane interpreted runs.
``compose``
    The generated program composed with a derived downstream program into a
    two-node :class:`repro.graph.DesignGraph` (producer output streaming
    into consumer input through an on-chip buffer): the composed multi-
    module design must be schedule-clean, and interpreted, compiled and
    batched simulation of it must agree exactly like the single-kernel
    engine oracle demands.
``flow-cache``
    Cold vs warm :class:`repro.flow.Flow` stages: warm accesses must be
    served from cache with identical bytes, rebuilding a fresh session must
    reproduce them, and mutating the source module must invalidate (then
    reproducing the original content must restore the original bytes).
``profile``
    The opt-in simulation profiler (:mod:`repro.obs.simprofile`) counts
    only architectural events, so the profile of one stimulus must be
    bit-identical — per-op firings, per-cycle event histogram, port
    occupancy, memory write traffic — across the interpreted, compiled and
    batched engines (:meth:`repro.obs.simprofile.SimProfile.signature`).
``faults``
    Crash-safety (:mod:`repro.store` / :mod:`repro.resilience`): the flow
    runs under a matrix of seeded fault plans — injected I/O errors, torn
    writes, bit-flipped payloads, failed fsyncs/renames/locks, engine
    compile failures.  Each faulted run must either fail with a clean typed
    error or produce byte-identical Verilog and identical simulation
    results; and a fault-free session over the *same* (possibly damaged)
    persistent store must always reproduce the baseline bytes — no fault
    may poison the store into serving a wrong artifact.

Every check is pure with respect to the spec: oracles materialize their own
modules and never mutate the spec, so the shrinker can re-run them freely.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.fuzz.spec import MaterializedProgram, ProgramSpec, materialize
from repro.ir.errors import IRError
from repro.ir.printer import print_module
from repro.ir.verifier import verify as verify_structure
from repro.passes.pipeline import optimization_pipeline
from repro.passes.schedule_verifier import verify_schedule
from repro.verilog.codegen import generate_verilog_impl
from repro.verilog.emitter import emit_design

#: Oracle names in the order they run.
ORACLES: Tuple[str, ...] = ("pipeline", "engines", "compose", "flow-cache",
                            "profile", "faults")

#: The seeded fault-plan matrix the ``faults`` oracle (and the CI chaos job)
#: sweeps: every fault point of the store's publish/read path plus the
#: engine-compile fallback, one plan at a time.
FAULT_PLAN_MATRIX: Tuple[str, ...] = (
    "store.write:io_error",
    "store.write:torn@2",
    "store.write:corrupt",
    "store.fsync:io_error",
    "store.rename:io_error",
    "store.read:io_error*3",
    "store.lock:io_error*2",
    "engine.compile:error",
)

#: Stimulus lanes the engine oracle drives through the batched engine.
DEFAULT_LANES = 3

#: Cycle budget for one generated program (they finish in a few hundred).
MAX_CYCLES = 20000


@dataclass(frozen=True)
class OracleFailure:
    """One divergence between two paths that must agree."""

    oracle: str
    message: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.message}"


def _first_diff(expected: str, actual: str, label_a: str, label_b: str,
                context: int = 2) -> str:
    """A short unified-diff excerpt pinpointing the first divergence."""
    diff = list(difflib.unified_diff(
        expected.splitlines(), actual.splitlines(),
        fromfile=label_a, tofile=label_b, lineterm="", n=context,
    ))
    head = diff[:14]
    if len(diff) > len(head):
        head.append(f"... ({len(diff) - len(head)} more diff lines)")
    return "\n".join(head)


def make_lane_inputs(spec: ProgramSpec,
                     interfaces: Dict[str, object],
                     input_names: Sequence[str],
                     output_names: Sequence[str],
                     lane: int) -> Dict[str, np.ndarray]:
    """Deterministic stimulus tensors for ``(spec.seed, lane)``."""
    rng = np.random.default_rng([spec.seed & 0x7FFFFFFF, lane])
    inputs: Dict[str, np.ndarray] = {}
    for name in input_names:
        shape = interfaces[name].shape
        inputs[name] = rng.integers(-1000, 1000, size=shape)
    for name in output_names:
        inputs[name] = np.zeros(interfaces[name].shape, dtype=np.int64)
    return inputs


def _optimized_module(spec: ProgramSpec, legacy: bool):
    program = materialize(spec)
    optimization_pipeline(verify_each=False, legacy=legacy).run(program.module)
    return program


def _verilog_text(program: MaterializedProgram) -> str:
    result = generate_verilog_impl(program.module, top=program.top)
    return emit_design(result.design)


# --------------------------------------------------------------------------- #
# Individual oracles
# --------------------------------------------------------------------------- #


def check_generator(spec: ProgramSpec) -> Optional[OracleFailure]:
    """The generated program must be structurally and schedule-valid."""
    try:
        program = materialize(spec)
        verify_structure(program.module)
    except IRError as error:
        return OracleFailure("generator", f"materialization failed: {error}")
    report = verify_schedule(program.module)
    if not report.ok:
        return OracleFailure(
            "generator",
            "generated program is not schedule-clean: "
            + "; ".join(d.render() for d in report.diagnostics[:3]),
        )
    return None


def check_pipeline(spec: ProgramSpec) -> Optional[OracleFailure]:
    """Worklist and legacy pass pipelines must agree byte for byte."""
    try:
        fast = _optimized_module(spec, legacy=False)
        legacy = _optimized_module(spec, legacy=True)
    except IRError as error:
        return OracleFailure("pipeline", f"pipeline crashed: {error}")
    fast_ir = print_module(fast.module)
    legacy_ir = print_module(legacy.module)
    if fast_ir != legacy_ir:
        return OracleFailure(
            "pipeline",
            "worklist pipeline diverged from legacy on the optimized IR:\n"
            + _first_diff(legacy_ir, fast_ir, "legacy-ir", "worklist-ir"),
        )
    fast_verilog = _verilog_text(fast)
    legacy_verilog = _verilog_text(legacy)
    if fast_verilog != legacy_verilog:
        return OracleFailure(
            "pipeline",
            "pipelines agree on IR but emitted different Verilog:\n"
            + _first_diff(legacy_verilog, fast_verilog,
                          "legacy-verilog", "worklist-verilog"),
        )
    return None


def check_engines(spec: ProgramSpec,
                  lanes: int = DEFAULT_LANES) -> Optional[OracleFailure]:
    """Interpreted, compiled, batched and vector engines: one trace.

    Lane 0 runs the differential engine (interpreted + compiled in lockstep,
    plus its fused-run vector leg); every lane is then replayed through the
    vector engine and the batched engine and compared bit-for-bit.  A vector
    run that fell back to the compiled engine (``run.fallback``) is the
    typed-unsupported path — the substitution itself is the behaviour under
    test, so the comparison is skipped rather than failed.
    """
    from repro.ir.errors import SimulationError
    from repro.sim.engine.batch import run_design_batch_impl
    from repro.sim.engine.differential import DivergenceError
    from repro.sim.testbench import run_design_impl

    try:
        program = _optimized_module(spec, legacy=False)
        design = generate_verilog_impl(program.module,
                                       top=program.top).design
    except IRError as error:
        return OracleFailure("engines", f"compilation crashed: {error}")

    lane_inputs = [
        make_lane_inputs(spec, program.interfaces, program.input_names,
                         program.output_names, lane)
        for lane in range(lanes)
    ]

    def memories_for(inputs):
        return {name: (memref_type, inputs[name])
                for name, memref_type in program.interfaces.items()}

    single_runs = []
    for lane, inputs in enumerate(lane_inputs):
        # Lane 0 runs the interpreted reference and the compiled engine in
        # lockstep; the remaining lanes establish per-lane references for
        # the batched comparison below.
        engine = "differential" if lane == 0 else "interpreted"
        try:
            run = run_design_impl(design, memories=memories_for(inputs),
                                  max_cycles=MAX_CYCLES, drain_cycles=16,
                                  engine=engine)
        except DivergenceError as error:
            return OracleFailure(
                "engines", f"compiled engine diverged from the interpreted "
                f"reference (lane {lane} stimulus): {error}")
        except SimulationError as error:
            return OracleFailure("engines", f"simulation crashed: {error}")
        if not run.done:
            return OracleFailure(
                "engines",
                f"design never pulsed done within {MAX_CYCLES} cycles "
                f"(lane {lane})")
        single_runs.append(run)

    for lane, (inputs, single) in enumerate(zip(lane_inputs, single_runs)):
        try:
            replay = run_design_impl(design, memories=memories_for(inputs),
                                     max_cycles=MAX_CYCLES, drain_cycles=16,
                                     engine="vector")
        except SimulationError as error:
            return OracleFailure(
                "engines", f"vector engine crashed (lane {lane}): {error}")
        if replay.fallback is not None:
            continue
        if replay.cycles != single.cycles:
            return OracleFailure(
                "engines",
                f"vector lane {lane} took {replay.cycles} cycles, the "
                f"per-cycle run took {single.cycles}")
        for name in program.output_names:
            expected = single.memory_array(name)
            produced = replay.memory_array(name)
            if not np.array_equal(produced, expected):
                bad = np.argwhere(np.asarray(produced) != np.asarray(expected))
                return OracleFailure(
                    "engines",
                    f"vector lane {lane} output '{name}' differs from the "
                    f"per-cycle run at {len(bad)} position(s), first at "
                    f"{tuple(bad[0])}: vector="
                    f"{np.asarray(produced)[tuple(bad[0])]} per-cycle="
                    f"{np.asarray(expected)[tuple(bad[0])]}")
        for name, memory in single.memories.items():
            other = replay.memories[name]
            if (other.reads, other.writes) != (memory.reads, memory.writes):
                return OracleFailure(
                    "engines",
                    f"vector lane {lane} access counts on '{name}' differ: "
                    f"{(other.reads, other.writes)} != "
                    f"{(memory.reads, memory.writes)}")

    try:
        batch = run_design_batch_impl(
            design,
            memories={name: (memref_type,
                             [inputs[name] for inputs in lane_inputs])
                      for name, memref_type in program.interfaces.items()},
            max_cycles=MAX_CYCLES, drain_cycles=16,
        )
    except SimulationError as error:
        return OracleFailure("engines", f"batched engine crashed: {error}")

    for lane, single in enumerate(single_runs):
        if not batch.done[lane]:
            return OracleFailure(
                "engines", f"batched lane {lane} never finished "
                f"(single-lane run finished in {single.cycles} cycles)")
        if int(batch.cycles[lane]) != single.cycles:
            return OracleFailure(
                "engines",
                f"batched lane {lane} took {int(batch.cycles[lane])} cycles, "
                f"single-lane run took {single.cycles}")
        for name in program.output_names:
            expected = single.memory_array(name)
            produced = batch.memory_array(name, lane)
            if not np.array_equal(produced, expected):
                bad = np.argwhere(np.asarray(produced) != np.asarray(expected))
                return OracleFailure(
                    "engines",
                    f"batched lane {lane} output '{name}' differs from the "
                    f"single-lane run at {len(bad)} position(s), first at "
                    f"{tuple(bad[0])}: batched="
                    f"{np.asarray(produced)[tuple(bad[0])]} single="
                    f"{np.asarray(expected)[tuple(bad[0])]}")
    return None


def check_compose(spec: ProgramSpec,
                  lanes: int = 2) -> Optional[OracleFailure]:
    """A two-node composition of the program must behave like one design."""
    from repro.ir.errors import SimulationError
    from repro.graph import DesignGraph, GraphError
    from repro.fuzz.generator import derive_consumer_spec
    from repro.kernels.base import KernelArtifacts
    from repro.sim.engine.batch import run_design_batch_impl
    from repro.sim.engine.differential import DivergenceError
    from repro.sim.testbench import run_design_impl

    consumer_spec = derive_consumer_spec(spec)
    try:
        producer = materialize(spec, name="producer")
        consumer = materialize(consumer_spec, name="consumer")
        graph = DesignGraph(f"fuzz_compose_{spec.seed}")
        producer_node = graph.add_node(KernelArtifacts(
            name="producer", module=producer.module, top=producer.top,
            interfaces=producer.interfaces))
        consumer_node = graph.add_node(KernelArtifacts(
            name="consumer", module=consumer.module, top=consumer.top,
            interfaces=consumer.interfaces))
        graph.connect(producer_node, producer.output_names[0],
                      consumer_node, consumer.input_names[0])
        artifacts = graph.build()
    except (GraphError, IRError) as error:
        return OracleFailure("compose", f"composition failed: {error}")
    try:
        verify_structure(artifacts.module)
    except IRError as error:
        return OracleFailure(
            "compose", f"composed module is structurally invalid: {error}")
    report = verify_schedule(artifacts.module)
    if not report.ok:
        return OracleFailure(
            "compose",
            "composed design is not schedule-clean: "
            + "; ".join(d.render() for d in report.diagnostics[:3]),
        )
    try:
        optimization_pipeline(verify_each=False).run(artifacts.module)
        design = generate_verilog_impl(artifacts.module,
                                       top=artifacts.top).design
    except IRError as error:
        return OracleFailure("compose", f"composed compile crashed: {error}")

    lane_inputs = [dict(artifacts.make_inputs(lane)) for lane in range(lanes)]
    outputs = [name for name, memref_type in artifacts.interfaces.items()
               if memref_type.can_write]

    single_runs = []
    for lane, inputs in enumerate(lane_inputs):
        engine = "differential" if lane == 0 else "interpreted"
        try:
            run = run_design_impl(
                design,
                memories={name: (memref_type, inputs[name])
                          for name, memref_type in artifacts.interfaces.items()},
                max_cycles=MAX_CYCLES, drain_cycles=16, engine=engine)
        except DivergenceError as error:
            return OracleFailure(
                "compose", f"compiled engine diverged from the interpreted "
                f"reference on the composed design (lane {lane}): {error}")
        except SimulationError as error:
            return OracleFailure("compose",
                                 f"composed simulation crashed: {error}")
        if not run.done:
            return OracleFailure(
                "compose",
                f"composed design never pulsed done within {MAX_CYCLES} "
                f"cycles (lane {lane})")
        single_runs.append(run)

    try:
        batch = run_design_batch_impl(
            design,
            memories={name: (memref_type,
                             [inputs[name] for inputs in lane_inputs])
                      for name, memref_type in artifacts.interfaces.items()},
            max_cycles=MAX_CYCLES, drain_cycles=16)
    except SimulationError as error:
        return OracleFailure("compose",
                             f"batched composed engine crashed: {error}")
    for lane, single in enumerate(single_runs):
        if not batch.done[lane] or int(batch.cycles[lane]) != single.cycles:
            return OracleFailure(
                "compose",
                f"batched lane {lane} of the composed design took "
                f"{int(batch.cycles[lane])} cycles (done={bool(batch.done[lane])}), "
                f"single-lane run took {single.cycles}")
        for name in outputs:
            expected = single.memory_array(name)
            produced = batch.memory_array(name, lane)
            if not np.array_equal(produced, expected):
                return OracleFailure(
                    "compose",
                    f"batched lane {lane} output '{name}' of the composed "
                    "design differs from the single-lane run")
    return None


def check_flow_cache(spec: ProgramSpec) -> Optional[OracleFailure]:
    """Flow stage caching must be invisible except for speed."""
    from repro.flow import Flow, FlowConfig
    from repro.hir.ops import ConstantOp

    config = FlowConfig(pipeline="optimize", verify_each=False)
    try:
        program = materialize(spec)
        flow = Flow(program.module, top=program.top, config=config)
        cold = flow.verilog()
        warm = flow.verilog()
    except IRError as error:
        return OracleFailure("flow-cache", f"flow crashed: {error}")
    if cold.cached:
        return OracleFailure(
            "flow-cache", "first verilog() access claims to be cached")
    if not warm.cached:
        return OracleFailure(
            "flow-cache", "second verilog() access was not served from the "
            "stage cache")
    if warm.value.text != cold.value.text:
        return OracleFailure(
            "flow-cache", "warm verilog() returned different bytes:\n"
            + _first_diff(cold.value.text, warm.value.text, "cold", "warm"))

    # A fresh session over a re-materialized (identical) module must land on
    # the same fingerprint and the same bytes.
    fresh = Flow(materialize(spec).module, top=program.top, config=config)
    rebuilt = fresh.verilog()
    if rebuilt.fingerprint != cold.fingerprint:
        return OracleFailure(
            "flow-cache",
            f"re-materialized module fingerprinted differently "
            f"({rebuilt.fingerprint} vs {cold.fingerprint}) — "
            "materialization is not deterministic")
    if rebuilt.value.text != cold.value.text:
        return OracleFailure(
            "flow-cache", "fresh flow produced different Verilog:\n"
            + _first_diff(cold.value.text, rebuilt.value.text,
                          "first-session", "fresh-session"))

    # Mutating the source module must invalidate every downstream stage;
    # restoring the original content must restore the original bytes.
    constant = next((op for op in program.module.walk()
                     if isinstance(op, ConstantOp)), None)
    if constant is None:
        return None
    original = constant.value
    constant.set_attr("value", original + 1)
    try:
        mutated = flow.verilog()
        if mutated.cached:
            return OracleFailure(
                "flow-cache",
                "stage cache served a stale artifact after the source module "
                "was mutated (fingerprint invalidation failed)")
        if mutated.fingerprint == cold.fingerprint:
            return OracleFailure(
                "flow-cache",
                "module content changed but the stage fingerprint did not")
    except IRError as error:
        return OracleFailure(
            "flow-cache", f"recompile after mutation crashed: {error}")
    finally:
        constant.set_attr("value", original)
    restored = flow.verilog()
    if restored.cached or restored.value.text != cold.value.text:
        return OracleFailure(
            "flow-cache",
            "restoring the original module content did not reproduce the "
            "original Verilog bytes")
    return None


def check_profile(spec: ProgramSpec) -> Optional[OracleFailure]:
    """The simulation profile of one stimulus must be engine-independent."""
    import json

    from repro.ir.errors import SimulationError
    from repro.obs.simprofile import BatchSimProfiler, SimProfiler
    from repro.sim.engine.batch import run_design_batch_impl
    from repro.sim.testbench import run_design_impl

    try:
        program = _optimized_module(spec, legacy=False)
        design = generate_verilog_impl(program.module,
                                       top=program.top).design
    except IRError as error:
        return OracleFailure("profile", f"compilation crashed: {error}")

    inputs = make_lane_inputs(spec, program.interfaces, program.input_names,
                              program.output_names, lane=0)
    memories = {name: (memref_type, inputs[name])
                for name, memref_type in program.interfaces.items()}

    signatures = {}
    try:
        for engine in ("interpreted", "compiled"):
            run = run_design_impl(design, memories=dict(memories),
                                  max_cycles=MAX_CYCLES, drain_cycles=16,
                                  engine=engine, profiler=SimProfiler())
            if not run.done:
                return OracleFailure(
                    "profile", f"design never pulsed done within "
                    f"{MAX_CYCLES} cycles ({engine})")
            signatures[engine] = run.profile.signature()
        batch = run_design_batch_impl(
            design,
            memories={name: (memref_type, [inputs[name]])
                      for name, memref_type in program.interfaces.items()},
            max_cycles=MAX_CYCLES, drain_cycles=16,
            profiler=BatchSimProfiler())
        if not batch.done[0]:
            return OracleFailure(
                "profile",
                f"design never pulsed done within {MAX_CYCLES} cycles "
                "(batched)")
        signatures["batched"] = batch.profiles[0].signature()
    except SimulationError as error:
        return OracleFailure("profile", f"profiled simulation crashed: "
                                        f"{error}")

    reference = signatures["interpreted"]
    for engine in ("compiled", "batched"):
        if signatures[engine] != reference:
            return OracleFailure(
                "profile",
                f"{engine} profile differs from the interpreted profile:\n"
                + _first_diff(json.dumps(reference, indent=1, sort_keys=True),
                              json.dumps(signatures[engine], indent=1,
                                         sort_keys=True),
                              "interpreted", engine))
    return None


def check_faults(spec: ProgramSpec,
                 plans: Sequence[str] = FAULT_PLAN_MATRIX
                 ) -> Optional[OracleFailure]:
    """Injected faults must never change what the toolchain produces.

    For every plan in :data:`FAULT_PLAN_MATRIX` the whole flow (optimize →
    Verilog → compiled simulation, persisting through a fresh
    :class:`repro.store.ArtifactStore`) runs twice over one store directory:

    1. *under the fault plan* — the run must either raise a clean typed
       error (:class:`~repro.ir.errors.IRError` subclass or an
       :class:`~repro.resilience.InjectedFault`) or produce byte-identical
       Verilog and identical cycle counts / output memories;
    2. *fault-free, same store* — whatever damage the faulted session left
       behind (torn temp files, corrupt blobs, missing fsyncs), a clean
       session over that store must reproduce the baseline exactly.  A
       fault may cost a rebuild; it may never poison a served artifact.
    """
    import tempfile

    from repro.flow import Flow, FlowConfig
    from repro.resilience import FaultPlan, FaultPlanError, InjectedFault, \
        install_plan

    program = materialize(spec)
    inputs = make_lane_inputs(spec, program.interfaces, program.input_names,
                              program.output_names, lane=0)

    def run_session(store_dir: str):
        """One cold toolchain session persisting into ``store_dir``."""
        flow = Flow(materialize(spec).module, top=program.top,
                    config=FlowConfig(pipeline="optimize", verify_each=False,
                                      engine="compiled",
                                      store_dir=store_dir))
        verilog = flow.verilog().value.text
        outcome = flow.simulate(inputs=dict(inputs), max_cycles=MAX_CYCLES,
                                drain_cycles=16).value
        if not outcome.run.done:
            raise IRError(
                f"design never pulsed done within {MAX_CYCLES} cycles")
        memories = {name: np.asarray(outcome.memory_array(name)).copy()
                    for name in program.output_names}
        return verilog, outcome.run.cycles, memories

    def describe_mismatch(plan: str, label: str, result) -> Optional[str]:
        verilog, cycles, memories = result
        if verilog != base_verilog:
            return (f"plan '{plan}': {label} produced different Verilog:\n"
                    + _first_diff(base_verilog, verilog, "fault-free", label))
        if cycles != base_cycles:
            return (f"plan '{plan}': {label} simulation took {cycles} "
                    f"cycles, fault-free run took {base_cycles}")
        for name, expected in base_memories.items():
            if not np.array_equal(memories[name], expected):
                return (f"plan '{plan}': {label} output '{name}' differs "
                        "from the fault-free run")
        return None

    with tempfile.TemporaryDirectory(prefix="repro-faults-base-") as base_dir:
        base_verilog, base_cycles, base_memories = run_session(base_dir)

    for plan in plans:
        try:
            fault_plan = FaultPlan.parse(plan, seed=spec.seed)
        except FaultPlanError as error:
            return OracleFailure("faults", f"unparseable plan '{plan}': "
                                           f"{error}")
        with tempfile.TemporaryDirectory(prefix="repro-faults-") as store_dir:
            failed = None
            try:
                with install_plan(fault_plan):
                    faulted = run_session(store_dir)
            except (IRError, InjectedFault) as error:
                failed = error          # a clean typed failure is acceptable
            except Exception as error:  # noqa: BLE001 - untyped escape IS a bug
                return OracleFailure(
                    "faults",
                    f"plan '{plan}': run under faults escaped with an "
                    f"untyped {type(error).__name__}: {error}")
            if failed is None:
                message = describe_mismatch(plan, "run under faults", faulted)
                if message is not None:
                    return OracleFailure("faults", message)

            # Recovery leg: a fault-free session over the same (possibly
            # damaged) store must always reproduce the baseline bytes.
            try:
                recovered = run_session(store_dir)
            except (IRError, InjectedFault) as error:
                return OracleFailure(
                    "faults",
                    f"plan '{plan}': fault-free recovery session over the "
                    f"damaged store failed: {type(error).__name__}: {error}")
            message = describe_mismatch(plan, "recovery session", recovered)
            if message is not None:
                return OracleFailure("faults", message)
    return None


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #

_CHECKS = {
    "pipeline": check_pipeline,
    "engines": check_engines,
    "compose": check_compose,
    "flow-cache": check_flow_cache,
    "profile": check_profile,
    "faults": check_faults,
}


def check_program(spec: ProgramSpec,
                  oracles: Iterable[str] = ORACLES) -> Optional[OracleFailure]:
    """Run ``spec`` through the selected oracles; first failure wins.

    The generator oracle always runs first — cross-checking an invalid
    program would blame the compiler for the fuzzer's own bug.
    """
    failure = check_generator(spec)
    if failure is not None:
        return failure
    for name in oracles:
        check = _CHECKS.get(name)
        if check is None:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {sorted(_CHECKS)}")
        try:
            failure = check(spec)
        except Exception as error:  # noqa: BLE001 - a crash IS a finding
            failure = OracleFailure(name, f"oracle crashed: "
                                          f"{type(error).__name__}: {error}")
        if failure is not None:
            return failure
    return None


__all__ = [
    "DEFAULT_LANES",
    "FAULT_PLAN_MATRIX",
    "MAX_CYCLES",
    "ORACLES",
    "OracleFailure",
    "check_compose",
    "check_engines",
    "check_faults",
    "check_flow_cache",
    "check_generator",
    "check_pipeline",
    "check_profile",
    "check_program",
    "make_lane_inputs",
]
