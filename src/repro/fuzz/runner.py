"""The fuzz campaign driver: generate → cross-check → shrink → reproduce.

:func:`run_fuzz` drives ``count`` seeded programs through every oracle.  Each
failure is shrunk to a minimal spec and written out as a *self-contained
reproducer script* named after the seed — re-running the script replays the
minimized program through the same oracles and exits non-zero while the bug
reproduces, so a CI artifact is all a developer needs.

Seeds are the unit of reproducibility end to end::

    python -m repro fuzz --seed 0 --count 100 --max-ops 40
    python -m repro fuzz --seed 123456 --count 1      # replay one seed
    python fuzz-failures/seed_123456.py               # replay the repro

Reproducer scripts bootstrap ``sys.path`` themselves (repo-root ``src``
layout), so they run from a fresh checkout without a PYTHONPATH export.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fuzz.generator import generate_spec
from repro.fuzz.oracles import ORACLES, OracleFailure, check_program
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.fuzz.spec import ProgramSpec

#: Default directory minimized reproducers are written to.
DEFAULT_OUT_DIR = "fuzz-failures"

_REPRO_TEMPLATE = '''#!/usr/bin/env python3
"""Minimized fuzz reproducer (auto-generated — do not hand-edit the spec).

seed      : {seed}
oracle    : {oracle}
found by  : python -m repro fuzz --seed {seed} --count 1 --max-ops {max_ops}
message   : {message}

Replay from anywhere (exits 1 while the bug reproduces):

    python {filename}

The script bootstraps ``sys.path`` itself, so no PYTHONPATH export is
needed; an installed ``repro`` package takes precedence if present.
"""

import os
import sys

try:
    import repro  # noqa: F401 - installed package wins
except ImportError:
    _here = os.path.dirname(os.path.abspath(__file__))
    for _candidate in (_here, os.path.dirname(_here)):
        _src = os.path.join(_candidate, "src")
        if os.path.isdir(os.path.join(_src, "repro")):
            sys.path.insert(0, _src)
            break

SPEC = {spec_literal}

if __name__ == "__main__":
    from repro.fuzz import replay_spec
    raise SystemExit(replay_spec(SPEC, oracles={oracles!r}))
'''


@dataclass(frozen=True)
class FuzzFailure:
    """One confirmed, minimized divergence."""

    seed: int
    oracle: str
    message: str
    spec: ProgramSpec
    original_op_count: int
    repro_path: Optional[str] = None

    def summary(self) -> str:
        where = f" -> {self.repro_path}" if self.repro_path else ""
        return (f"seed {self.seed}: [{self.oracle}] shrunk "
                f"{self.original_op_count} -> {len(self.spec.ops)} ops{where}")


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    count: int
    max_ops: int
    seconds: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        rate = self.count / self.seconds if self.seconds > 0 else 0.0
        lines = [
            f"fuzz: {self.count} programs in {self.seconds:.1f}s "
            f"({rate:.1f} programs/s), {len(self.failures)} failure(s)"
        ]
        for failure in self.failures:
            lines.append(f"  {failure.summary()}")
            lines.append(f"    {failure.message.splitlines()[0]}")
        return "\n".join(lines)


def fuzz_one(seed: int, max_ops: int = 40,
             oracles: Sequence[str] = ORACLES,
             ) -> Tuple[ProgramSpec, Optional[OracleFailure]]:
    """Generate and cross-check one seed."""
    spec = generate_spec(seed, max_ops=max_ops)
    return spec, check_program(spec, tuple(oracles))


def write_repro(spec: ProgramSpec, failure: OracleFailure, out_dir: str,
                max_ops: int, oracles: Sequence[str] = ORACLES) -> str:
    """Write the self-contained reproducer script; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    filename = f"seed_{spec.seed}.py"
    path = os.path.join(out_dir, filename)
    spec_literal = json.dumps(spec.to_dict(), indent=4, sort_keys=True)
    first_line = failure.message.splitlines()[0]
    from repro.store.io import atomic_write_text
    atomic_write_text(path, _REPRO_TEMPLATE.format(
        seed=spec.seed,
        oracle=failure.oracle,
        max_ops=max_ops,
        message=first_line,
        filename=os.path.join(out_dir, filename),
        spec_literal=spec_literal,
        oracles=tuple(oracles),
    ))
    return path


def replay_spec(spec_data, oracles: Optional[Sequence[str]] = None) -> int:
    """Re-run a (reproducer-embedded) spec through the oracles.

    Accepts a :class:`ProgramSpec`, a dict, or a JSON string.  Returns 0
    when every oracle passes, 1 while the failure reproduces — the exit
    status of a reproducer script.
    """
    if isinstance(spec_data, ProgramSpec):
        spec = spec_data
    elif isinstance(spec_data, str):
        spec = ProgramSpec.from_json(spec_data)
    else:
        spec = ProgramSpec.from_dict(spec_data)
    failure = check_program(spec, tuple(oracles) if oracles else ORACLES)
    if failure is None:
        print(f"seed {spec.seed}: all oracles pass (bug no longer reproduces)")
        return 0
    print(f"seed {spec.seed}: {failure.render()}")
    return 1


def run_fuzz(seed: int = 0, count: int = 100, max_ops: int = 40,
             out_dir: Optional[str] = DEFAULT_OUT_DIR,
             oracles: Sequence[str] = ORACLES,
             shrink_failures: bool = True,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run ``count`` programs starting at ``seed``; shrink and persist
    failures.

    ``out_dir=None`` disables reproducer files (the specs are still on the
    returned report).  ``log`` receives one progress line every 25 programs
    and one line per failure (pass ``print`` for CLI behaviour).
    """
    oracles = tuple(oracles)
    report = FuzzReport(count=count, max_ops=max_ops)
    start = time.perf_counter()
    for offset in range(count):
        current = seed + offset
        spec, failure = fuzz_one(current, max_ops=max_ops, oracles=oracles)
        if failure is None:
            if log and (offset + 1) % 25 == 0:
                log(f"fuzz: {offset + 1}/{count} programs ok "
                    f"({time.perf_counter() - start:.1f}s)")
            continue
        original_ops = len(spec.ops)
        if log:
            log(f"fuzz: seed {current} FAILED {failure.render().splitlines()[0]}")
        if shrink_failures:
            result: ShrinkResult = shrink(spec, failure, oracles)
            spec, failure = result.spec, result.failure
        repro_path = None
        if out_dir is not None:
            repro_path = write_repro(spec, failure, out_dir, max_ops, oracles)
            if log:
                log(f"fuzz: wrote minimized reproducer {repro_path} "
                    f"({original_ops} -> {len(spec.ops)} ops)")
        report.failures.append(FuzzFailure(
            seed=current,
            oracle=failure.oracle,
            message=failure.message,
            spec=spec,
            original_op_count=original_ops,
            repro_path=repro_path,
        ))
    report.seconds = time.perf_counter() - start
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin
    """Entry point behind ``python -m repro fuzz`` (argv already parsed
    there); kept callable for symmetry with the other tool mains."""
    from repro.__main__ import build_parser
    arguments = build_parser().parse_args(["fuzz"] + list(argv or []))
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))


__all__ = [
    "DEFAULT_OUT_DIR",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_one",
    "replay_spec",
    "run_fuzz",
    "write_repro",
]
