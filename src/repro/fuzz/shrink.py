"""Shrinking: bisect a failing program down to a minimal reproducer.

Works on the :class:`ProgramSpec`, never on materialized IR — every candidate
reduction is a *valid* spec by construction, so re-checking it is just
re-running the oracles.  The strategy is classic delta debugging over the
compute-op list (remove exponentially shrinking chunks, rewiring users of a
removed op to its first operand) interleaved with structural reductions:

* replace an output's written value with a plain input read or the
  induction variable,
* drop surplus outputs, then unused trailing inputs,
* collapse the loop nest (rank 2 → 1), shrink extents toward 2 and the
  initiation interval toward 1,
* replace exotic iteration/read offsets and output ports with the defaults,
* simplify constants to ``1``.

A reduction is kept only while the program *still fails the same oracle*;
matching on the oracle name (not the message) lets addresses and diff
excerpts drift during shrinking without letting the bug change identity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.fuzz.oracles import ORACLES, OracleFailure, check_program
from repro.fuzz.spec import OpSpec, ProgramSpec, SpecError, is_const_ref

#: Upper bound on oracle re-runs during one shrink (keeps worst cases sane).
DEFAULT_MAX_CHECKS = 250


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal spec plus bookkeeping."""

    spec: ProgramSpec
    failure: OracleFailure
    checks: int
    removed_ops: int

    @property
    def op_count(self) -> int:
        return len(self.spec.ops)


def remove_ops(spec: ProgramSpec, removed: Set[int]) -> ProgramSpec:
    """``spec`` without the ops at ``removed`` indices.

    References to a removed op are rewired to its first operand (chasing
    chains of removed ops), which is always defined earlier, so the result
    stays a well-formed DAG.
    """

    def resolve(ref: str) -> str:
        while ref.startswith("op") and int(ref[2:]) in removed:
            ref = spec.ops[int(ref[2:])].operands[0]
        return ref

    renumber = {}
    kept: List[OpSpec] = []
    for index, op in enumerate(spec.ops):
        if index in removed:
            continue
        renumber[index] = len(kept)
        kept.append(op)

    def remap(ref: str) -> str:
        ref = resolve(ref)
        if ref.startswith("op"):
            return f"op{renumber[int(ref[2:])]}"
        return ref

    new_ops = tuple(
        replace(op, operands=tuple(remap(ref) for ref in op.operands))
        for op in kept
    )
    new_writes = tuple(
        replace(write, value=remap(write.value)) for write in spec.writes
    )
    return replace(spec, ops=new_ops, writes=new_writes)


def _ddmin_ops(spec: ProgramSpec, still_fails) -> ProgramSpec:
    """Delta-debug the op list: drop exponentially shrinking chunks."""
    chunk = max(1, len(spec.ops) // 2)
    while chunk >= 1 and spec.ops:
        index = 0
        while index < len(spec.ops):
            removed = set(range(index, min(index + chunk, len(spec.ops))))
            candidate = remove_ops(spec, removed)
            if still_fails(candidate):
                spec = candidate
                # Same index now holds the next chunk; don't advance.
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = chunk // 2
    return spec


def _structural_candidates(spec: ProgramSpec) -> Iterable[ProgramSpec]:
    """One-step structural reductions, roughly most-aggressive first."""
    # Collapse the nest to a single loop.
    if spec.rank > 1:
        yield replace(
            spec,
            sizes=spec.sizes[-1:],
            iter_offsets=spec.loop_iter_offsets()[-1:],
            writes=tuple(replace(w, index_perm=(0,)) for w in spec.writes),
        )
    # Fewer outputs.
    if spec.n_outputs > 1:
        yield replace(spec, n_outputs=spec.n_outputs - 1,
                      writes=spec.writes[:-1],
                      output_ports=spec.ports_of_outputs()[:-1])
    # Drop a trailing input no remaining reference uses.
    if spec.n_inputs > 1 and f"in{spec.n_inputs - 1}" not in spec.referenced():
        yield replace(spec, n_inputs=spec.n_inputs - 1,
                      read_offsets=spec.input_read_offsets()[:-1])
    # Cheaper schedules.
    if spec.ii > 1:
        yield replace(spec, ii=1)
    if any(offset != 1 for offset in spec.loop_iter_offsets()):
        yield replace(spec, iter_offsets=(1,) * spec.rank)
    if any(offset != 0 for offset in spec.input_read_offsets()):
        yield replace(spec, read_offsets=(0,) * spec.n_inputs)
    if any(port != "w" for port in spec.ports_of_outputs()):
        yield replace(spec, output_ports=("w",) * spec.n_outputs)
    # Smaller extents.
    if any(size > 2 for size in spec.sizes):
        yield replace(spec,
                      sizes=tuple(max(2, size // 2) for size in spec.sizes))
    # Retarget writes at earlier op results: keeping a *shorter* use-chain
    # alive lets the next ddmin round delete the ops past the new target
    # (a dead chain would be DCE'd identically by both pipelines and stop
    # reproducing, so simply truncating the op list cannot get there).
    for index, write in enumerate(spec.writes):
        for target in range(len(spec.ops)):
            if write.value != f"op{target}":
                writes = list(spec.writes)
                writes[index] = replace(write, value=f"op{target}")
                yield replace(spec, writes=tuple(writes))
    # Simpler written values.
    for index, write in enumerate(spec.writes):
        for simpler in ("in0", "iv"):
            if write.value != simpler:
                writes = list(spec.writes)
                writes[index] = replace(write, value=simpler)
                yield replace(spec, writes=tuple(writes))
    # Simpler constants.
    simplified = _simplify_constants(spec)
    if simplified is not None:
        yield simplified


def _simplify_constants(spec: ProgramSpec) -> Optional[ProgramSpec]:
    def simplify(ref: str) -> str:
        return "c:1" if is_const_ref(ref) and ref != "c:1" else ref

    ops = tuple(replace(op, operands=tuple(simplify(r) for r in op.operands))
                for op in spec.ops)
    writes = tuple(replace(w, value=simplify(w.value)) for w in spec.writes)
    if ops == spec.ops and writes == spec.writes:
        return None
    return replace(spec, ops=ops, writes=writes)


def shrink(spec: ProgramSpec, failure: OracleFailure,
           oracles: Tuple[str, ...] = ORACLES,
           max_checks: int = DEFAULT_MAX_CHECKS,
           check: Optional[Callable[[ProgramSpec], Optional[OracleFailure]]] = None,
           ) -> ShrinkResult:
    """Minimize ``spec`` while it keeps failing ``failure.oracle``.

    ``check`` defaults to :func:`repro.fuzz.oracles.check_program`; tests
    inject predicates here.  The original spec is returned unchanged if no
    reduction reproduces the failure (or the check budget runs out).
    """
    checker = check or (lambda candidate: check_program(candidate, oracles))
    budget = {"left": max_checks}
    last_failure = {"failure": failure}
    original_ops = len(spec.ops)

    def still_fails(candidate: ProgramSpec) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        try:
            result = checker(candidate)
        except SpecError:
            return False
        if result is not None and result.oracle == failure.oracle:
            last_failure["failure"] = result
            return True
        return False

    changed = True
    while changed and budget["left"] > 0:
        changed = False
        reduced = _ddmin_ops(spec, still_fails)
        if len(reduced.ops) < len(spec.ops):
            spec = reduced
            changed = True
        for candidate in _structural_candidates(spec):
            if budget["left"] <= 0:
                break
            if still_fails(candidate):
                spec = candidate
                changed = True
                break  # restart: candidates depend on the current spec

    return ShrinkResult(
        spec=spec,
        failure=last_failure["failure"],
        checks=max_checks - budget["left"],
        removed_ops=original_ops - len(spec.ops),
    )


__all__ = ["DEFAULT_MAX_CHECKS", "ShrinkResult", "remove_ops", "shrink"]
