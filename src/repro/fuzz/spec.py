"""Declarative specs for randomly generated HIR programs.

A :class:`ProgramSpec` is a small, JSON-round-trippable description of one
fuzz program: a perfectly nested ``hir.for`` loop nest with randomized
extents, initiation interval and iteration offsets, a set of read-port input
memrefs and write-port output memrefs, and a DAG of compute ops
(:class:`OpSpec`) evaluated in the innermost loop body.

The spec — not the materialized module — is the unit the fuzzer works on:
the generator emits specs, the shrinker edits specs, reproducer scripts
embed specs, and :func:`materialize` deterministically turns a spec into a
schedule-valid HIR module.  Determinism is the load-bearing property: the
same spec always prints to the same IR text, so cross-pipeline byte
comparisons and seed replay are meaningful.

Value references inside a spec are strings:

``"iv"``
    the innermost loop's induction variable (valid at offset 0),
``"in<k>"``
    the value read from input interface ``A<k>`` (valid one cycle after the
    read issues),
``"op<k>"``
    the result of ``ops[k]``,
``"c:<v>"``
    the i32 constant ``v`` (timeless — usable at any cycle).

The materializer keeps every value's validity offset (relative to the
innermost iteration's time variable) and inserts ``hir.delay`` ops so that
all operands of a combinational op — and the address/data operands of every
memory access — arrive in exactly the same cycle.  This is what makes every
generated program pass the schedule verifier by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.types import I32, IntegerType
from repro.ir.values import Value
from repro.hir.build import DesignBuilder, FuncBuilder
from repro.hir.ops import CMP_PREDICATES
from repro.hir.types import MemrefType

#: Spec schema version, embedded in reproducer scripts.
SPEC_VERSION = 1

#: Two-operand combinational op kinds (operands ``(a, b)``).
BINARY_KINDS = ("add", "sub", "mult", "and", "or", "xor")
#: Shift kinds (operands ``(a,)``, params ``(amount,)``).
SHIFT_KINDS = ("shl", "shr")
#: All op kinds a spec may contain.
OP_KINDS = BINARY_KINDS + SHIFT_KINDS + ("cmpsel", "castpair", "delay")


class SpecError(ValueError):
    """A malformed or unmaterializable program spec."""


@dataclass(frozen=True)
class OpSpec:
    """One compute op in the innermost loop body.

    ``kind`` is one of :data:`OP_KINDS`; ``operands`` are value references;
    ``params`` carry compile-time integers (shift amount, cast width, delay
    cycles); ``predicate`` is only used by ``cmpsel``.
    """

    kind: str
    operands: Tuple[str, ...]
    params: Tuple[int, ...] = ()
    predicate: str = ""

    def to_dict(self) -> Dict:
        data: Dict = {"kind": self.kind, "operands": list(self.operands)}
        if self.params:
            data["params"] = list(self.params)
        if self.predicate:
            data["predicate"] = self.predicate
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "OpSpec":
        return cls(
            kind=data["kind"],
            operands=tuple(data["operands"]),
            params=tuple(data.get("params", ())),
            predicate=data.get("predicate", ""),
        )


@dataclass(frozen=True)
class WriteSpec:
    """One ``hir.mem_write`` to output interface ``O<output>``.

    ``index_perm`` permutes the loop nest's induction variables into the
    output's address (``(1, 0)`` writes the transpose); the output memref's
    shape is permuted to match.
    """

    output: int
    value: str
    index_perm: Tuple[int, ...]

    def to_dict(self) -> Dict:
        return {"output": self.output, "value": self.value,
                "index_perm": list(self.index_perm)}

    @classmethod
    def from_dict(cls, data: Dict) -> "WriteSpec":
        return cls(output=data["output"], value=data["value"],
                   index_perm=tuple(data["index_perm"]))


@dataclass(frozen=True)
class ProgramSpec:
    """A complete fuzz program: loop nest + interfaces + compute DAG."""

    seed: int
    #: Loop extents, outermost first; ``len(sizes)`` is the nest depth and
    #: the rank of every interface memref.
    sizes: Tuple[int, ...]
    #: Initiation interval of the innermost loop (its ``hir.yield`` offset).
    ii: int
    n_inputs: int
    n_outputs: int
    ops: Tuple[OpSpec, ...]
    writes: Tuple[WriteSpec, ...]
    #: Per-loop first-iteration offsets (outermost first).
    iter_offsets: Tuple[int, ...] = ()
    #: Cycle (relative to the iteration time) each input read issues at.
    read_offsets: Tuple[int, ...] = ()
    #: Port kind of each output interface ("w" or "rw").
    output_ports: Tuple[str, ...] = ()
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if not self.sizes or any(s < 1 for s in self.sizes):
            raise SpecError(f"bad loop extents {self.sizes}")
        if self.ii < 1:
            raise SpecError(f"initiation interval must be >= 1, got {self.ii}")
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise SpecError("need at least one input and one output")
        if len(self.writes) != self.n_outputs or (
                {write.output for write in self.writes}
                != set(range(self.n_outputs))):
            raise SpecError("need exactly one write per output")
        if self.iter_offsets and len(self.iter_offsets) != len(self.sizes):
            raise SpecError("iter_offsets must match the loop nest depth")
        if self.read_offsets and len(self.read_offsets) != self.n_inputs:
            raise SpecError("read_offsets must have one entry per input")
        if self.output_ports and len(self.output_ports) != self.n_outputs:
            raise SpecError("output_ports must have one entry per output")
        for op in self.ops:
            if op.kind not in OP_KINDS:
                raise SpecError(f"unknown op kind {op.kind!r}")
            if op.kind == "cmpsel" and op.predicate not in CMP_PREDICATES:
                raise SpecError(f"unknown predicate {op.predicate!r}")
        for write in self.writes:
            if tuple(sorted(write.index_perm)) != tuple(range(len(self.sizes))):
                raise SpecError(
                    f"index_perm {write.index_perm} is not a permutation of "
                    f"the {len(self.sizes)} loop dimensions"
                )

    # -- defaults for optional fields ---------------------------------------
    def loop_iter_offsets(self) -> Tuple[int, ...]:
        return self.iter_offsets or (1,) * len(self.sizes)

    def input_read_offsets(self) -> Tuple[int, ...]:
        return self.read_offsets or (0,) * self.n_inputs

    def ports_of_outputs(self) -> Tuple[str, ...]:
        return self.output_ports or ("w",) * self.n_outputs

    @property
    def rank(self) -> int:
        return len(self.sizes)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "seed": self.seed,
            "sizes": list(self.sizes),
            "ii": self.ii,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "iter_offsets": list(self.loop_iter_offsets()),
            "read_offsets": list(self.input_read_offsets()),
            "output_ports": list(self.ports_of_outputs()),
            "ops": [op.to_dict() for op in self.ops],
            "writes": [write.to_dict() for write in self.writes],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ProgramSpec":
        return cls(
            seed=data["seed"],
            sizes=tuple(data["sizes"]),
            ii=data["ii"],
            n_inputs=data["n_inputs"],
            n_outputs=data["n_outputs"],
            ops=tuple(OpSpec.from_dict(op) for op in data["ops"]),
            writes=tuple(WriteSpec.from_dict(w) for w in data["writes"]),
            iter_offsets=tuple(data.get("iter_offsets", ())),
            read_offsets=tuple(data.get("read_offsets", ())),
            output_ports=tuple(data.get("output_ports", ())),
            version=data.get("version", SPEC_VERSION),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgramSpec":
        return cls.from_dict(json.loads(text))

    # -- introspection -------------------------------------------------------
    def referenced(self) -> set:
        """Every value reference the writes depend on, transitively."""
        needed = {write.value for write in self.writes}
        for index in range(len(self.ops) - 1, -1, -1):
            if f"op{index}" in needed:
                needed.update(self.ops[index].operands)
        return needed


def is_const_ref(ref: str) -> bool:
    return ref.startswith("c:")


def const_ref_value(ref: str) -> int:
    return int(ref[2:])


def result_offset(kind: str, operand_offsets: Sequence[Optional[int]],
                  params: Sequence[int]) -> Optional[int]:
    """Validity offset of an op's result given its operands' offsets.

    ``None`` means timeless (every operand was a constant); otherwise the
    result is valid exactly at the returned offset — operands are aligned
    there with ``hir.delay`` at materialization time.
    """
    timed = [offset for offset in operand_offsets if offset is not None]
    if kind == "delay":
        if not timed:
            raise SpecError("hir.delay needs a timed operand")
        return timed[0] + params[0]
    if not timed:
        return None
    return max(timed)


@dataclass
class MaterializedProgram:
    """A spec turned into IR plus everything the oracles need to drive it."""

    spec: ProgramSpec
    design: DesignBuilder
    top: str
    interfaces: Dict[str, MemrefType]
    input_names: List[str]
    output_names: List[str]

    @property
    def module(self):
        return self.design.module


class _BodyValues:
    """Value environment of the innermost loop body, with delay-alignment."""

    def __init__(self, func: FuncBuilder, inner_time: Value) -> None:
        self._func = func
        self._inner_time = inner_time
        self._values: Dict[str, Value] = {}
        self._offsets: Dict[str, Optional[int]] = {}
        self._aligned: Dict[Tuple[str, int], Value] = {}

    def define(self, ref: str, value: Value, offset: Optional[int]) -> None:
        self._values[ref] = value
        self._offsets[ref] = offset

    def offset_of(self, ref: str) -> Optional[int]:
        if is_const_ref(ref):
            return None
        if ref not in self._offsets:
            raise SpecError(f"undefined value reference {ref!r}")
        return self._offsets[ref]

    def raw(self, ref: str) -> Value:
        if is_const_ref(ref):
            return self._func.constant(const_ref_value(ref), I32)
        if ref not in self._values:
            raise SpecError(f"undefined value reference {ref!r}")
        return self._values[ref]

    def at(self, ref: str, target: Optional[int]) -> Value:
        """``ref``'s value, delayed so it is valid exactly at ``target``."""
        value = self.raw(ref)
        offset = self.offset_of(ref)
        if offset is None or target is None or offset == target:
            return value
        if offset > target:
            raise SpecError(
                f"cannot rewind {ref!r} from offset {offset} to {target}"
            )
        key = (ref, target)
        if key not in self._aligned:
            self._aligned[key] = self._func.delay(
                value, target - offset, time=self._inner_time
            )
        return self._aligned[key]


def _output_type(spec: ProgramSpec, write: WriteSpec, port: str) -> MemrefType:
    shape = tuple(spec.sizes[dim] for dim in write.index_perm)
    return MemrefType(shape, I32, port)


def materialize(spec: ProgramSpec, name: Optional[str] = None) -> MaterializedProgram:
    """Deterministically build the HIR module described by ``spec``."""
    design = DesignBuilder(name or f"fuzz_{spec.seed}")
    input_names = [f"A{k}" for k in range(spec.n_inputs)]
    output_names = [f"O{k}" for k in range(spec.n_outputs)]
    ports = spec.ports_of_outputs()
    interfaces: Dict[str, MemrefType] = {
        name_: MemrefType(spec.sizes, I32, "r") for name_ in input_names
    }
    for write in spec.writes:
        interfaces[output_names[write.output]] = _output_type(
            spec, write, ports[write.output]
        )
    args = [(name_, interfaces[name_])
            for name_ in input_names + output_names]
    iter_offsets = spec.loop_iter_offsets()
    read_offsets = spec.input_read_offsets()

    with design.func("fuzz_top", args) as func:
        _build_nest(spec, func, iter_offsets, read_offsets,
                    input_names, output_names, outer_ivs=[], depth=0,
                    time=func.time)
        func.return_()
    return MaterializedProgram(
        spec=spec,
        design=design,
        top="fuzz_top",
        interfaces=interfaces,
        input_names=input_names,
        output_names=output_names,
    )


def _build_nest(spec: ProgramSpec, func: FuncBuilder,
                iter_offsets: Tuple[int, ...], read_offsets: Tuple[int, ...],
                input_names: List[str], output_names: List[str],
                outer_ivs: List[Value], depth: int, time: Value) -> Value:
    size = spec.sizes[depth]
    innermost = depth == spec.rank - 1
    with func.for_loop(0, size, 1, time=time,
                       iter_offset=iter_offsets[depth],
                       iv_name=f"i{depth}") as loop:
        if innermost:
            _build_body(spec, func, read_offsets, input_names, output_names,
                        outer_ivs + [loop.iv], loop.time)
            func.yield_(loop.time, offset=spec.ii)
        else:
            inner_done = _build_nest(spec, func, iter_offsets, read_offsets,
                                     input_names, output_names,
                                     outer_ivs + [loop.iv], depth + 1,
                                     loop.time)
            func.yield_(inner_done, offset=1)
    return loop.done


def _build_body(spec: ProgramSpec, func: FuncBuilder,
                read_offsets: Tuple[int, ...],
                input_names: List[str], output_names: List[str],
                ivs: List[Value], inner_time: Value) -> None:
    env = _BodyValues(func, inner_time)
    env.define("iv", ivs[-1], 0)

    def address(perm: Sequence[int], at_offset: int) -> List[Value]:
        indices: List[Value] = []
        for dim in perm:
            if dim == spec.rank - 1:
                # The innermost induction variable is a pipeline wire: delay
                # it so the address arrives exactly when the access issues.
                indices.append(env.at("iv", at_offset))
            else:
                # Enclosing-loop induction variables are stable for the whole
                # inner loop execution and may be consumed at any cycle.
                indices.append(ivs[dim])
        return indices

    for index, name in enumerate(input_names):
        offset = read_offsets[index]
        value = func.mem_read(func.arg(name), address(range(spec.rank), offset),
                              time=inner_time, offset=offset)
        env.define(f"in{index}", value, offset + 1)

    for index, op in enumerate(spec.ops):
        _build_op(func, env, inner_time, f"op{index}", op)

    for write in spec.writes:
        offset = env.offset_of(write.value)
        # Timeless (constant) data still needs a concrete write cycle.
        at_offset = 1 if offset is None else offset
        func.mem_write(env.at(write.value, at_offset),
                       func.arg(output_names[write.output]),
                       address(write.index_perm, at_offset),
                       time=inner_time, offset=at_offset)


def _build_op(func: FuncBuilder, env: _BodyValues, inner_time: Value,
              ref: str, op: OpSpec) -> None:
    offsets = [env.offset_of(operand) for operand in op.operands]
    target = result_offset(op.kind, offsets, op.params)
    if op.kind in BINARY_KINDS:
        build = {"add": func.add, "sub": func.sub, "mult": func.mult,
                 "and": func.and_, "or": func.or_, "xor": func.xor}[op.kind]
        lhs, rhs = (env.at(operand, target) for operand in op.operands)
        value = build(lhs, rhs)
    elif op.kind in SHIFT_KINDS:
        build = func.shl if op.kind == "shl" else func.shr
        value = build(env.at(op.operands[0], target), op.params[0])
    elif op.kind == "cmpsel":
        a, b, true_value, false_value = (
            env.at(operand, target) for operand in op.operands
        )
        value = func.select(func.cmp(op.predicate, a, b),
                            true_value, false_value)
    elif op.kind == "castpair":
        width = op.params[0]
        narrowed = func.trunc(env.at(op.operands[0], target),
                              IntegerType(width))
        value = func.ext(narrowed, I32, signed=True)
    elif op.kind == "delay":
        value = func.delay(env.raw(op.operands[0]), op.params[0],
                           time=inner_time)
    else:  # pragma: no cover - guarded by ProgramSpec.__post_init__
        raise SpecError(f"unknown op kind {op.kind!r}")
    env.define(ref, value, target)


__all__ = [
    "BINARY_KINDS",
    "MaterializedProgram",
    "OpSpec",
    "OP_KINDS",
    "ProgramSpec",
    "SHIFT_KINDS",
    "SPEC_VERSION",
    "SpecError",
    "WriteSpec",
    "const_ref_value",
    "is_const_ref",
    "materialize",
    "result_offset",
]
