"""Multi-kernel dataflow composition.

``repro.graph`` links kernels into pipelines: a :class:`DesignGraph` of
kernel nodes connected by on-chip stream-buffer edges, lowered to one
multi-module Verilog design with a statically scheduled top-level wrapper.
Composed designs are plain :class:`~repro.kernels.base.KernelArtifacts`, so
they flow through ``Flow``, the CLI, batched sweeps and the evaluation
harness unchanged.  See :mod:`repro.graph.graph` for the composition rules
and :mod:`repro.graph.scenarios` for the registered example pipelines.
"""

from repro.graph.graph import (
    DesignGraph,
    EDGE_MARGIN,
    GraphArtifacts,
    GraphEdge,
    GraphError,
    GraphNode,
    NodeSchedule,
)
from repro.graph.scenarios import (
    SCENARIO_BUILDERS,
    UnknownScenarioError,
    build_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.graph.timing import FunctionTiming, TimingError, analyze_function

__all__ = [
    "DesignGraph",
    "EDGE_MARGIN",
    "FunctionTiming",
    "GraphArtifacts",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "NodeSchedule",
    "SCENARIO_BUILDERS",
    "TimingError",
    "UnknownScenarioError",
    "analyze_function",
    "build_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
