"""Multi-kernel dataflow composition: a graph of kernels, one design.

A :class:`DesignGraph` links kernel instances (nodes) through on-chip stream
buffers (edges) and lowers the whole thing to a single multi-module Verilog
design:

* every node's ``hir.func`` is cloned into one combined module under a
  unique symbol (so the same kernel can appear twice);
* every edge becomes an ``hir.alloc``'ed block-RAM buffer in a generated
  top-level wrapper function — the producer is handed the buffer's write
  port, the consumer its read port, exactly the flow-through buffering the
  ``fifo`` kernel demonstrates at the interface level;
* every node becomes one ``hir.call`` in the wrapper, scheduled by a static
  longest-path pass over :mod:`repro.graph.timing`: a node starts only after
  every producer feeding it has gone quiet (done *and* trailing writes
  committed), so the composition is correct by construction — no handshake
  hardware, the deterministic task-level parallelism of Section 5.3.
  Independent branches overlap.

Unbound node inputs surface as interfaces of the wrapper (graph inputs);
unbound node outputs surface as graph outputs.  :meth:`DesignGraph.build`
returns a :class:`GraphArtifacts` — a :class:`~repro.kernels.base.
KernelArtifacts` — so a composed design drops into everything a single
kernel works with: ``Flow``, the CLI, batched sweeps and the evaluation
harness.  Edges are *reshape-compatible*: producer and consumer shapes may
differ as long as the element count matches, because fully packed buffers
address row-major linearly on both sides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.ir.errors import IRError
from repro.ir.module import ModuleOp
from repro.ir.printer import module_fingerprint
from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.ops import FuncOp
from repro.hir.types import MemrefType
from repro.kernels.base import KernelArtifacts
from repro.graph.timing import FunctionTiming, analyze_function

#: Idle cycles inserted between a producer going quiet and a consumer
#: starting (covers the edge buffer's write-to-read turnaround).
EDGE_MARGIN = 1


class GraphError(IRError):
    """An ill-formed dataflow graph (bad port, fan-out, cycle, shape...)."""


@dataclass
class GraphNode:
    """One kernel instance inside a :class:`DesignGraph`."""

    name: str
    artifacts: KernelArtifacts
    #: Scalar argument bindings materialised as constants at the call site.
    scalars: Dict[str, int] = field(default_factory=dict)

    @property
    def func_name(self) -> str:
        """Symbol the node's function is cloned under in the composed module."""
        return self.name

    def top_func(self) -> FuncOp:
        func = self.artifacts.module.lookup(self.artifacts.top)
        if not isinstance(func, FuncOp):
            raise GraphError(
                f"node '{self.name}': top function @{self.artifacts.top} "
                "not found in its module"
            )
        return func

    def interface(self, port: str) -> MemrefType:
        memref_type = self.artifacts.interfaces.get(port)
        if memref_type is None:
            raise GraphError(
                f"node '{self.name}' has no interface {port!r}; it exposes "
                f"{sorted(self.artifacts.interfaces)}"
            )
        return memref_type


@dataclass(frozen=True)
class GraphEdge:
    """A stream buffer from one node's output to another node's input."""

    producer: str
    producer_port: str
    consumer: str
    consumer_port: str

    @property
    def buffer_name(self) -> str:
        return f"{self.producer}_{self.producer_port}__{self.consumer}_{self.consumer_port}"


@dataclass(frozen=True)
class NodeSchedule:
    """When one node runs inside the composed design."""

    name: str
    start: int
    timing: FunctionTiming

    @property
    def quiet(self) -> int:
        return self.start + self.timing.quiet


class GraphArtifacts(KernelArtifacts):
    """KernelArtifacts of a composed design, plus its graph provenance."""

    def __init__(self, graph: "DesignGraph",
                 schedule: Dict[str, NodeSchedule], **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.graph = graph
        self.schedule = schedule

    def describe_schedule(self) -> str:
        """One line per node: start cycle, static done/quiet cycles."""
        lines = [f"{'node':<24} {'start':>7} {'done':>7} {'quiet':>7}"]
        for entry in sorted(self.schedule.values(), key=lambda s: s.start):
            lines.append(f"{entry.name:<24} {entry.start:>7} "
                         f"{entry.start + entry.timing.done:>7} "
                         f"{entry.quiet:>7}")
        return "\n".join(lines)


class DesignGraph:
    """A DAG of kernel nodes connected by stream-buffer edges."""

    def __init__(self, name: str = "design_graph") -> None:
        self.name = name
        self.nodes: Dict[str, GraphNode] = {}
        self.edges: List[GraphEdge] = []
        #: Optional renames for exposed interfaces: (node, port) -> name.
        self._exposed: Dict[Tuple[str, str], str] = {}

    # -- construction --------------------------------------------------------
    def add_kernel(self, kernel: str, name: Optional[str] = None, *,
                   scalars: Optional[Mapping[str, int]] = None,
                   **parameters: Any) -> GraphNode:
        """Instantiate a registered kernel as a node (``name`` defaults to
        the kernel name, uniquified)."""
        from repro.kernels import build_kernel
        return self.add_node(build_kernel(kernel, **parameters), name=name,
                             scalars=scalars)

    def add_node(self, artifacts: KernelArtifacts, name: Optional[str] = None,
                 *, scalars: Optional[Mapping[str, int]] = None) -> GraphNode:
        """Add a node from prebuilt :class:`KernelArtifacts`."""
        base = name or artifacts.name or artifacts.top
        candidate = base
        suffix = 1
        while candidate in self.nodes:
            suffix += 1
            candidate = f"{base}{suffix}"
        bound = dict(artifacts.scalar_args)
        bound.update(scalars or {})
        node = GraphNode(name=candidate, artifacts=artifacts, scalars=bound)
        func = node.top_func()  # raises early on a top-less module
        for arg, arg_name in zip(func.arguments, func.arg_names):
            if not isinstance(arg.type, MemrefType) and arg_name not in bound:
                raise GraphError(
                    f"node '{candidate}': scalar argument '{arg_name}' has no "
                    "binding; pass scalars={...} (composed calls materialise "
                    "scalars as constants)"
                )
        self.nodes[candidate] = node
        return node

    def connect(self, producer: Any, producer_port: str,
                consumer: Any, consumer_port: str) -> GraphEdge:
        """Stream ``producer.producer_port`` into ``consumer.consumer_port``."""
        producer_node = self._node(producer)
        consumer_node = self._node(consumer)
        out_type = producer_node.interface(producer_port)
        in_type = consumer_node.interface(consumer_port)
        if not out_type.can_write:
            raise GraphError(
                f"'{producer_node.name}.{producer_port}' is not an output "
                f"(port kind {out_type.port!r})"
            )
        if not in_type.can_read:
            raise GraphError(
                f"'{consumer_node.name}.{consumer_port}' is not an input "
                f"(port kind {in_type.port!r})"
            )
        self._check_compatible(producer_node, producer_port, out_type,
                               consumer_node, consumer_port, in_type)
        edge = GraphEdge(producer_node.name, producer_port,
                         consumer_node.name, consumer_port)
        for existing in self.edges:
            if (existing.producer, existing.producer_port) == (
                    edge.producer, edge.producer_port):
                raise GraphError(
                    f"output '{edge.producer}.{edge.producer_port}' already "
                    "feeds an edge; each memref port drives exactly one "
                    "consumer (insert a copy node such as 'fifo' to fan out)"
                )
            if (existing.consumer, existing.consumer_port) == (
                    edge.consumer, edge.consumer_port):
                raise GraphError(
                    f"input '{edge.consumer}.{edge.consumer_port}' is already "
                    "fed by an edge"
                )
        self.edges.append(edge)
        return edge

    def expose(self, node: Any, port: str, as_name: str) -> None:
        """Rename an unbound node interface in the composed design."""
        graph_node = self._node(node)
        graph_node.interface(port)
        if as_name in self._exposed.values():
            raise GraphError(f"exposed name {as_name!r} is already taken")
        self._exposed[(graph_node.name, port)] = as_name

    # -- queries -------------------------------------------------------------
    def _node(self, ref: Any) -> GraphNode:
        name = ref.name if isinstance(ref, GraphNode) else str(ref)
        node = self.nodes.get(name)
        if node is None:
            raise GraphError(
                f"unknown node {name!r}; graph has {sorted(self.nodes)}"
            )
        return node

    @staticmethod
    def _check_compatible(producer: GraphNode, producer_port: str,
                          out_type: MemrefType,
                          consumer: GraphNode, consumer_port: str,
                          in_type: MemrefType) -> None:
        if out_type.element_type != in_type.element_type:
            raise GraphError(
                f"edge '{producer.name}.{producer_port}' -> "
                f"'{consumer.name}.{consumer_port}': element types differ "
                f"({out_type.element_type} vs {in_type.element_type})"
            )
        if out_type.num_elements != in_type.num_elements:
            raise GraphError(
                f"edge '{producer.name}.{producer_port}' -> "
                f"'{consumer.name}.{consumer_port}': shapes {out_type.shape} "
                f"and {in_type.shape} hold different element counts "
                f"({out_type.num_elements} vs {in_type.num_elements}); edges "
                "are reshape-compatible, not resize-compatible"
            )
        for memref_type, owner in ((out_type, producer), (in_type, consumer)):
            if memref_type.num_banks != 1:
                raise GraphError(
                    f"interface of node '{owner.name}' on this edge is banked "
                    f"({memref_type.num_banks} banks); stream buffers are "
                    "single-bank RAMs"
                )

    def _incoming(self, node: str) -> List[GraphEdge]:
        return [edge for edge in self.edges if edge.consumer == node]

    def _outgoing(self, node: str) -> List[GraphEdge]:
        return [edge for edge in self.edges if edge.producer == node]

    def topological_order(self) -> List[GraphNode]:
        """Nodes sorted so producers precede consumers (cycles are errors)."""
        order: List[GraphNode] = []
        pending = {name: len(self._incoming(name)) for name in self.nodes}
        ready = sorted(name for name, count in pending.items() if count == 0)
        while ready:
            name = ready.pop(0)
            order.append(self.nodes[name])
            for edge in self._outgoing(name):
                pending[edge.consumer] -= 1
                if pending[edge.consumer] == 0:
                    ready.append(edge.consumer)
            ready.sort()
        if len(order) != len(self.nodes):
            stuck = sorted(set(self.nodes) - {node.name for node in order})
            raise GraphError(
                f"graph '{self.name}' has a cycle through {stuck}; dataflow "
                "compositions must be acyclic"
            )
        return order

    def exposed_inputs(self) -> List[Tuple[GraphNode, str, MemrefType]]:
        """(node, port, type) of every node input not fed by an edge."""
        bound = {(edge.consumer, edge.consumer_port) for edge in self.edges}
        result = []
        for node in self.topological_order():
            for port, memref_type in node.artifacts.interfaces.items():
                if memref_type.can_read and not memref_type.can_write and \
                        (node.name, port) not in bound:
                    result.append((node, port, memref_type))
        return result

    def exposed_outputs(self) -> List[Tuple[GraphNode, str, MemrefType]]:
        """(node, port, type) of every node output not consumed by an edge."""
        bound = {(edge.producer, edge.producer_port) for edge in self.edges}
        result = []
        for node in self.topological_order():
            for port, memref_type in node.artifacts.interfaces.items():
                if memref_type.can_write and \
                        (node.name, port) not in bound:
                    result.append((node, port, memref_type))
        return result

    def interface_name(self, node: GraphNode, port: str) -> str:
        """Wrapper-level name of an exposed node interface."""
        custom = self._exposed.get((node.name, port))
        if custom is not None:
            return custom
        if len(self.nodes) == 1:
            return port
        return f"{node.name}_{port}"

    # -- fingerprinting ------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash over per-node module fingerprints + graph structure.

        Editing any node's HIR, rebinding a scalar, rewiring an edge or
        renaming an exposed interface changes the fingerprint — this is what
        the Flow ``compose`` stage keys its cache on.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        for name in sorted(self.nodes):
            node = self.nodes[name]
            digest.update(f"\nnode {name} top={node.artifacts.top} "
                          f"fp={module_fingerprint(node.artifacts.module)} "
                          f"scalars={sorted(node.scalars.items())}".encode())
        for edge in sorted(self.edges, key=lambda e: e.buffer_name):
            digest.update(f"\nedge {edge.buffer_name}".encode())
        for key in sorted(self._exposed):
            digest.update(f"\nexpose {key} as {self._exposed[key]}".encode())
        return digest.hexdigest()[:16]

    # -- lowering ------------------------------------------------------------
    def schedule(self) -> Dict[str, NodeSchedule]:
        """Static longest-path start cycles over node quiet times."""
        order = self.topological_order()
        if not order:
            raise GraphError(f"graph '{self.name}' has no nodes")
        schedule: Dict[str, NodeSchedule] = {}
        for node in order:
            module = node.artifacts.module
            timing = analyze_function(module, node.top_func())
            start = 0
            for edge in self._incoming(node.name):
                producer = schedule[edge.producer]
                start = max(start, producer.quiet + EDGE_MARGIN)
            schedule[node.name] = NodeSchedule(name=node.name, start=start,
                                               timing=timing)
        return schedule

    def build_module(self) -> Tuple[ModuleOp, str, Dict[str, MemrefType],
                                    Dict[str, NodeSchedule]]:
        """Lower the graph to one module: cloned node functions + wrapper.

        Returns ``(module, top_name, interfaces, schedule)``.
        """
        order = self.topological_order()
        schedule = self.schedule()
        design = DesignBuilder(self.name)
        for node in order:
            clone = node.top_func().clone()
            clone.set_attr("sym_name", node.func_name)
            design.module.add(clone)

        inputs = self.exposed_inputs()
        outputs = self.exposed_outputs()
        interfaces: Dict[str, MemrefType] = {}
        args: List[Tuple[str, MemrefType]] = []
        for node, port, memref_type in inputs + outputs:
            name = self.interface_name(node, port)
            if name in interfaces:
                raise GraphError(
                    f"interface name collision on {name!r}; use expose() to "
                    "rename one of the clashing ports"
                )
            interfaces[name] = memref_type
            args.append((name, memref_type))
        if not outputs:
            raise GraphError(
                f"graph '{self.name}' has no exposed outputs; a composed "
                "design must write at least one interface"
            )

        top_name = f"{self.name}_top"
        exposed_value: Dict[Tuple[str, str], Any] = {}
        with design.func(top_name, args) as wrapper:
            for node, port, _ in inputs + outputs:
                exposed_value[(node.name, port)] = wrapper.arg(
                    self.interface_name(node, port))
            edge_ports: Dict[Tuple[str, str], Any] = {}
            for edge in self.edges:
                out_type = self.nodes[edge.producer].interface(
                    edge.producer_port)
                # The producer-facing port mirrors the producer's declared
                # kind ("w" or "rw"), so a read-back output delegates cleanly.
                write_port, read_port = wrapper.alloc(
                    out_type.shape, out_type.element_type,
                    ports=(out_type.port, "r"),
                    mem_kind="bram", name=edge.buffer_name,
                )
                edge_ports[(edge.producer, edge.producer_port)] = write_port
                edge_ports[(edge.consumer, edge.consumer_port)] = read_port
            for node in order:
                func = node.top_func()
                call_args = []
                for arg, arg_name in zip(func.arguments, func.arg_names):
                    if isinstance(arg.type, MemrefType):
                        value = edge_ports.get((node.name, arg_name))
                        if value is None:
                            value = exposed_value.get((node.name, arg_name))
                        if value is None:
                            raise GraphError(
                                f"node '{node.name}': interface '{arg_name}' "
                                "is neither connected nor exposed"
                            )
                        call_args.append(value)
                    else:
                        call_args.append(wrapper.constant(
                            node.scalars[arg_name], I32))
                wrapper.call(node.func_name, call_args, time=wrapper.time,
                             offset=schedule[node.name].start)
            wrapper.return_()
        return design.module, top_name, interfaces, schedule

    def build(self) -> GraphArtifacts:
        """Lower the graph and bundle it as :class:`GraphArtifacts`.

        The stimulus generator draws each exposed input from the owning
        kernel's own ``make_inputs`` (preserving per-kernel input domains,
        e.g. histogram pixel ranges); the reference model chains the node
        references in topological order through the edge tensors.
        """
        module, top_name, interfaces, schedule = self.build_module()
        inputs = self.exposed_inputs()
        outputs = self.exposed_outputs()
        make_inputs = self._make_inputs(inputs, outputs)
        reference = self._reference(inputs, outputs)
        output_warmup = {
            self.interface_name(node, port): node.artifacts.output_warmup[port]
            for node, port, _ in outputs
            if port in node.artifacts.output_warmup
        }
        external_models: Dict[str, Callable] = {}
        for node in self.topological_order():
            external_models.update(node.artifacts.external_models)
        return GraphArtifacts(
            graph=self,
            schedule=schedule,
            name=self.name,
            module=module,
            top=top_name,
            interfaces=interfaces,
            make_inputs=make_inputs,
            reference=reference,
            external_models=external_models,
            output_warmup=output_warmup,
            notes=(f"dataflow composition of {len(self.nodes)} kernel(s) "
                   f"over {len(self.edges)} stream buffer edge(s)"),
        )

    # -- numpy-side composition ----------------------------------------------
    def _make_inputs(self, inputs, outputs):
        graph = self

        def make(seed: int) -> Dict[str, np.ndarray]:
            tensors: Dict[str, np.ndarray] = {}
            per_node: Dict[str, Dict[str, np.ndarray]] = {}
            for index, (node, port, memref_type) in enumerate(inputs):
                name = graph.interface_name(node, port)
                if node.artifacts.make_inputs is not None:
                    if node.name not in per_node:
                        per_node[node.name] = dict(
                            node.artifacts.make_inputs(seed))
                    tensors[name] = per_node[node.name][port]
                else:
                    rng = np.random.default_rng([seed, index])
                    tensors[name] = rng.integers(-100, 100,
                                                 size=memref_type.shape)
            for node, port, memref_type in outputs:
                tensors[graph.interface_name(node, port)] = np.zeros(
                    memref_type.shape, dtype=np.int64)
            return tensors

        return make

    def _reference(self, inputs, outputs):
        if any(node.artifacts.reference is None for node in self.nodes.values()):
            return None
        graph = self

        def reference(tensors: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
            # Value of every (node, port) as the dataflow executes.
            values: Dict[Tuple[str, str], np.ndarray] = {}
            for node, port, _ in inputs:
                values[(node.name, port)] = np.asarray(
                    tensors[graph.interface_name(node, port)])
            fed = {(e.consumer, e.consumer_port): e for e in graph.edges}
            for node in graph.topological_order():
                node_inputs: Dict[str, np.ndarray] = {}
                for port, memref_type in node.artifacts.interfaces.items():
                    if not (memref_type.can_read and not memref_type.can_write):
                        continue
                    edge = fed.get((node.name, port))
                    if edge is not None:
                        produced = values[(edge.producer, edge.producer_port)]
                        node_inputs[port] = np.asarray(produced).reshape(
                            memref_type.shape)
                    else:
                        node_inputs[port] = values[(node.name, port)]
                produced = node.artifacts.reference(node_inputs)
                for port, tensor in produced.items():
                    values[(node.name, port)] = np.asarray(tensor)
            return {
                graph.interface_name(node, port): values[(node.name, port)]
                for node, port, _ in outputs
            }

        return reference

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DesignGraph '{self.name}' nodes={sorted(self.nodes)} "
                f"edges={len(self.edges)}>")


__all__ = [
    "DesignGraph",
    "EDGE_MARGIN",
    "GraphArtifacts",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "NodeSchedule",
]
