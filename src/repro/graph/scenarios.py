"""Registered composed-design scenarios (the graph-level kernel registry).

Each scenario builder returns a ready-to-lower :class:`~repro.graph.graph.
DesignGraph`; `python -m repro compose` and the evaluation harness resolve
scenarios by name exactly like kernels.  Out-of-tree scenarios plug in via
:func:`register_scenario`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph.graph import DesignGraph, GraphError


def build_gemm_pipeline(size: int = 4) -> DesignGraph:
    """``gemm -> transpose -> stencil_1d``: a 3-stage linear-algebra pipeline.

    The GEMM result streams through a transpose into a 1-D weighted stencil;
    the transpose-to-stencil edge is reshape-compatible (``size x size``
    matrix read as a ``size**2`` vector).
    """
    graph = DesignGraph("gemm_pipeline")
    gemm = graph.add_kernel("gemm", size=size)
    transpose = graph.add_kernel("transpose", size=size)
    stencil = graph.add_kernel("stencil_1d", size=size * size)
    graph.connect(gemm, "C", transpose, "Ai")
    graph.connect(transpose, "Co", stencil, "Ai")
    graph.expose(gemm, "A", "A")
    graph.expose(gemm, "B", "B")
    graph.expose(stencil, "Bw", "out")
    return graph


def build_histogram_cdf(pixels: int = 64, bins: int = 16) -> DesignGraph:
    """``histogram -> prefix_sum``: the cumulative distribution of an image.

    The histogram's bin counts stream into an inclusive scan, producing the
    CDF used by e.g. histogram equalization.
    """
    graph = DesignGraph("histogram_cdf")
    histogram = graph.add_kernel("histogram", pixels=pixels, bins=bins)
    scan = graph.add_kernel("prefix_sum", size=bins)
    graph.connect(histogram, "hist", scan, "xs")
    graph.expose(histogram, "img", "img")
    graph.expose(scan, "sums", "cdf")
    return graph


def build_sorted_scan(size: int = 8) -> DesignGraph:
    """``sorting_network -> prefix_sum``: running totals of sorted data."""
    graph = DesignGraph("sorted_scan")
    sorter = graph.add_kernel("sorting_network", size=size)
    scan = graph.add_kernel("prefix_sum", size=size)
    graph.connect(sorter, "sorted", scan, "xs")
    graph.expose(sorter, "xs", "xs")
    graph.expose(scan, "sums", "sums")
    return graph


SCENARIO_BUILDERS: Dict[str, Callable[..., DesignGraph]] = {
    "gemm_pipeline": build_gemm_pipeline,
    "histogram_cdf": build_histogram_cdf,
    "sorted_scan": build_sorted_scan,
}


class UnknownScenarioError(GraphError):
    """An unregistered scenario name, with the registry spelled out."""

    def __init__(self, name: str) -> None:
        self.scenario = name
        super().__init__(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(sorted(SCENARIO_BUILDERS))}. Out-of-tree scenarios "
            "can be added with repro.graph.register_scenario(name, builder)."
        )


def register_scenario(name: str, builder: Callable[..., DesignGraph],
                      *, overwrite: bool = False,
                      ) -> Callable[..., DesignGraph]:
    """Register an out-of-tree scenario builder under ``name``."""
    if not callable(builder):
        raise TypeError(f"scenario builder for {name!r} must be callable")
    if name in SCENARIO_BUILDERS and not overwrite:
        raise ValueError(
            f"scenario {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    SCENARIO_BUILDERS[name] = builder
    return builder


def unregister_scenario(name: str) -> None:
    SCENARIO_BUILDERS.pop(name, None)


def build_scenario(name: str, **parameters) -> DesignGraph:
    """Build one registered scenario by name with optional size parameters."""
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise UnknownScenarioError(name)
    return builder(**parameters)


def scenario_names() -> List[str]:
    return list(SCENARIO_BUILDERS)


__all__ = [
    "SCENARIO_BUILDERS",
    "UnknownScenarioError",
    "build_gemm_pipeline",
    "build_histogram_cdf",
    "build_sorted_scan",
    "build_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
