"""Static timing of an ``hir.func``: when does it finish, when does it last
touch memory.

Composing kernels into a dataflow graph (:mod:`repro.graph`) needs two
numbers per node, both statically derivable from the explicit schedules that
are HIR's core idea:

``done``
    The cycle (relative to the function's start pulse) at which the
    generated module's ``done`` output rises — the same completion
    condition :mod:`repro.verilog.codegen` synthesises: every top-level
    loop, call and directly scheduled operation has finished.
``last_activity``
    The last cycle at which the function can still issue or complete a
    memory access (interface or local).  A downstream node reading a buffer
    this node writes must not start before this cycle has passed.

Both are exact for the statically scheduled programs HIR expresses: loop
bounds are compile-time constants, every op carries an explicit
``(time, offset)``, and per-iteration durations follow from the loop's
``hir.yield``.  Designs that fall outside that fragment (data-dependent
bounds) raise :class:`TimingError` — they cannot be composed safely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.errors import IRError
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.values import Value
from repro.hir.ops import (
    CallOp,
    DelayOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    UnrollForOp,
    constant_value,
)


class TimingError(IRError):
    """The function's schedule is not statically analyzable."""


@dataclass(frozen=True)
class FunctionTiming:
    """Static completion profile of one function (cycles from its start)."""

    #: Cycle the generated module's ``done`` output rises.
    done: int
    #: Last cycle any memory access of the function can still be in flight.
    last_activity: int

    @property
    def quiet(self) -> int:
        """First cycle by which the function is certainly finished *and*
        every trailing write has committed (safe start for a consumer)."""
        return max(self.done, self.last_activity) + 1


class _FunctionAnalyzer:
    """Walks one function, tracking absolute cycles per time variable.

    ``abs_time`` maps a time-variable :class:`Value` to the absolute cycle of
    its *last* pulse — for loops that is the final iteration, which bounds
    every activity scheduled against it.
    """

    def __init__(self, module: Optional[ModuleOp], func: FuncOp,
                 cache: Dict[str, FunctionTiming]) -> None:
        self.module = module
        self.func = func
        self.cache = cache
        self.last_activity = 0
        self.done_candidates: List[int] = []

    def run(self) -> FunctionTiming:
        abs_time: Dict[int, int] = {id(self.func.time_arg): 0}
        self._walk_block(self.func.body.operations, abs_time, top_level=True)
        top_offsets = [
            op.offset for op in self.func.body.operations
            if isinstance(op, (MemReadOp, MemWriteOp, DelayOp, CallOp))
            and op.time_operand is self.func.time_arg
        ]
        if top_offsets:
            self.done_candidates.append(max(top_offsets) + 1)
        if self.func.result_delays:
            self.done_candidates.append(max(self.func.result_delays))
        if self.done_candidates:
            # Completion pulses set sticky flags; the ``done`` output (the
            # AND of the flags) rises one register delay after the last one.
            done = max(self.done_candidates) + 1
        else:
            # No loops/calls/timed ops: codegen aliases done to start.
            done = 0
        return FunctionTiming(done=done,
                              last_activity=max(self.last_activity, done))

    # -- helpers -------------------------------------------------------------
    def _abs(self, abs_time: Dict[int, int], time: Value, op: Operation) -> int:
        cycle = abs_time.get(id(time))
        if cycle is None:
            raise TimingError(
                f"operation '{op.name}' in @{self.func.symbol_name} is "
                "scheduled against a time variable outside the analyzed "
                "region; its schedule cannot be statically timed",
                op.location,
            )
        return cycle

    @staticmethod
    def _constant(value: Value, what: str, op: Operation) -> int:
        constant = constant_value(value)
        if constant is None:
            raise TimingError(
                f"{what} of '{op.name}' is not a compile-time constant; "
                "data-dependent schedules cannot be composed",
                op.location,
            )
        return constant

    def _activity(self, cycle: int) -> None:
        if cycle > self.last_activity:
            self.last_activity = cycle

    # -- the walk ------------------------------------------------------------
    def _walk_block(self, operations, abs_time: Dict[int, int],
                    top_level: bool) -> None:
        for op in operations:
            if isinstance(op, ForOp):
                done = self._walk_for(op, abs_time)
                if top_level:
                    self.done_candidates.append(done)
            elif isinstance(op, UnrollForOp):
                done = self._walk_unroll_for(op, abs_time)
                if top_level:
                    self.done_candidates.append(done)
            elif isinstance(op, MemReadOp):
                start = self._abs(abs_time, op.time_operand, op) + op.offset
                self._activity(start + op.memref_type.read_latency)
            elif isinstance(op, MemWriteOp):
                self._activity(self._abs(abs_time, op.time_operand, op)
                               + op.offset)
            elif isinstance(op, DelayOp):
                self._activity(self._abs(abs_time, op.time_operand, op)
                               + op.offset + op.delay)
            elif isinstance(op, CallOp):
                start = self._abs(abs_time, op.time_operand, op) + op.offset
                callee_timing = self._callee_timing(op)
                self._activity(start + callee_timing.last_activity)
                if top_level:
                    self.done_candidates.append(start + callee_timing.done)

    def _callee_timing(self, op: CallOp) -> FunctionTiming:
        if self.module is None:
            raise TimingError(
                f"cannot time call @{op.callee}: no module context",
                op.location,
            )
        callee = self.module.lookup(op.callee)
        if not isinstance(callee, FuncOp) or callee.is_external:
            raise TimingError(
                f"cannot statically time a call to @{op.callee} (external or "
                "missing); composition needs fully analyzable callees",
                op.location,
            )
        return analyze_function(self.module, callee, _cache=self.cache)

    def _iteration_duration(self, loop, abs_time: Dict[int, int]) -> int:
        """Cycles between consecutive iteration starts (the effective II).

        A first, relative walk of the body resolves the ``hir.yield``'s time
        operand — the iteration time itself, or an inner loop's completion —
        to an offset from the iteration start.
        """
        yield_op = loop.yield_op()
        if yield_op is None:
            raise TimingError(
                f"loop in @{self.func.symbol_name} has no hir.yield",
                loop.location,
            )
        rel: Dict[int, int] = dict(abs_time)
        rel[id(loop.iter_time)] = 0
        # Resolve inner-loop completion times relative to this iteration.
        self._resolve_loop_times(loop.body.operations, rel)
        base = rel.get(id(yield_op.time_operand))
        if base is None:
            raise TimingError(
                f"hir.yield in @{self.func.symbol_name} waits on a time "
                "variable that cannot be statically resolved",
                yield_op.location,
            )
        duration = base + yield_op.offset
        if duration < 1:
            raise TimingError(
                f"loop in @{self.func.symbol_name} has a non-positive "
                f"iteration duration ({duration})",
                loop.location,
            )
        return duration

    def _resolve_loop_times(self, operations, rel: Dict[int, int]) -> None:
        """Fill ``rel`` with first-pulse offsets of nested loops' time vars."""
        for op in operations:
            if isinstance(op, ForOp):
                base = rel.get(id(op.time_operand))
                if base is None:
                    continue
                trips = self._trip_count(op)
                duration = self._iteration_duration(op, rel)
                rel[id(op.iter_time)] = base + op.offset
                rel[id(op.done_time)] = base + op.offset + trips * duration
            elif isinstance(op, UnrollForOp):
                base = rel.get(id(op.time_operand))
                if base is None:
                    continue
                yield_op = op.yield_op()
                interval = yield_op.offset if yield_op is not None else 0
                trips = len(op.iterations())
                rel[id(op.iter_time)] = base + op.offset
                rel[id(op.done_time)] = (base + op.offset
                                         + max(trips - 1, 0) * interval
                                         + interval)
                self._resolve_loop_times(op.body.operations, rel)

    def _trip_count(self, op: ForOp) -> int:
        lb = self._constant(op.lower_bound, "lower bound", op)
        ub = self._constant(op.upper_bound, "upper bound", op)
        step = self._constant(op.step, "step", op)
        if step <= 0:
            raise TimingError("loop step must be positive", op.location)
        return max(0, (ub - lb + step - 1) // step)

    def _walk_for(self, op: ForOp, abs_time: Dict[int, int]) -> int:
        base = self._abs(abs_time, op.time_operand, op)
        trips = self._trip_count(op)
        duration = self._iteration_duration(op, abs_time)
        last_start = base + op.offset + max(trips - 1, 0) * duration
        done = base + op.offset + trips * duration
        inner = dict(abs_time)
        inner[id(op.iter_time)] = last_start
        inner[id(op.done_time)] = done
        abs_time[id(op.done_time)] = done
        self._walk_block(op.body.operations, inner, top_level=False)
        self._activity(done)
        return done

    def _walk_unroll_for(self, op: UnrollForOp, abs_time: Dict[int, int]) -> int:
        base = self._abs(abs_time, op.time_operand, op)
        yield_op = op.yield_op()
        interval = yield_op.offset if yield_op is not None else 0
        trips = len(op.iterations())
        last_start = base + op.offset + max(trips - 1, 0) * interval
        done = base + op.offset + max(trips - 1, 0) * interval + interval
        inner = dict(abs_time)
        inner[id(op.iter_time)] = last_start
        inner[id(op.done_time)] = done
        abs_time[id(op.done_time)] = done
        self._walk_block(op.body.operations, inner, top_level=False)
        self._activity(done)
        return done


def analyze_function(module: Optional[ModuleOp], func: FuncOp,
                     _cache: Optional[Dict[str, FunctionTiming]] = None,
                     ) -> FunctionTiming:
    """Static :class:`FunctionTiming` of ``func`` (module resolves callees)."""
    cache = _cache if _cache is not None else {}
    cached = cache.get(func.symbol_name)
    if cached is not None:
        return cached
    timing = _FunctionAnalyzer(module, func, cache).run()
    cache[func.symbol_name] = timing
    return timing


__all__ = ["FunctionTiming", "TimingError", "analyze_function"]
