"""The HIR dialect: the paper's primary contribution.

Importing this package registers the dialect (operations and the ``!hir.*``
type parser) with the core IR infrastructure.
"""

from repro.hir import dialect  # noqa: F401 - registration side effect
from repro.hir.build import DesignBuilder, FuncBuilder, LoopHandle
from repro.hir.ops import (
    AddOp,
    AllocOp,
    AndOp,
    BinaryOp,
    CallOp,
    CmpOp,
    COMPUTE_OPS,
    CONTROL_FLOW_OPS,
    ConstantOp,
    DelayOp,
    ExtOp,
    ForOp,
    FuncOp,
    HIROperation,
    MEMORY_OPS,
    MemReadOp,
    MemWriteOp,
    MultOp,
    OrOp,
    ReturnOp,
    SCHEDULING_OPS,
    SelectOp,
    ShlOp,
    ShrOp,
    SubOp,
    TruncOp,
    UnrollForOp,
    XorOp,
    YieldOp,
    constant_value,
)
from repro.hir.schedule import ScheduleAnalysis, ScheduleInfo, TimeStamp, UNBOUNDED, analyse
from repro.hir.types import (
    CONST,
    READ,
    READ_WRITE,
    TIME,
    WRITE,
    ConstType,
    MemrefType,
    TimeType,
)

__all__ = [
    "DesignBuilder", "FuncBuilder", "LoopHandle",
    "AddOp", "AllocOp", "AndOp", "BinaryOp", "CallOp", "CmpOp",
    "COMPUTE_OPS", "CONTROL_FLOW_OPS", "ConstantOp", "DelayOp", "ExtOp",
    "ForOp", "FuncOp", "HIROperation", "MEMORY_OPS", "MemReadOp",
    "MemWriteOp", "MultOp", "OrOp", "ReturnOp", "SCHEDULING_OPS",
    "SelectOp", "ShlOp", "ShrOp", "SubOp", "TruncOp", "UnrollForOp",
    "XorOp", "YieldOp", "constant_value",
    "ScheduleAnalysis", "ScheduleInfo", "TimeStamp", "UNBOUNDED", "analyse",
    "CONST", "READ", "READ_WRITE", "TIME", "WRITE",
    "ConstType", "MemrefType", "TimeType",
    "dialect",
]
