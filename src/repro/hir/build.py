"""Python-embedded builder for HIR designs.

The textual HIR format (see the listings in the paper) is round-trippable,
but kernels, examples and DSL front-ends are far more convenient to express
with a builder API.  :class:`DesignBuilder` creates a module and its
functions; inside a function, :class:`FuncBuilder` offers one method per HIR
operation plus context managers for loops::

    design = DesignBuilder("transpose_design")
    a_type = MemrefType((16, 16), I32, port="r")
    c_type = MemrefType((16, 16), I32, port="w")
    with design.func("transpose", [("Ai", a_type), ("Co", c_type)]) as f:
        with f.for_loop(0, 16, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, 16, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                v = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv], time=j_loop.time)
                j1 = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(v, f.arg("Co"), [j1, i_loop.iv], time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.ir.builder import Builder
from repro.ir.location import Location
from repro.ir.module import ModuleOp
from repro.ir.types import I32, IntegerType, Type
from repro.ir.values import Value
from repro.hir import dialect as _dialect  # noqa: F401 - ensures registration
from repro.hir.ops import (
    AddOp,
    AllocOp,
    AndOp,
    CallOp,
    CmpOp,
    ConstantOp,
    DelayOp,
    ExtOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    MultOp,
    OrOp,
    ReturnOp,
    SelectOp,
    ShlOp,
    ShrOp,
    SubOp,
    TruncOp,
    UnrollForOp,
    XorOp,
    YieldOp,
)
from repro.hir.types import MemrefType

ValueOrInt = Union[Value, int]


@dataclass
class LoopHandle:
    """Values exposed by a loop to the code built inside (and after) it."""

    op: Union[ForOp, UnrollForOp]
    iv: Value
    time: Value
    done: Value


class DesignBuilder:
    """Builds a module containing HIR functions."""

    def __init__(self, name: str = "design") -> None:
        self.module = ModuleOp(name)

    @contextmanager
    def func(
        self,
        name: str,
        args: Sequence[Tuple[str, Type]] = (),
        result_types: Sequence[Type] = (),
        arg_delays: Optional[Sequence[int]] = None,
        result_delays: Optional[Sequence[int]] = None,
        stable_args: Optional[Sequence[str]] = None,
    ) -> Iterator["FuncBuilder"]:
        """Create an ``hir.func`` and build its body inside the ``with`` block.

        ``stable_args`` names arguments the caller holds constant for the
        whole invocation (e.g. filter weights); their values may be consumed
        at any cycle without an ``hir.delay``.
        """
        arg_names = [arg_name for arg_name, _ in args]
        arg_types = [arg_type for _, arg_type in args]
        stable_set = set(stable_args or ())
        func = FuncOp(
            name,
            arg_types=arg_types,
            result_types=result_types,
            arg_names=arg_names,
            arg_delays=arg_delays,
            result_delays=result_delays,
            stable_args=[name_ in stable_set for name_ in arg_names],
            location=Location.name(name),
        )
        self.module.add(func)
        yield FuncBuilder(self, func)

    def extern_func(
        self,
        name: str,
        arg_types: Sequence[Type],
        result_types: Sequence[Type],
        result_delays: Optional[Sequence[int]] = None,
        arg_names: Optional[Sequence[str]] = None,
    ) -> FuncOp:
        """Declare an external (black-box Verilog) function."""
        func = FuncOp(
            name,
            arg_types=arg_types,
            result_types=result_types,
            arg_names=arg_names,
            result_delays=result_delays,
            external=True,
            location=Location.name(name),
        )
        self.module.add(func)
        return func


class FuncBuilder:
    """Builds the body of one HIR function."""

    def __init__(self, design: DesignBuilder, func: FuncOp) -> None:
        self.design = design
        self.func = func
        self.builder = Builder(location=func.location)
        self.builder.set_insertion_point_to_end(func.body)
        self._args: Dict[str, Value] = {
            name: value for name, value in zip(func.arg_names, func.arguments)
        }
        self._constants: Dict[Tuple[int, str], Value] = {}
        self._num_constants = 0

    # -- function interface ---------------------------------------------------
    @property
    def time(self) -> Value:
        """The function's start-time variable ``%t``."""
        return self.func.time_arg

    def arg(self, name: str) -> Value:
        return self._args[name]

    @property
    def args(self) -> List[Value]:
        return list(self.func.arguments)

    # -- constants and arithmetic -------------------------------------------------
    def constant(self, value: int, result_type: Optional[Type] = None) -> Value:
        """Materialise an ``hir.constant`` (cached per function and type).

        Constants are hoisted to the top of the function body so the cached
        value dominates every use, whichever nested region requests it.
        """
        key = (value, str(result_type) if result_type is not None else "!hir.const")
        cached = self._constants.get(key)
        if cached is not None:
            return cached
        op = ConstantOp(value, result_type, location=self.func.location)
        self.func.body.insert(self._num_constants, op)
        self._num_constants += 1
        self._constants[key] = op.results[0]
        return op.results[0]

    def _as_value(self, value: ValueOrInt, result_type: Optional[Type] = None) -> Value:
        if isinstance(value, Value):
            return value
        return self.constant(value, result_type)

    def add(self, lhs: ValueOrInt, rhs: ValueOrInt,
            result_type: Optional[Type] = None) -> Value:
        return self._binary(AddOp, lhs, rhs, result_type)

    def sub(self, lhs: ValueOrInt, rhs: ValueOrInt,
            result_type: Optional[Type] = None) -> Value:
        return self._binary(SubOp, lhs, rhs, result_type)

    def mult(self, lhs: ValueOrInt, rhs: ValueOrInt,
             result_type: Optional[Type] = None) -> Value:
        return self._binary(MultOp, lhs, rhs, result_type)

    def and_(self, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        return self._binary(AndOp, lhs, rhs, None)

    def or_(self, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        return self._binary(OrOp, lhs, rhs, None)

    def xor(self, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        return self._binary(XorOp, lhs, rhs, None)

    def shl(self, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        return self._binary(ShlOp, lhs, rhs, None)

    def shr(self, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        return self._binary(ShrOp, lhs, rhs, None)

    def _binary(self, op_class, lhs: ValueOrInt, rhs: ValueOrInt,
                result_type: Optional[Type]) -> Value:
        lhs_value = self._as_value(lhs)
        rhs_value = self._as_value(rhs)
        op = self.builder.insert(op_class(lhs_value, rhs_value, result_type))
        return op.results[0]

    def cmp(self, predicate: str, lhs: ValueOrInt, rhs: ValueOrInt) -> Value:
        op = self.builder.insert(
            CmpOp(predicate, self._as_value(lhs), self._as_value(rhs))
        )
        return op.results[0]

    def select(self, condition: Value, true_value: Value, false_value: Value) -> Value:
        op = self.builder.insert(SelectOp(condition, true_value, false_value))
        return op.results[0]

    def trunc(self, value: Value, result_type: Type) -> Value:
        return self.builder.insert(TruncOp(value, result_type)).results[0]

    def ext(self, value: Value, result_type: Type, signed: bool = True) -> Value:
        return self.builder.insert(ExtOp(value, result_type, signed)).results[0]

    # -- memory ----------------------------------------------------------------------
    def alloc(
        self,
        shape: Sequence[int],
        element_type: Type = I32,
        ports: Sequence[str] = ("r", "w"),
        packing: Optional[Sequence[int]] = None,
        mem_kind: str = "auto",
        name: Optional[str] = None,
    ) -> Tuple[Value, ...]:
        """Instantiate an on-chip tensor; returns one value per requested port."""
        packing_tuple = tuple(packing) if packing is not None else None
        port_types = [
            MemrefType(tuple(shape), element_type, port, packing_tuple) for port in ports
        ]
        op = self.builder.insert(AllocOp(port_types, mem_kind))
        if name:
            for result in op.results:
                result.name_hint = f"{name}_{result.type.port}"  # type: ignore[attr-defined]
        return tuple(op.results)

    def mem_read(self, memref: Value, indices: Sequence[ValueOrInt], time: Value,
                 offset: int = 0) -> Value:
        index_values = [self._as_value(index) for index in indices]
        op = self.builder.insert(MemReadOp(memref, index_values, time, offset))
        return op.results[0]

    def mem_write(self, value: ValueOrInt, memref: Value,
                  indices: Sequence[ValueOrInt], time: Value, offset: int = 0) -> None:
        index_values = [self._as_value(index) for index in indices]
        element_type = memref.type.element_type if isinstance(memref.type, MemrefType) else None
        self.builder.insert(
            MemWriteOp(self._as_value(value, element_type), memref, index_values,
                       time, offset)
        )

    def delay(self, value: ValueOrInt, cycles: int, time: Value, offset: int = 0) -> Value:
        op = self.builder.insert(DelayOp(self._as_value(value), cycles, time, offset))
        return op.results[0]

    # -- calls -----------------------------------------------------------------------
    def call(self, callee: Union[str, FuncOp], args: Sequence[Value], time: Value,
             offset: int = 0) -> List[Value]:
        """Call another HIR function (or an external Verilog module)."""
        if isinstance(callee, FuncOp):
            callee_op = callee
        else:
            looked_up = self.design.module.lookup(callee)
            if not isinstance(looked_up, FuncOp):
                raise ValueError(f"unknown callee @{callee}")
            callee_op = looked_up
        op = self.builder.insert(
            CallOp(
                callee_op.symbol_name,
                args,
                callee_op.function_type.results,
                time,
                offset,
                result_delays=callee_op.result_delays,
            )
        )
        return list(op.results)

    # -- control flow -----------------------------------------------------------------
    @contextmanager
    def for_loop(
        self,
        lower_bound: ValueOrInt,
        upper_bound: ValueOrInt,
        step: ValueOrInt,
        time: Value,
        iter_offset: int = 1,
        iv_type: Type = I32,
        iv_name: str = "i",
        time_name: Optional[str] = None,
    ) -> Iterator[LoopHandle]:
        """Build an ``hir.for``; the body is built inside the ``with`` block."""
        op = self.builder.insert(
            ForOp(
                self._as_value(lower_bound),
                self._as_value(upper_bound),
                self._as_value(step),
                time,
                iter_offset=iter_offset,
                iv_type=iv_type,
                iv_name=iv_name,
                time_name=time_name or f"t{iv_name}",
            )
        )
        handle = LoopHandle(op, op.induction_var, op.iter_time, op.done_time)
        with self.builder.at_end_of(op.body):
            yield handle

    @contextmanager
    def unroll_for(
        self,
        lower_bound: int,
        upper_bound: int,
        step: int = 1,
        time: Optional[Value] = None,
        iter_offset: int = 0,
        iv_name: str = "u",
        time_name: Optional[str] = None,
    ) -> Iterator[LoopHandle]:
        """Build an ``hir.unroll_for`` (fully unrolled in hardware)."""
        if time is None:
            time = self.time
        op = self.builder.insert(
            UnrollForOp(
                lower_bound,
                upper_bound,
                step,
                time,
                iter_offset=iter_offset,
                iv_name=iv_name,
                time_name=time_name or f"t{iv_name}",
            )
        )
        handle = LoopHandle(op, op.induction_var, op.iter_time, op.done_time)
        with self.builder.at_end_of(op.body):
            yield handle

    def yield_(self, time: Value, offset: int = 0) -> None:
        """Schedule the next iteration of the innermost loop being built."""
        self.builder.insert(YieldOp(time, offset))

    def return_(self, values: Sequence[Value] = ()) -> None:
        self.builder.insert(ReturnOp(list(values)))

    # -- narrow integer helpers ------------------------------------------------------
    def iv_type(self, trip_count: int) -> IntegerType:
        """Smallest integer type able to count up to ``trip_count`` (inclusive)."""
        width = max(1, trip_count.bit_length())
        return IntegerType(width + 1)
