"""HIR dialect registration.

Importing this module (or :mod:`repro.hir`) registers

* every HIR operation class with the generic op registry (done by the
  ``@register_operation`` decorators in :mod:`repro.hir.ops`), and
* the ``!hir.*`` type parser with the textual parser, so modules printed in
  generic form round-trip.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.errors import ParseError
from repro.ir.parser import register_dialect_type_parser
from repro.ir.types import Type
from repro.hir import ops as _ops  # noqa: F401 - imported for registration side effects
from repro.hir.types import CONST, TIME, parse_memref_body

DIALECT_NAME = "hir"


def _parse_hir_type(mnemonic: str, body: Optional[str]) -> Type:
    if mnemonic == "const":
        return CONST
    if mnemonic == "time":
        return TIME
    if mnemonic == "memref":
        if body is None:
            raise ParseError("!hir.memref requires a <...> body")
        return parse_memref_body(body)
    raise ParseError(f"unknown HIR type !hir.{mnemonic}")


def register_dialect() -> None:
    """Register the HIR dialect with the core IR infrastructure."""
    register_dialect_type_parser(DIALECT_NAME, _parse_hir_type)


register_dialect()
