"""Operations of the HIR dialect (Table 2 of the paper).

Four groups:

* **Control flow**: ``hir.func``, ``hir.for``, ``hir.unroll_for``,
  ``hir.return``, ``hir.yield``.
* **Compute**: ``hir.add``, ``hir.sub``, ``hir.mult``, bitwise ops,
  comparisons, ``hir.select``, bit-width casts and ``hir.call``.
  Compute ops are combinational: the result is valid in the same cycle as the
  operands.
* **Memory access**: ``hir.alloc``, ``hir.mem_read``, ``hir.mem_write``.
* **Scheduling**: ``hir.constant``, ``hir.delay``.

Scheduling convention: an operation that starts at a specific clock cycle
carries its time variable as its *last operand* and an integer ``offset``
attribute, which together encode the paper's ``at %t offset %k`` syntax.  The
paper passes the offset as an ``!hir.const`` SSA value; we use an attribute,
which is equivalent (the value must be a compile-time constant either way)
and keeps analyses simpler.  This deviation is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ir.attributes import StringAttr, SymbolRefAttr, int_of, ints_of
from repro.ir.errors import VerificationError
from repro.ir.location import Location
from repro.ir.operation import Operation, register_operation
from repro.ir.types import FunctionType, IntegerType, Type
from repro.ir.values import BlockArgument, Value
from repro.hir.types import CONST, TIME, ConstType, MemrefType, TimeType


def _offset_of(op: Operation) -> int:
    attr = op.get_attr("offset")
    return int_of(attr) if attr is not None else 0


class HIROperation(Operation):
    """Common behaviour shared by every HIR operation."""

    #: True for ops whose operands can be swapped without changing the result.
    COMMUTATIVE: bool = False
    #: True for pure combinational ops that are safe to CSE / fold.
    PURE: bool = False

    @property
    def offset(self) -> int:
        """Scheduling offset relative to the time operand (``offset %k``)."""
        return _offset_of(self)

    @property
    def has_time_operand(self) -> bool:
        return any(isinstance(v.type, TimeType) for v in self.operands)

    @property
    def time_operand(self) -> Value:
        for value in reversed(self.operands):
            if isinstance(value.type, TimeType):
                return value
        raise VerificationError(f"{self.name} has no time operand", self.location)


# --------------------------------------------------------------------------- #
# Control flow
# --------------------------------------------------------------------------- #


@register_operation
class FuncOp(HIROperation):
    """``hir.func`` — a hardware function, lowered to a Verilog module.

    The function body's block arguments are the declared arguments followed by
    the start-time variable ``%t``.  The signature embeds per-argument and
    per-result delays (Section 6.1) so pipeline imbalances across calls can be
    detected statically.  ``external=True`` declares a black-box Verilog
    module (Section 5.4): it has no body and only its signature is used.
    """

    OPERATION_NAME = "hir.func"

    def __init__(
        self,
        name: str,
        arg_types: Sequence[Type] = (),
        result_types: Sequence[Type] = (),
        arg_names: Optional[Sequence[str]] = None,
        arg_delays: Optional[Sequence[int]] = None,
        result_delays: Optional[Sequence[int]] = None,
        stable_args: Optional[Sequence[bool]] = None,
        external: bool = False,
        location: Optional[Location] = None,
    ) -> None:
        arg_types = tuple(arg_types)
        result_types = tuple(result_types)
        arg_names = tuple(arg_names) if arg_names is not None else tuple(
            f"arg{i}" for i in range(len(arg_types))
        )
        arg_delays = tuple(arg_delays) if arg_delays is not None else (0,) * len(arg_types)
        result_delays = (
            tuple(result_delays) if result_delays is not None else (0,) * len(result_types)
        )
        stable_args = (
            tuple(bool(s) for s in stable_args) if stable_args is not None
            else (False,) * len(arg_types)
        )
        if len(arg_names) != len(arg_types):
            raise ValueError("arg_names must match arg_types in length")
        if len(arg_delays) != len(arg_types):
            raise ValueError("arg_delays must match arg_types in length")
        if len(result_delays) != len(result_types):
            raise ValueError("result_delays must match result_types in length")
        if len(stable_args) != len(arg_types):
            raise ValueError("stable_args must match arg_types in length")
        super().__init__(
            attributes={
                "sym_name": name,
                "function_type": FunctionType(arg_types, result_types),
                "arg_names": list(arg_names),
                "arg_delays": list(arg_delays),
                "result_delays": list(result_delays),
                "stable_args": list(stable_args),
                "external": external,
            },
            num_regions=1,
            location=location,
        )
        if not external:
            block = self.regions[0].add_block()
            for arg_name, arg_type in zip(arg_names, arg_types):
                block.add_argument(arg_type, arg_name)
            block.add_argument(TIME, "t")

    # -- accessors ----------------------------------------------------------
    @property
    def symbol_name(self) -> str:
        return self.get_attr("sym_name").value  # type: ignore[union-attr]

    @property
    def function_type(self) -> FunctionType:
        return self.get_attr("function_type").value  # type: ignore[union-attr]

    @property
    def is_external(self) -> bool:
        attr = self.get_attr("external")
        return bool(attr.value) if attr is not None else False

    @property
    def arg_names(self) -> Tuple[str, ...]:
        return tuple(a.value for a in self.get_attr("arg_names"))  # type: ignore[union-attr]

    @property
    def arg_delays(self) -> Tuple[int, ...]:
        return ints_of(self.get_attr("arg_delays"))

    @property
    def result_delays(self) -> Tuple[int, ...]:
        return ints_of(self.get_attr("result_delays"))

    @property
    def stable_args(self) -> Tuple[bool, ...]:
        """Per-argument flag: the caller holds this input stable for the whole call.

        Stable scalar arguments (e.g. stencil weights) may be read at any
        cycle; non-stable arguments are only valid at their declared delay.
        """
        attr = self.get_attr("stable_args")
        if attr is None:
            return (False,) * len(self.arg_names)
        return tuple(bool(int_of(a)) for a in attr)  # type: ignore[union-attr]

    @property
    def arguments(self) -> List[BlockArgument]:
        """Declared arguments (excluding the trailing time variable)."""
        if self.is_external or self.regions[0].empty:
            return []
        return list(self.body.arguments[:-1])

    @property
    def time_arg(self) -> BlockArgument:
        return self.body.arguments[-1]

    def verify_op(self) -> None:
        if self.is_external:
            if self.regions[0].blocks and self.regions[0].block.operations:
                raise VerificationError(
                    f"external function @{self.symbol_name} must not have a body",
                    self.location,
                )
            return
        if self.regions[0].empty:
            raise VerificationError(
                f"function @{self.symbol_name} has no body", self.location
            )
        args = self.body.arguments
        if not args or not isinstance(args[-1].type, TimeType):
            raise VerificationError(
                f"function @{self.symbol_name} must end its arguments with a "
                "!hir.time start-time variable",
                self.location,
            )
        declared = self.function_type.inputs
        actual = tuple(a.type for a in args[:-1])
        if declared != actual:
            raise VerificationError(
                f"function @{self.symbol_name} signature {declared} does not match "
                f"body arguments {actual}",
                self.location,
            )
        terminators = [
            op for op in self.body.operations if isinstance(op, ReturnOp)
        ]
        if len(terminators) != 1 or self.body.operations[-1] is not terminators[0]:
            raise VerificationError(
                f"function @{self.symbol_name} must end with exactly one hir.return",
                self.location,
            )


@register_operation
class ReturnOp(HIROperation):
    """``hir.return`` — terminates a function body, yielding its results."""

    OPERATION_NAME = "hir.return"

    def __init__(self, values: Sequence[Value] = (),
                 location: Optional[Location] = None) -> None:
        super().__init__(operands=values, location=location)

    def verify_op(self) -> None:
        parent = self.parent_op
        if isinstance(parent, FuncOp):
            expected = parent.function_type.results
            actual = tuple(v.type for v in self.operands)
            if tuple(expected) != actual:
                raise VerificationError(
                    f"hir.return operand types {actual} do not match the enclosing "
                    f"function's result types {tuple(expected)}",
                    self.location,
                )


@register_operation
class ForOp(HIROperation):
    """``hir.for`` — a sequential (optionally pipelined) loop.

    Operands: lower bound, upper bound, step, and the time variable the first
    iteration is scheduled against (``iter_time (%ti = %t offset %k)``).  The
    single result is a time variable representing the completion of the loop.
    The body's block arguments are the induction variable and the iteration
    start-time variable; the ``hir.yield`` inside the body decides when the
    next iteration starts (the initiation interval).
    """

    OPERATION_NAME = "hir.for"

    def __init__(
        self,
        lower_bound: Value,
        upper_bound: Value,
        step: Value,
        time: Value,
        iter_offset: int = 0,
        iv_type: Optional[Type] = None,
        iv_name: str = "i",
        time_name: str = "ti",
        location: Optional[Location] = None,
    ) -> None:
        iv_type = iv_type or IntegerType(32)
        super().__init__(
            operands=[lower_bound, upper_bound, step, time],
            result_types=[TIME],
            attributes={"offset": iter_offset, "iv_name": iv_name, "time_name": time_name},
            num_regions=1,
            location=location,
        )
        block = self.regions[0].add_block()
        block.add_argument(iv_type, iv_name)
        block.add_argument(TIME, time_name)

    # -- accessors -------------------------------------------------------------
    @property
    def lower_bound(self) -> Value:
        return self.operand(0)

    @property
    def upper_bound(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def time_operand(self) -> Value:
        return self.operand(3)

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.arguments[0]

    @property
    def iter_time(self) -> BlockArgument:
        return self.body.arguments[1]

    @property
    def done_time(self) -> Value:
        return self.results[0]

    @property
    def iv_type(self) -> Type:
        return self.induction_var.type

    def set_iv_type(self, new_type: Type) -> None:
        """Change the induction variable's type (used by precision opt)."""
        self.induction_var.type = new_type

    def yield_op(self) -> Optional["YieldOp"]:
        for op in self.body.operations:
            if isinstance(op, YieldOp):
                return op
        return None

    def initiation_interval(self) -> Optional[int]:
        """The loop's II when it is a compile-time constant, else None."""
        yield_op = self.yield_op()
        if yield_op is None:
            return None
        if yield_op.time_operand is self.iter_time:
            return yield_op.offset
        return None

    def static_trip_count(self) -> Optional[int]:
        """Trip count when bounds and step are hir.constant, else None."""
        bounds = [constant_value(self.lower_bound),
                  constant_value(self.upper_bound),
                  constant_value(self.step)]
        if any(b is None for b in bounds):
            return None
        lb, ub, step = bounds  # type: ignore[misc]
        if step <= 0 or ub <= lb:
            return 0
        return (ub - lb + step - 1) // step

    def verify_op(self) -> None:
        if self.regions[0].empty:
            raise VerificationError("hir.for has no body", self.location)
        args = self.body.arguments
        if len(args) != 2 or not isinstance(args[1].type, TimeType):
            raise VerificationError(
                "hir.for body must have (induction variable, !hir.time) arguments",
                self.location,
            )
        if not isinstance(self.time_operand.type, TimeType):
            raise VerificationError(
                "hir.for's fourth operand must be a !hir.time value", self.location
            )
        if self.yield_op() is None:
            raise VerificationError(
                "hir.for body must contain an hir.yield deciding the next "
                "iteration's start time",
                self.location,
            )


@register_operation
class UnrollForOp(HIROperation):
    """``hir.unroll_for`` — a fully unrolled loop; the body is replicated.

    Bounds are compile-time attributes.  The induction variable is an
    ``!hir.const`` so it can index distributed memref dimensions.
    """

    OPERATION_NAME = "hir.unroll_for"

    def __init__(
        self,
        lower_bound: int,
        upper_bound: int,
        step: int,
        time: Value,
        iter_offset: int = 0,
        iv_name: str = "i",
        time_name: str = "ti",
        location: Optional[Location] = None,
    ) -> None:
        super().__init__(
            operands=[time],
            result_types=[TIME],
            attributes={
                "lb": lower_bound,
                "ub": upper_bound,
                "step": step,
                "offset": iter_offset,
                "iv_name": iv_name,
                "time_name": time_name,
            },
            num_regions=1,
            location=location,
        )
        block = self.regions[0].add_block()
        block.add_argument(CONST, iv_name)
        block.add_argument(TIME, time_name)

    @property
    def lower_bound(self) -> int:
        return int_of(self.get_attr("lb"))

    @property
    def upper_bound(self) -> int:
        return int_of(self.get_attr("ub"))

    @property
    def step(self) -> int:
        return int_of(self.get_attr("step"))

    @property
    def time_operand(self) -> Value:
        return self.operand(0)

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.arguments[0]

    @property
    def iter_time(self) -> BlockArgument:
        return self.body.arguments[1]

    @property
    def done_time(self) -> Value:
        return self.results[0]

    def iterations(self) -> List[int]:
        return list(range(self.lower_bound, self.upper_bound, self.step))

    def yield_op(self) -> Optional["YieldOp"]:
        for op in self.body.operations:
            if isinstance(op, YieldOp):
                return op
        return None

    def verify_op(self) -> None:
        if self.step <= 0:
            raise VerificationError(
                f"hir.unroll_for step must be positive, got {self.step}", self.location
            )
        if self.regions[0].empty or len(self.body.arguments) != 2:
            raise VerificationError(
                "hir.unroll_for body must have (const induction variable, "
                "!hir.time) arguments",
                self.location,
            )


@register_operation
class YieldOp(HIROperation):
    """``hir.yield`` — schedules the next loop iteration (``at %t offset %k``)."""

    OPERATION_NAME = "hir.yield"

    def __init__(self, time: Value, offset: int = 0,
                 location: Optional[Location] = None) -> None:
        super().__init__(operands=[time], attributes={"offset": offset},
                         location=location)

    @property
    def time_operand(self) -> Value:
        return self.operand(0)

    def verify_op(self) -> None:
        if not isinstance(self.time_operand.type, TimeType):
            raise VerificationError(
                "hir.yield operand must be a !hir.time value", self.location
            )
        parent = self.parent_op
        if not isinstance(parent, (ForOp, UnrollForOp)):
            raise VerificationError(
                "hir.yield must be nested directly inside hir.for or hir.unroll_for",
                self.location,
            )


# --------------------------------------------------------------------------- #
# Constants and compute operations
# --------------------------------------------------------------------------- #


@register_operation
class ConstantOp(HIROperation):
    """``hir.constant`` — a compile-time integer constant (``!hir.const``)."""

    OPERATION_NAME = "hir.constant"
    PURE = True

    def __init__(self, value: int, result_type: Optional[Type] = None,
                 location: Optional[Location] = None) -> None:
        super().__init__(
            result_types=[result_type or CONST],
            attributes={"value": int(value)},
            location=location,
        )
        self.results[0].name_hint = f"c{value}" if value >= 0 else f"cm{-value}"

    @property
    def value(self) -> int:
        return int_of(self.get_attr("value"))


def constant_value(value: Value) -> Optional[int]:
    """The integer behind ``value`` if it is defined by hir.constant, else None."""
    owner = getattr(value, "operation", None)
    if isinstance(owner, ConstantOp):
        return owner.value
    return None


class BinaryOp(HIROperation):
    """Base class of two-operand combinational compute ops."""

    PURE = True

    def __init__(self, lhs: Value, rhs: Value, result_type: Optional[Type] = None,
                 location: Optional[Location] = None) -> None:
        result_type = result_type or self._infer_type(lhs, rhs)
        super().__init__(operands=[lhs, rhs], result_types=[result_type],
                         location=location)

    @staticmethod
    def _infer_type(lhs: Value, rhs: Value) -> Type:
        if isinstance(lhs.type, ConstType):
            return rhs.type
        return lhs.type

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def evaluate(self, lhs: int, rhs: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"binary op '{self.name}' ({type(self).__name__}) does not define "
            "evaluate(); constant folding and simulation need its integer "
            "semantics"
        )


@register_operation
class AddOp(BinaryOp):
    OPERATION_NAME = "hir.add"
    COMMUTATIVE = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs + rhs


@register_operation
class SubOp(BinaryOp):
    OPERATION_NAME = "hir.sub"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs - rhs


@register_operation
class MultOp(BinaryOp):
    OPERATION_NAME = "hir.mult"
    COMMUTATIVE = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs * rhs


@register_operation
class AndOp(BinaryOp):
    OPERATION_NAME = "hir.and"
    COMMUTATIVE = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs & rhs


@register_operation
class OrOp(BinaryOp):
    OPERATION_NAME = "hir.or"
    COMMUTATIVE = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs | rhs


@register_operation
class XorOp(BinaryOp):
    OPERATION_NAME = "hir.xor"
    COMMUTATIVE = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs ^ rhs


@register_operation
class ShlOp(BinaryOp):
    OPERATION_NAME = "hir.shl"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs << rhs


@register_operation
class ShrOp(BinaryOp):
    OPERATION_NAME = "hir.shr"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs >> rhs


#: Comparison predicates accepted by hir.cmp.
CMP_PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge")


@register_operation
class CmpOp(HIROperation):
    """``hir.cmp`` — integer comparison producing an ``i1``."""

    OPERATION_NAME = "hir.cmp"
    PURE = True

    def __init__(self, predicate: str, lhs: Value, rhs: Value,
                 location: Optional[Location] = None) -> None:
        if predicate not in CMP_PREDICATES:
            raise ValueError(f"unknown comparison predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[IntegerType(1)],
            attributes={"predicate": predicate},
            location=location,
        )

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate").value  # type: ignore[union-attr]

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def evaluate(self, lhs: int, rhs: int) -> int:
        return int({
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "lt": lhs < rhs,
            "le": lhs <= rhs,
            "gt": lhs > rhs,
            "ge": lhs >= rhs,
        }[self.predicate])


@register_operation
class SelectOp(HIROperation):
    """``hir.select`` — a multiplexer: ``cond ? true_value : false_value``."""

    OPERATION_NAME = "hir.select"
    PURE = True

    def __init__(self, condition: Value, true_value: Value, false_value: Value,
                 location: Optional[Location] = None) -> None:
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
            location=location,
        )

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


@register_operation
class TruncOp(HIROperation):
    """``hir.trunc`` — keep the low bits (bit slicing to a narrower type)."""

    OPERATION_NAME = "hir.trunc"
    PURE = True

    def __init__(self, value: Value, result_type: Type,
                 location: Optional[Location] = None) -> None:
        super().__init__(operands=[value], result_types=[result_type],
                         location=location)

    @property
    def value(self) -> Value:
        return self.operand(0)


@register_operation
class ExtOp(HIROperation):
    """``hir.ext`` — sign/zero extend to a wider type."""

    OPERATION_NAME = "hir.ext"
    PURE = True

    def __init__(self, value: Value, result_type: Type, signed: bool = True,
                 location: Optional[Location] = None) -> None:
        super().__init__(operands=[value], result_types=[result_type],
                         attributes={"signed": signed}, location=location)

    @property
    def value(self) -> Value:
        return self.operand(0)


@register_operation
class CallOp(HIROperation):
    """``hir.call`` — invoke another HIR function or an external Verilog module.

    The call starts at ``at %t offset %k``; each result becomes valid
    ``result_delays[i]`` cycles after the call starts, as declared by the
    callee's signature.
    """

    OPERATION_NAME = "hir.call"

    def __init__(
        self,
        callee: str,
        args: Sequence[Value],
        result_types: Sequence[Type],
        time: Value,
        offset: int = 0,
        result_delays: Optional[Sequence[int]] = None,
        location: Optional[Location] = None,
    ) -> None:
        result_delays = (
            tuple(result_delays) if result_delays is not None
            else (0,) * len(tuple(result_types))
        )
        super().__init__(
            operands=[*args, time],
            result_types=result_types,
            attributes={
                "callee": SymbolRefAttr(callee),
                "offset": offset,
                "result_delays": list(result_delays),
            },
            location=location,
        )

    @property
    def callee(self) -> str:
        return self.get_attr("callee").value  # type: ignore[union-attr]

    @property
    def args(self) -> List[Value]:
        return self.operands[:-1]

    @property
    def time_operand(self) -> Value:
        return self.operand(self.num_operands - 1)

    @property
    def result_delays(self) -> Tuple[int, ...]:
        return ints_of(self.get_attr("result_delays"))

    def verify_op(self) -> None:
        if not isinstance(self.time_operand.type, TimeType):
            raise VerificationError(
                "hir.call's last operand must be a !hir.time value", self.location
            )
        if len(self.result_delays) != self.num_results:
            raise VerificationError(
                "hir.call result_delays must have one entry per result", self.location
            )


# --------------------------------------------------------------------------- #
# Memory and scheduling operations
# --------------------------------------------------------------------------- #


@register_operation
class AllocOp(HIROperation):
    """``hir.alloc`` — instantiate an on-chip tensor and return its ports.

    Each result is a memref: one port onto the same underlying tensor.  All
    result memrefs must agree on shape, element type and packing; only the
    port direction may differ (e.g. one read port and one write port of a
    simple dual-port RAM).
    """

    OPERATION_NAME = "hir.alloc"

    def __init__(self, port_types: Sequence[MemrefType], mem_kind: str = "auto",
                 location: Optional[Location] = None) -> None:
        super().__init__(
            result_types=list(port_types),
            attributes={"mem_kind": mem_kind},
            location=location,
        )

    @property
    def mem_kind(self) -> str:
        attr = self.get_attr("mem_kind")
        return attr.value if isinstance(attr, StringAttr) else "auto"

    @property
    def ports(self) -> List[Value]:
        return list(self.results)

    @property
    def tensor_type(self) -> MemrefType:
        return self.results[0].type  # type: ignore[return-value]

    def verify_op(self) -> None:
        if not self.results:
            raise VerificationError("hir.alloc must define at least one port", self.location)
        first = self.results[0].type
        if not isinstance(first, MemrefType):
            raise VerificationError("hir.alloc results must be memrefs", self.location)
        for result in self.results[1:]:
            other = result.type
            if not isinstance(other, MemrefType):
                raise VerificationError("hir.alloc results must be memrefs", self.location)
            if (other.shape, other.element_type, other.packing) != (
                first.shape, first.element_type, first.packing
            ):
                raise VerificationError(
                    "all ports of an hir.alloc must share shape, element type and "
                    "packing; only the port direction may differ",
                    self.location,
                )


@register_operation
class MemReadOp(HIROperation):
    """``hir.mem_read`` — read one element of a memref at a scheduled time."""

    OPERATION_NAME = "hir.mem_read"

    def __init__(self, memref: Value, indices: Sequence[Value], time: Value,
                 offset: int = 0, location: Optional[Location] = None) -> None:
        memref_type = memref.type
        if not isinstance(memref_type, MemrefType):
            raise VerificationError("hir.mem_read expects a memref operand", location)
        super().__init__(
            operands=[memref, *indices, time],
            result_types=[memref_type.element_type],
            attributes={"offset": offset},
            location=location,
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def memref_type(self) -> MemrefType:
        return self.memref.type  # type: ignore[return-value]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:-1]

    @property
    def time_operand(self) -> Value:
        return self.operand(self.num_operands - 1)

    def verify_op(self) -> None:
        memref_type = self.memref.type
        if not isinstance(memref_type, MemrefType):
            raise VerificationError("hir.mem_read expects a memref operand", self.location)
        if not memref_type.can_read:
            raise VerificationError(
                f"cannot read through a '{memref_type.port}' memref port", self.location
            )
        if len(self.indices) != memref_type.rank:
            raise VerificationError(
                f"hir.mem_read expects {memref_type.rank} indices, got "
                f"{len(self.indices)}",
                self.location,
            )
        _verify_distributed_indices(self, memref_type, self.indices)


@register_operation
class MemWriteOp(HIROperation):
    """``hir.mem_write`` — write one element of a memref at a scheduled time."""

    OPERATION_NAME = "hir.mem_write"

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value],
                 time: Value, offset: int = 0,
                 location: Optional[Location] = None) -> None:
        super().__init__(
            operands=[value, memref, *indices, time],
            attributes={"offset": offset},
            location=location,
        )

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def memref_type(self) -> MemrefType:
        return self.memref.type  # type: ignore[return-value]

    @property
    def indices(self) -> List[Value]:
        return self.operands[2:-1]

    @property
    def time_operand(self) -> Value:
        return self.operand(self.num_operands - 1)

    def verify_op(self) -> None:
        memref_type = self.memref.type
        if not isinstance(memref_type, MemrefType):
            raise VerificationError("hir.mem_write expects a memref operand", self.location)
        if not memref_type.can_write:
            raise VerificationError(
                f"cannot write through a '{memref_type.port}' memref port", self.location
            )
        if len(self.indices) != memref_type.rank:
            raise VerificationError(
                f"hir.mem_write expects {memref_type.rank} indices, got "
                f"{len(self.indices)}",
                self.location,
            )
        _verify_distributed_indices(self, memref_type, self.indices)


def _verify_distributed_indices(op: Operation, memref_type: MemrefType,
                                indices: Sequence[Value]) -> None:
    """Distributed dimensions may only be indexed with compile-time constants."""
    for dim in memref_type.distributed_dims():
        index = indices[dim]
        if isinstance(index.type, ConstType) or constant_value(index) is not None:
            continue
        raise VerificationError(
            f"distributed dimension {dim} of {memref_type} must be indexed with a "
            "compile-time constant (!hir.const)",
            op.location,
        )


@register_operation
class DelayOp(HIROperation):
    """``hir.delay`` — delay a value by N cycles (lowered to a shift register)."""

    OPERATION_NAME = "hir.delay"

    def __init__(self, value: Value, delay: int, time: Value, offset: int = 0,
                 location: Optional[Location] = None) -> None:
        super().__init__(
            operands=[value, time],
            result_types=[value.type],
            attributes={"delay": delay, "offset": offset},
            location=location,
        )

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def delay(self) -> int:
        return int_of(self.get_attr("delay"))

    @property
    def time_operand(self) -> Value:
        return self.operand(1)

    def verify_op(self) -> None:
        if self.delay < 0:
            raise VerificationError(
                f"hir.delay amount must be non-negative, got {self.delay}", self.location
            )
        if self.results[0].type != self.value.type:
            raise VerificationError(
                "hir.delay result type must match its input type", self.location
            )


#: Operation groups used by Table-2-style inventories and by generic passes.
CONTROL_FLOW_OPS = (FuncOp, ForOp, UnrollForOp, ReturnOp, YieldOp)
COMPUTE_OPS = (AddOp, SubOp, MultOp, AndOp, OrOp, XorOp, ShlOp, ShrOp, CmpOp,
               SelectOp, TruncOp, ExtOp, CallOp)
MEMORY_OPS = (AllocOp, MemReadOp, MemWriteOp)
SCHEDULING_OPS = (ConstantOp, DelayOp)
