"""Schedule analysis: when is every value valid, when does every op start.

This is the timing model behind HIR's key contribution (Section 4.2): every
primitive SSA value is valid at a specific clock cycle expressed as an offset
from a *time variable*.  Time variables are

* the function's start time ``%t``,
* each loop's iteration start time ``%ti`` (a different instant per
  iteration), and
* each loop's completion time (the loop op's result).

The analysis computes, for a single ``hir.func``:

* ``op_start``    — the :class:`TimeStamp` at which each scheduled op starts,
* ``value_time``  — the :class:`TimeStamp` at which each primitive value is
  valid (constants, memrefs and time variables are *timeless*), and
* ``value_window``— how many extra cycles the value stays valid.  Loop
  induction variables stay valid until the next iteration starts, i.e. for
  ``II - 1`` extra cycles; everything else is a wire valid for one cycle.

Both the schedule verifier (:mod:`repro.passes.schedule_verifier`) and the
Verilog FSM generator (:mod:`repro.verilog.fsm`) consume this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.operation import Operation
from repro.ir.values import Value
from repro.hir.ops import (
    AllocOp,
    BinaryOp,
    CallOp,
    CmpOp,
    ConstantOp,
    DelayOp,
    ExtOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    ReturnOp,
    SelectOp,
    TruncOp,
    UnrollForOp,
    YieldOp,
)
from repro.hir.types import ConstType, MemrefType, TimeType


@dataclass(frozen=True)
class TimeStamp:
    """A clock cycle expressed as ``root + offset`` where root is a time variable."""

    root: Value
    offset: int

    def advanced(self, cycles: int) -> "TimeStamp":
        return TimeStamp(self.root, self.offset + cycles)

    def describe(self) -> str:
        root_name = self.root.name_hint or "t"
        if self.offset == 0:
            return f"%{root_name}"
        return f"%{root_name}+{self.offset}"

    def __str__(self) -> str:
        return self.describe()


#: Window meaning "valid forever" (constants, memrefs, time variables).
UNBOUNDED = -1


class ScheduleInfo:
    """Result of analysing one function."""

    def __init__(self, func: FuncOp) -> None:
        self.func = func
        self.op_start: Dict[Operation, TimeStamp] = {}
        self.value_time: Dict[Value, TimeStamp] = {}
        self.value_window: Dict[Value, int] = {}
        #: Loop op owning each iteration-time variable (for error messages).
        self.time_var_owner: Dict[Value, Operation] = {}

    # -- queries ------------------------------------------------------------
    def is_timeless(self, value: Value) -> bool:
        """Constants, memrefs and time variables are not bound to a cycle."""
        if isinstance(value.type, (ConstType, MemrefType, TimeType)):
            return True
        return value not in self.value_time

    def time_of(self, value: Value) -> Optional[TimeStamp]:
        return self.value_time.get(value)

    def window_of(self, value: Value) -> int:
        return self.value_window.get(value, 0)

    def start_of(self, op: Operation) -> Optional[TimeStamp]:
        return self.op_start.get(op)

    def is_valid_at(self, value: Value, when: TimeStamp) -> bool:
        """Is ``value`` guaranteed to hold its defining value at ``when``?"""
        if self.is_timeless(value):
            return True
        valid = self.value_time[value]
        if valid.root is not when.root:
            return False
        window = self.window_of(value)
        if window == UNBOUNDED:
            return when.offset >= valid.offset
        return valid.offset <= when.offset <= valid.offset + window


class ScheduleAnalysis:
    """Computes :class:`ScheduleInfo` for an ``hir.func``."""

    def __init__(self, func: FuncOp) -> None:
        self.func = func
        self.info = ScheduleInfo(func)

    def run(self) -> ScheduleInfo:
        info = self.info
        if self.func.is_external:
            return info
        # Function arguments: primitives become valid arg_delays[i] cycles
        # after the function's start time; memrefs are timeless.
        time_arg = self.func.time_arg
        info.time_var_owner[time_arg] = self.func
        stable = self.func.stable_args
        for index, (arg, delay) in enumerate(
            zip(self.func.arguments, self.func.arg_delays)
        ):
            if isinstance(arg.type, (MemrefType, ConstType, TimeType)):
                continue
            info.value_time[arg] = TimeStamp(time_arg, delay)
            is_stable = stable[index] if index < len(stable) else False
            info.value_window[arg] = UNBOUNDED if is_stable else 0
        self._analyse_block(self.func.body.operations)
        return info

    # -- per-op rules --------------------------------------------------------
    def _analyse_block(self, operations: List[Operation]) -> None:
        for op in operations:
            self._analyse_op(op)

    def _analyse_op(self, op: Operation) -> None:
        info = self.info
        if isinstance(op, ConstantOp):
            info.value_window[op.results[0]] = UNBOUNDED
            return
        if isinstance(op, AllocOp):
            for result in op.results:
                info.value_window[result] = UNBOUNDED
            return
        if isinstance(op, (MemReadOp, MemWriteOp, DelayOp, CallOp, YieldOp)):
            start = TimeStamp(op.time_operand, op.offset)  # type: ignore[attr-defined]
            info.op_start[op] = start
            self._analyse_timed_op(op, start)
            return
        if isinstance(op, (BinaryOp, CmpOp, SelectOp, TruncOp, ExtOp)):
            self._analyse_combinational(op)
            return
        if isinstance(op, ForOp):
            self._analyse_for(op)
            return
        if isinstance(op, UnrollForOp):
            self._analyse_unroll_for(op)
            return
        if isinstance(op, ReturnOp):
            info.op_start[op] = TimeStamp(self.func.time_arg, 0)
            return
        # Unknown/extension op: leave results timeless.

    def _analyse_timed_op(self, op: Operation, start: TimeStamp) -> None:
        info = self.info
        if isinstance(op, MemReadOp):
            info.value_time[op.results[0]] = start.advanced(op.memref_type.read_latency)
            info.value_window[op.results[0]] = 0
        elif isinstance(op, DelayOp):
            input_time = info.time_of(op.value)
            base = input_time if input_time is not None else start
            info.value_time[op.results[0]] = base.advanced(op.delay)
            info.value_window[op.results[0]] = 0
        elif isinstance(op, CallOp):
            for result, delay in zip(op.results, op.result_delays):
                info.value_time[result] = start.advanced(delay)
                info.value_window[result] = 0

    def _analyse_combinational(self, op: Operation) -> None:
        """Compute ops: result valid at the shared time of the timed operands."""
        info = self.info
        operand_time: Optional[TimeStamp] = None
        for operand in op.operands:
            time = info.time_of(operand)
            if time is not None and operand_time is None:
                operand_time = time
        for result in op.results:
            if operand_time is not None:
                info.value_time[result] = operand_time
                info.value_window[result] = min(
                    (info.window_of(o) for o in op.operands if not info.is_timeless(o)),
                    default=0,
                )
            else:
                info.value_window[result] = UNBOUNDED

    def _analyse_for(self, op: ForOp) -> None:
        info = self.info
        info.op_start[op] = TimeStamp(op.time_operand, op.offset)
        info.time_var_owner[op.iter_time] = op
        info.time_var_owner[op.done_time] = op
        # The induction variable is produced by the loop's state machine at
        # the start of each iteration and stays valid until the next iteration
        # starts (II - 1 extra cycles).
        ii = op.initiation_interval()
        info.value_time[op.induction_var] = TimeStamp(op.iter_time, 0)
        info.value_window[op.induction_var] = (ii - 1) if ii and ii > 0 else 0
        info.value_window[op.done_time] = UNBOUNDED
        self._analyse_block(op.body.operations)

    def _analyse_unroll_for(self, op: UnrollForOp) -> None:
        info = self.info
        info.op_start[op] = TimeStamp(op.time_operand, op.offset)
        info.time_var_owner[op.iter_time] = op
        info.time_var_owner[op.done_time] = op
        # The unrolled induction variable is a compile-time constant.
        info.value_window[op.induction_var] = UNBOUNDED
        info.value_window[op.done_time] = UNBOUNDED
        self._analyse_block(op.body.operations)


def analyse(func: FuncOp) -> ScheduleInfo:
    """Convenience wrapper: run :class:`ScheduleAnalysis` on ``func``."""
    return ScheduleAnalysis(func).run()
