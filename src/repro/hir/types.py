"""HIR dialect types: ``!hir.const``, ``!hir.time`` and ``!hir.memref``.

The memref type is the paper's abstraction of on-chip memory (Section 4.4):
it is a *port* onto a multidimensional tensor.  Each dimension is either

* **packed** — elements that differ only in packed dimensions live in the same
  physical buffer (the packed dimensions decide the in-buffer layout), or
* **distributed** — elements that differ in a distributed dimension live in
  different buffers, producing a banked design (Figure 3).  Distributed
  dimensions may only be indexed with compile-time constants.

Dimension indices in ``packing`` are counted from the innermost (rightmost)
dimension, matching the HIR artifact: ``!hir.memref<3*2*i32, packing=[1], r>``
packs the outer dimension of extent 3 and distributes the inner dimension of
extent 2, giving two banks of three elements (exactly Figure 3).
A memref with an empty packing list is fully distributed, i.e. every element
gets its own register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.ir.errors import ParseError
from repro.ir.types import IntegerType, Type

#: Port kinds a memref may have.
READ = "r"
WRITE = "w"
READ_WRITE = "rw"
_PORTS = (READ, WRITE, READ_WRITE)


@dataclass(frozen=True)
class ConstType(Type):
    """``!hir.const`` — a compile-time integer constant."""

    def __str__(self) -> str:
        return "!hir.const"


@dataclass(frozen=True)
class TimeType(Type):
    """``!hir.time`` — a time variable (a specific clock cycle in its scope)."""

    def __str__(self) -> str:
        return "!hir.time"


@dataclass(frozen=True)
class MemrefType(Type):
    """``!hir.memref`` — one port onto a multidimensional on-chip tensor."""

    shape: Tuple[int, ...]
    element_type: Type = field(default_factory=lambda: IntegerType(32))
    port: str = READ
    #: Packed dimension indices, counted from the innermost dimension.
    #: ``None`` means "all dimensions are packed" (a single buffer).
    packing: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("memref must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"memref extents must be positive, got {self.shape}")
        if self.port not in _PORTS:
            raise ValueError(f"invalid memref port {self.port!r}, expected one of {_PORTS}")
        if self.packing is not None:
            rank = len(self.shape)
            if any(d < 0 or d >= rank for d in self.packing):
                raise ValueError(
                    f"packing indices {self.packing} out of range for rank {rank}"
                )
            if len(set(self.packing)) != len(self.packing):
                raise ValueError(f"duplicate packing indices {self.packing}")

    # -- structural queries ---------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def packed_dims(self) -> Tuple[int, ...]:
        """Packed dimension indices counted from the *left* (dim 0 = outermost)."""
        rank = self.rank
        if self.packing is None:
            return tuple(range(rank))
        return tuple(sorted(rank - 1 - d for d in self.packing))

    def distributed_dims(self) -> Tuple[int, ...]:
        packed = set(self.packed_dims())
        return tuple(d for d in range(self.rank) if d not in packed)

    @property
    def num_banks(self) -> int:
        """Number of physical buffers the tensor is spread over."""
        banks = 1
        for dim in self.distributed_dims():
            banks *= self.shape[dim]
        return banks

    @property
    def elements_per_bank(self) -> int:
        per_bank = 1
        for dim in self.packed_dims():
            per_bank *= self.shape[dim]
        return per_bank

    @property
    def is_register_implemented(self) -> bool:
        """True when every element has its own register (no packed storage)."""
        return self.elements_per_bank == 1

    @property
    def read_latency(self) -> int:
        """Cycles between issuing a read and the data being valid.

        Register-implemented memrefs read combinationally (0 cycles); RAMs
        (distributed or block) take one cycle, as in Section 4.1 of the paper.
        """
        return 0 if self.is_register_implemented else 1

    @property
    def can_read(self) -> bool:
        return self.port in (READ, READ_WRITE)

    @property
    def can_write(self) -> bool:
        return self.port in (WRITE, READ_WRITE)

    # -- addressing ----------------------------------------------------------
    def bank_of(self, indices: Sequence[int]) -> int:
        """Flat bank index selected by the distributed-dimension indices."""
        self._check_indices(indices)
        bank = 0
        for dim in self.distributed_dims():
            bank = bank * self.shape[dim] + indices[dim]
        return bank

    def offset_in_bank(self, indices: Sequence[int]) -> int:
        """Linear address inside the bank selected by the packed dims."""
        self._check_indices(indices)
        offset = 0
        for dim in self.packed_dims():
            offset = offset * self.shape[dim] + indices[dim]
        return offset

    def _check_indices(self, indices: Sequence[int]) -> None:
        if len(indices) != self.rank:
            raise ValueError(
                f"expected {self.rank} indices for memref of shape {self.shape}, "
                f"got {len(indices)}"
            )
        for dim, (index, extent) in enumerate(zip(indices, self.shape)):
            if not 0 <= index < extent:
                raise ValueError(
                    f"index {index} out of bounds for dimension {dim} "
                    f"(extent {extent})"
                )

    # -- derived types --------------------------------------------------------
    def with_port(self, port: str) -> "MemrefType":
        return MemrefType(self.shape, self.element_type, port, self.packing)

    @property
    def address_width(self) -> int:
        """Bits required to address one element inside a bank."""
        per_bank = self.elements_per_bank
        if per_bank <= 1:
            return 0
        return max(1, (per_bank - 1).bit_length())

    # -- printing -------------------------------------------------------------
    def __str__(self) -> str:
        dims = "*".join(str(extent) for extent in self.shape)
        parts = [f"{dims}*{self.element_type}", self.port]
        if self.packing is not None:
            packing = ",".join(str(d) for d in sorted(self.packing))
            parts.append(f"packing=[{packing}]")
        return f"!hir.memref<{', '.join(parts)}>"


CONST = ConstType()
TIME = TimeType()


def parse_memref_body(body: str) -> MemrefType:
    """Parse the text between ``<`` and ``>`` of a ``!hir.memref`` type.

    The printer and parser in :mod:`repro.ir` hand the body over as a
    whitespace-normalised string such as ``"16 * 16 * i32 , r"`` or
    ``"2 * i32 , r , packing = [ ]"``.
    """
    from repro.ir.parser import parse_simple_type  # deferred: avoid import cycle

    sections = [section.strip() for section in body.split(",")]
    # Re-join the packing list, which itself contains commas.
    merged: list[str] = []
    depth = 0
    for section in sections:
        if depth > 0:
            merged[-1] += "," + section
        else:
            merged.append(section)
        depth += section.count("[") - section.count("]")
    sections = merged

    if not sections or not sections[0]:
        raise ParseError("empty !hir.memref body")

    dims_and_element = [part.strip() for part in sections[0].split("*")]
    if len(dims_and_element) < 2:
        raise ParseError(f"malformed memref shape {sections[0]!r}")
    shape = tuple(int(part) for part in dims_and_element[:-1])
    element_type = parse_simple_type(dims_and_element[-1].replace(" ", ""))

    port = READ
    packing: Optional[Tuple[int, ...]] = None
    for section in sections[1:]:
        section = section.replace(" ", "")
        if not section:
            continue
        if section in _PORTS:
            port = section
        elif section.startswith("packing="):
            inner = section[len("packing="):].strip("[]")
            packing = tuple(int(p) for p in inner.split(",") if p != "")
        else:
            raise ParseError(f"unknown memref qualifier {section!r}")
    return MemrefType(shape, element_type, port, packing)
