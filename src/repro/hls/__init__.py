"""The baseline HLS compiler: the reproduction's Vivado HLS substitute."""

from repro.hls.binding import Binder, BindingResult, FunctionalUnit, RegisterAllocation, bind_loop
from repro.hls.compiler import (
    HLSCompiler,
    HLSReport,
    HLSResult,
    LoopReport,
    compile_program,
)
from repro.hls.dse import (
    Candidate,
    LoopExploration,
    clear_schedule_memo,
    collect_innermost_loops,
    explore_loop,
    schedule_memo_size,
    set_memo_capacity,
)
from repro.hls.options import HLSOptions
from repro.hls.rtl import LoopRTLInfo, RTLGenerator
from repro.hls.scheduling import (
    DataflowGraph,
    DFGBuilder,
    DFGNode,
    LoopSchedule,
    asap_schedule,
    alap_schedule,
    graph_signature,
    list_schedule,
    recurrence_min_ii,
    resource_min_ii,
    schedule_loop,
)
from repro.hls.swir import (
    ARRAY,
    Assign,
    BinExpr,
    For,
    Function,
    IntConst,
    Load,
    LocalArray,
    Param,
    Pragmas,
    Program,
    SCALAR,
    Store,
    SwBuilder,
    Var,
)

__all__ = [
    "Binder", "BindingResult", "FunctionalUnit", "RegisterAllocation", "bind_loop",
    "HLSCompiler", "HLSReport", "HLSResult", "LoopReport", "compile_program",
    "Candidate", "HLSOptions", "LoopExploration", "clear_schedule_memo",
    "collect_innermost_loops", "explore_loop", "schedule_memo_size",
    "set_memo_capacity",
    "LoopRTLInfo", "RTLGenerator",
    "DataflowGraph", "DFGBuilder", "DFGNode", "LoopSchedule",
    "asap_schedule", "alap_schedule", "graph_signature", "list_schedule",
    "recurrence_min_ii", "resource_min_ii", "schedule_loop",
    "ARRAY", "Assign", "BinExpr", "For", "Function", "IntConst", "Load",
    "LocalArray", "Param", "Pragmas", "Program", "SCALAR", "Store",
    "SwBuilder", "Var",
]
