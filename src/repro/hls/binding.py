"""Resource binding for the baseline HLS compiler.

After scheduling, binding decides which physical functional unit executes
each operation and which registers hold values that cross clock-cycle
boundaries.  Sharing a functional unit across operations scheduled in
different cycles saves area but adds input multiplexers; values alive across
stage boundaries of a pipelined loop need one register copy per stage — the
main reason automatically scheduled designs use more flip-flops than HIR
designs with hand-placed delays (Tables 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hls.scheduling import DFGNode, LoopSchedule

#: Operation kinds that occupy a functional unit worth sharing.
SHARED_FU_KINDS = ("mul", "add", "sub", "cmp")


@dataclass
class FunctionalUnit:
    """One allocated functional unit and the operations bound to it."""

    kind: str
    index: int
    operations: List[int] = field(default_factory=list)

    @property
    def mux_inputs(self) -> int:
        """Number of distinct sources multiplexed onto this unit's inputs."""
        return max(0, len(self.operations) - 1)


@dataclass
class RegisterAllocation:
    """A value that must be registered between pipeline stages / states."""

    value: str
    width: int
    lifetime: int      # number of cycle boundaries crossed (register copies)


@dataclass
class BindingResult:
    functional_units: List[FunctionalUnit] = field(default_factory=list)
    registers: List[RegisterAllocation] = field(default_factory=list)

    def units_of_kind(self, kind: str) -> List[FunctionalUnit]:
        return [fu for fu in self.functional_units if fu.kind == kind]

    @property
    def total_register_bits(self) -> int:
        return sum(r.width * max(1, r.lifetime) for r in self.registers)

    @property
    def total_mux_inputs(self) -> int:
        return sum(fu.mux_inputs for fu in self.functional_units)


class Binder:
    """Binds one scheduled loop (or straight-line region)."""

    def __init__(self, schedule: LoopSchedule) -> None:
        self.schedule = schedule
        self.graph = schedule.graph

    def bind(self) -> BindingResult:
        result = BindingResult()
        result.functional_units = self._bind_functional_units()
        result.registers = self._bind_registers()
        return result

    # -- functional units ------------------------------------------------------------
    def _bind_functional_units(self) -> List[FunctionalUnit]:
        """Greedy left-edge sharing: ops in different (modulo) slots share a unit."""
        units: List[FunctionalUnit] = []
        ii = self.schedule.initiation_interval
        by_kind: Dict[str, List[DFGNode]] = {}
        for node in self.graph.nodes:
            if node.kind in SHARED_FU_KINDS:
                by_kind.setdefault(node.kind, []).append(node)
        for kind, nodes in by_kind.items():
            kind_units: List[Tuple[FunctionalUnit, set]] = []
            for node in sorted(nodes, key=lambda n: self.schedule.start_cycle[n.index]):
                slot = self.schedule.start_cycle[node.index] % max(ii, 1)
                occupied_slots = set(
                    range(slot, slot + max(node.latency, 1))
                )
                placed = False
                for unit, busy in kind_units:
                    if not (busy & occupied_slots):
                        unit.operations.append(node.index)
                        busy |= occupied_slots
                        placed = True
                        break
                if not placed:
                    unit = FunctionalUnit(kind, len(kind_units))
                    unit.operations.append(node.index)
                    kind_units.append((unit, set(occupied_slots)))
            units.extend(unit for unit, _ in kind_units)
        return units

    # -- registers -----------------------------------------------------------------------
    def _bind_registers(self) -> List[RegisterAllocation]:
        """One register copy per cycle boundary a value stays live across."""
        registers: List[RegisterAllocation] = []
        for node in self.graph.nodes:
            if node.result is None:
                continue
            ready = self.schedule.start_cycle[node.index] + node.latency
            last_use = ready
            loop_carried = False
            for succ, distance in self.graph.successors(node.index):
                if distance == 0:
                    last_use = max(last_use, self.schedule.start_cycle[succ])
                else:
                    loop_carried = True
            lifetime = last_use - ready
            if node.latency > 0:
                # Pipelined units register their own output once.
                lifetime = max(lifetime, 1)
            if loop_carried:
                # A value consumed by the next iteration lives in a register
                # across the initiation interval (e.g. an accumulator).
                lifetime = max(lifetime, 1)
            if lifetime > 0:
                registers.append(RegisterAllocation(node.result, node.width, lifetime))
        return registers


def bind_loop(schedule: LoopSchedule) -> BindingResult:
    """Convenience wrapper around :class:`Binder`."""
    return Binder(schedule).bind()
