"""The baseline HLS compiler driver (the reproduction's "Vivado HLS").

The driver chains the phases a commercial HLS tool runs — front-end
validation, dependence analysis, design-space exploration, scheduling,
binding and RTL generation — and reports per-phase timings.  It emits the
same Verilog AST as the HIR compiler so the evaluation can charge both with
one resource model, and its wall-clock compile time is the "Vivado HLS"
column of Table 6.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hls.binding import bind_loop
from repro.hls.dse import LoopExploration, collect_innermost_loops, explore_loop
from repro.hls.options import HLSOptions
from repro.hls.rtl import LoopRTLInfo, RTLGenerator
from repro.hls.scheduling import schedule_loop
from repro.hls.swir import ARRAY, For, Function, Load, Program, Statement, Store
from repro.verilog.ast import Design


@dataclass
class LoopReport:
    """What the tool reports for one loop (like an HLS synthesis report)."""

    name: str
    initiation_interval: int
    iteration_latency: int
    trip_count: int
    pipelined: bool
    candidates_evaluated: int

    @property
    def total_latency(self) -> int:
        if self.trip_count == 0:
            return 0
        if self.pipelined:
            return (self.trip_count - 1) * self.initiation_interval + self.iteration_latency
        return self.trip_count * self.iteration_latency


@dataclass
class HLSReport:
    function: str
    loops: List[LoopReport] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    dse_evaluations: int = 0
    #: Design points skipped via the DSE cost lower bound.
    dse_pruned: int = 0
    #: Design points answered by the scheduling memo cache.
    dse_memo_hits: int = 0
    #: Design points that actually ran the scheduler.
    dse_scheduled: int = 0
    scheduled_operations: int = 0
    bound_registers_bits: int = 0
    rtl_lines: int = 0
    estimated_resources: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


@dataclass
class HLSResult:
    design: Design
    report: HLSReport
    seconds: float


class HLSCompiler:
    """Compile a software-IR program the way an HLS tool would."""

    def __init__(self, dse_enabled: bool = True,
                 options: Optional[HLSOptions] = None) -> None:
        self.dse_enabled = dse_enabled
        self.options = options if options is not None else HLSOptions()

    # -- public API ------------------------------------------------------------
    def compile(self, program: Program, function_name: Optional[str] = None) -> HLSResult:
        total_start = time.perf_counter()
        function = (program.function(function_name) if function_name
                    else program.functions[-1])
        report = HLSReport(function.name)

        work = self._timed(report, "frontend", lambda: copy.deepcopy(function))
        self._timed(report, "dependence-analysis", lambda: self._analyse(work))
        explorations = self._timed(report, "design-space-exploration",
                                   lambda: self._explore(work))
        loop_infos = self._timed(report, "scheduling-and-binding",
                                 lambda: self._schedule_and_bind(work, explorations,
                                                                 report))
        design = self._timed(report, "rtl-generation",
                             lambda: self._generate_rtl(work, loop_infos))
        self._timed(report, "rtl-elaboration",
                    lambda: self._elaborate(design, report))

        seconds = time.perf_counter() - total_start
        return HLSResult(design, report, seconds)

    # -- phases -----------------------------------------------------------------------
    @staticmethod
    def _timed(report: HLSReport, phase: str, thunk):
        start = time.perf_counter()
        result = thunk()
        report.phase_seconds[phase] = time.perf_counter() - start
        return result

    def _analyse(self, function: Function) -> Dict[str, int]:
        """Whole-function memory access census (feeds interface synthesis)."""
        census: Dict[str, int] = {}

        def visit(statements: List[Statement]) -> None:
            for statement in statements:
                if isinstance(statement, (Load, Store)):
                    census[statement.array] = census.get(statement.array, 0) + 1
                elif isinstance(statement, For):
                    visit(statement.body)

        visit(function.body)
        for param in function.params:
            if param.kind == ARRAY and param.name not in census:
                census[param.name] = 0
        return census

    @staticmethod
    def _array_ports(function: Function) -> Dict[str, int]:
        """Ports per array, as granted by array_partition pragmas."""
        ports: Dict[str, int] = {}
        for param in function.params:
            if param.kind == ARRAY:
                ports[param.name] = max(1, param.partition_factor)
        for local in function.locals:
            ports[local.name] = max(1, local.partition_factor)
        return ports

    def _explore(self, function: Function) -> List[LoopExploration]:
        loops = collect_innermost_loops(function.body)
        ports = self._array_ports(function)
        explorations: List[LoopExploration] = []
        for loop, _depth in loops:
            if self.dse_enabled:
                explorations.append(explore_loop(loop, array_ports=ports,
                                                 options=self.options))
            else:
                schedule = schedule_loop(loop.body, pipeline=loop.pragmas.pipeline,
                                         requested_ii=loop.pragmas.initiation_interval,
                                         array_ports=ports)
                exploration = LoopExploration(loop)
                exploration.chosen = None
                exploration.candidates = []
                explorations.append(exploration)
        return explorations

    def _schedule_and_bind(self, function: Function,
                           explorations: List[LoopExploration],
                           report: HLSReport) -> List[LoopRTLInfo]:
        loop_infos: List[LoopRTLInfo] = []
        loops = collect_innermost_loops(function.body)
        ports = self._array_ports(function)
        for (loop, depth), exploration in zip(loops, explorations):
            report.dse_pruned += exploration.pruned
            report.dse_memo_hits += exploration.memo_hits
            report.dse_scheduled += exploration.scheduled
            if exploration.chosen is not None:
                schedule = exploration.chosen.schedule
                evaluated = exploration.evaluations
            else:
                schedule = schedule_loop(loop.body, pipeline=loop.pragmas.pipeline,
                                         requested_ii=loop.pragmas.initiation_interval,
                                         array_ports=ports)
                evaluated = schedule.attempts
            binding = bind_loop(schedule)
            loop_infos.append(LoopRTLInfo(loop, schedule, binding, depth))
            report.loops.append(
                LoopReport(
                    name=loop.var,
                    initiation_interval=schedule.initiation_interval,
                    iteration_latency=schedule.latency,
                    trip_count=loop.trip_count,
                    pipelined=schedule.pipelined,
                    candidates_evaluated=evaluated,
                )
            )
            report.dse_evaluations += evaluated
            report.scheduled_operations += len(schedule.graph.nodes)
            report.bound_registers_bits += binding.total_register_bits
        if not loop_infos:
            # Straight-line function: schedule the whole body as one region.
            schedule = schedule_loop(function.body, pipeline=False)
            binding = bind_loop(schedule)
            synthetic = For("body", 0, 1, 1, list(function.body))
            loop_infos.append(LoopRTLInfo(synthetic, schedule, binding, 0))
            report.scheduled_operations += len(schedule.graph.nodes)
        return loop_infos

    def _generate_rtl(self, function: Function,
                      loop_infos: List[LoopRTLInfo]) -> Design:
        module = RTLGenerator(function, loop_infos).generate()
        design = Design(top=module.name)
        design.add(module)
        return design

    @staticmethod
    def _elaborate(design: Design, report: HLSReport) -> None:
        """Write out the RTL text and the utilization estimate.

        Commercial HLS tools spend a noticeable part of every run emitting the
        generated RTL and the synthesis/utilization reports; both are real
        work proportional to the size of the generated design.
        """
        from repro.resources.model import estimate_resources
        from repro.verilog.emitter import emit_design

        text = emit_design(design)
        estimate = estimate_resources(design)
        report.rtl_lines = text.count("\n")
        report.estimated_resources = estimate.as_dict()


def compile_program(program: Program, function_name: Optional[str] = None,
                    dse_enabled: bool = True,
                    options: Optional[HLSOptions] = None) -> HLSResult:
    """Convenience wrapper around :class:`HLSCompiler`."""
    return HLSCompiler(dse_enabled=dse_enabled,
                       options=options).compile(program, function_name)
