"""Design-space exploration (DSE) for the baseline HLS compiler.

Commercial HLS tools spend most of their compile time evaluating candidate
schedules: different initiation intervals, unroll factors and binding options
are scheduled and costed before the directive-selected (or best) one is kept.
This module reproduces that behaviour with real work — every surviving
candidate is actually scheduled and costed — which is what makes the
baseline's compile time orders of magnitude larger than HIR code generation
(Table 6).

Fast path (controlled by :class:`~repro.hls.options.HLSOptions`; all three
mechanisms preserve the chosen schedule and emitted Verilog bit for bit):

* **Memoization.**  Scheduling + binding is a pure function of the design
  point, so results are cached on a canonical loop signature::

      (DFG hash, pipelined, requested II, relevant array ports)

  where the DFG hash is :func:`repro.hls.scheduling.graph_signature` — a
  content digest of the unrolled body's dataflow graph (the unroll factor is
  therefore captured by the hash) — and "relevant" ports are those of arrays
  the graph actually touches.  Identical design points across port
  configurations, loops and kernels schedule once; the cache is a bounded
  LRU (``REPRO_DSE_MEMO_SIZE``, default 512 entries).

* **Pruning.**  Before scheduling a candidate we compute a true lower bound
  on its cost: the resource-free ASAP latency of its DFG times its requested
  II (for non-pipelined candidates, times the ASAP latency itself, since the
  sequential II equals the latency).  Because list scheduling can only
  *delay* operations relative to ASAP, and the area factor of
  :attr:`Candidate.cost` is >= 1, the real cost is >= this bound.  A
  candidate whose bound strictly exceeds the incumbent best can therefore
  never be selected — neither by lowest cost nor by the directive rule
  (which minimises (II, cost), and the bound's II component never exceeds
  the achieved II) — and is skipped without scheduling.

* **Parallelism.**  Surviving candidates are evaluated concurrently with
  ``concurrent.futures`` (``HLSOptions(jobs=...)`` / ``REPRO_DSE_JOBS``).
  The reduction is deterministic: results are collected in candidate
  enumeration order, so ties resolve exactly as in the serial sweep.
"""

from __future__ import annotations

import atexit
import os
from collections import OrderedDict
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hls.binding import bind_loop
from repro.obs.tracer import TRACER
from repro.resilience.faults import fault_point, bump
from repro.hls.options import HLSOptions
from repro.hls.scheduling import (
    DataflowGraph,
    DFGBuilder,
    LoopSchedule,
    asap_schedule,
    graph_signature,
    recurrence_min_ii,
    resource_min_ii,
    schedule_loop,
)
from repro.hls.swir import For, Statement

#: How many candidate IIs beyond the minimum are explored per pipelined loop.
II_SEARCH_WINDOW = 8
#: Unroll factors explored for loops without an explicit unroll pragma.
UNROLL_CANDIDATES = (1, 2, 4, 8)


@dataclass
class Candidate:
    """One evaluated design point."""

    initiation_interval: int
    unroll_factor: int
    latency: int
    estimated_registers: int
    estimated_memory_ops: int
    schedule: LoopSchedule

    @property
    def cost(self) -> float:
        """A simple area-delay product used to rank candidates."""
        area = self.estimated_registers + 4 * self.estimated_memory_ops
        return float(self.latency * max(1, self.initiation_interval)) * (1 + area / 64.0)


@dataclass
class LoopExploration:
    """Every candidate evaluated for one loop plus the chosen one."""

    loop: For
    candidates: List[Candidate] = field(default_factory=list)
    chosen: Optional[Candidate] = None
    #: Design points skipped because their cost lower bound could not win.
    pruned: int = 0
    #: Design points answered from the scheduling memo cache.
    memo_hits: int = 0
    #: Design points that ran the scheduler (cache misses).
    scheduled: int = 0
    #: Worker failures (crash, timeout, exception) seen during the sweep.
    worker_failures: int = 0
    #: In-process recovery attempts made after worker failures.
    worker_retries: int = 0
    #: The sweep lost its process pool and finished serially in-process.
    degraded: bool = False

    @property
    def evaluations(self) -> int:
        """Design points examined (evaluated or pruned via lower bound)."""
        return len(self.candidates) + self.pruned


# --------------------------------------------------------------------------- #
# Scheduling memo (bounded LRU keyed on the canonical loop signature)
# --------------------------------------------------------------------------- #

MemoKey = Tuple[str, bool, int, Tuple[Tuple[str, int], ...]]
MemoValue = Tuple[LoopSchedule, int, int]  # schedule, registers, memory ops


#: Programmatic capacity override (wins over the environment); installed by
#: :meth:`repro.flow.FlowConfig` for the duration of a Flow-driven compile.
_memo_capacity_override: Optional[int] = None


def set_memo_capacity(size: Optional[int]) -> Optional[int]:
    """Override the schedule-memo capacity (``None`` restores the
    ``REPRO_DSE_MEMO_SIZE`` environment default); returns the previous
    override so callers can restore it."""
    global _memo_capacity_override
    previous = _memo_capacity_override
    _memo_capacity_override = size if size is None else max(0, int(size))
    return previous


def _memo_capacity() -> int:
    if _memo_capacity_override is not None:
        return _memo_capacity_override
    try:
        return max(0, int(os.environ.get("REPRO_DSE_MEMO_SIZE", "512")))
    except ValueError:
        return 512


_SCHEDULE_MEMO: "OrderedDict[MemoKey, MemoValue]" = OrderedDict()

#: Lifetime hit/miss/eviction counters, reported through
#: :mod:`repro.obs.cachestats` as the ``dse.memo`` cache.
_MEMO_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def clear_schedule_memo() -> None:
    """Drop every memoized schedule (tests and benchmarks)."""
    _SCHEDULE_MEMO.clear()


def schedule_memo_size() -> int:
    return len(_SCHEDULE_MEMO)


def _memo_get(key: MemoKey) -> Optional[MemoValue]:
    value = _SCHEDULE_MEMO.get(key)
    if value is not None:
        _SCHEDULE_MEMO.move_to_end(key)
        _MEMO_STATS["hits"] += 1
    else:
        _MEMO_STATS["misses"] += 1
    return value


def _memo_put(key: MemoKey, value: MemoValue) -> None:
    capacity = _memo_capacity()
    if capacity == 0:
        return
    _SCHEDULE_MEMO[key] = value
    _SCHEDULE_MEMO.move_to_end(key)
    while len(_SCHEDULE_MEMO) > capacity:
        _SCHEDULE_MEMO.popitem(last=False)
        _MEMO_STATS["evictions"] += 1


def _memo_stats():
    from repro.obs.cachestats import CacheStats
    return CacheStats(name="dse.memo", capacity=_memo_capacity(),
                      size=len(_SCHEDULE_MEMO), hits=_MEMO_STATS["hits"],
                      misses=_MEMO_STATS["misses"],
                      evictions=_MEMO_STATS["evictions"])


def _register_memo_stats() -> None:
    from repro.obs.cachestats import register_cache
    register_cache("dse.memo", _memo_stats)


_register_memo_stats()


# --------------------------------------------------------------------------- #
# Candidate enumeration and evaluation
# --------------------------------------------------------------------------- #


def _unrolled_body(body: Sequence[Statement], loop_var: str,
                   factor: int, step: int) -> List[Statement]:
    """Replicate the body ``factor`` times (coarse model of partial unrolling).

    Subscript rewriting is not needed for cost estimation: the replicated
    accesses are what create the port pressure the scheduler must resolve.
    """
    replicated: List[Statement] = []
    for _ in range(factor):
        replicated.extend(body)
    return replicated


@dataclass
class _Spec:
    """One design point to evaluate, in seed enumeration order."""

    order: int
    unroll: int
    requested_ii: int          # 0 = sequential sentinel
    pipelined: bool
    ports: Dict[str, int]
    body: List[Statement]
    #: None when graph sharing is disabled (seed-faithful mode): the
    #: scheduler then rebuilds the graph per design point, as the seed did.
    graph: Optional[DataflowGraph]
    digest: str
    lb_latency: int
    #: Shared per-(unroll, ports) II attempt cache; see schedule_loop.
    attempt_cache: Optional[Dict[int, object]] = None

    @property
    def lb_cost(self) -> float:
        """True lower bound on the candidate's area-delay cost."""
        lb_ii = self.requested_ii if self.pipelined else self.lb_latency
        return float(self.lb_latency * max(1, lb_ii))

    def memo_key(self) -> MemoKey:
        assert self.graph is not None, "memoization requires shared graphs"
        arrays = {node.array for node in self.graph.nodes if node.array}
        ports = tuple(sorted((array, self.ports.get(array, 1))
                             for array in arrays))
        return (self.digest, self.pipelined, self.requested_ii, ports)


def _asap_latency(graph: DataflowGraph) -> int:
    start = asap_schedule(graph)
    return max((start[n.index] + max(n.latency, 1) for n in graph.nodes),
               default=1)


def _evaluate_point(body: List[Statement], pipelined: bool, requested_ii: int,
                    ports: Dict[str, int],
                    graph: Optional[DataflowGraph],
                    attempt_cache: Optional[Dict[int, object]] = None
                    ) -> MemoValue:
    """Schedule + bind one design point (runs in worker threads/processes)."""
    fault_point("dse.candidate")
    schedule = schedule_loop(body, pipeline=pipelined,
                             requested_ii=requested_ii if pipelined else None,
                             array_ports=ports, graph=graph,
                             attempt_cache=attempt_cache)
    binding = bind_loop(schedule)
    registers = binding.total_register_bits // 32 + 1
    memory_ops = sum(
        1 for node in schedule.graph.nodes if node.kind in ("load", "store")
    )
    return schedule, registers, memory_ops


def _evaluate_point_slim(body: List[Statement], pipelined: bool,
                         requested_ii: int, ports: Dict[str, int],
                         legacy_scans: bool = False) -> tuple:
    """Process-pool worker: rebuild the (deterministic) graph locally and
    return only the schedule's scalars, not the graph — the parent already
    holds an identical graph, and pickling a full LoopSchedule back through
    the pipe costs more than the scheduling itself on small candidates.

    ``legacy_scans`` carries the parent's :data:`scheduling.LEGACY_SCANS`
    across the process boundary: cached worker processes fork once, so the
    parent's later toggles would otherwise never reach them (in either
    direction).  Workers run one task at a time, so scoping the global
    around the call is safe.
    """
    import repro.hls.scheduling as scheduling_module

    saved = scheduling_module.LEGACY_SCANS
    scheduling_module.LEGACY_SCANS = legacy_scans
    try:
        schedule, registers, memory_ops = _evaluate_point(
            body, pipelined, requested_ii, ports, graph=None)
    finally:
        scheduling_module.LEGACY_SCANS = saved
    return (schedule.start_cycle, schedule.latency,
            schedule.initiation_interval, schedule.pipelined,
            schedule.attempts, registers, memory_ops)


def _inflate_slim(spec: "_Spec", slim: tuple) -> MemoValue:
    start, latency, ii, pipelined, attempts, registers, memory_ops = slim
    graph = spec.graph if spec.graph is not None else DFGBuilder().build(spec.body)
    schedule = LoopSchedule(graph, start, latency, ii, pipelined, attempts)
    return schedule, registers, memory_ops


def _evaluate_worker(fork, body, pipelined, requested_ii, ports, graph,
                     attempt_cache, order, unroll) -> MemoValue:
    """Thread-pool task: evaluate one design point, recording its span into
    the worker's forked tracer (None when tracing is off)."""
    if fork is None:
        return _evaluate_point(body, pipelined, requested_ii, ports, graph,
                               attempt_cache)
    with fork.span("dse.candidate", cat="dse", order=order, unroll=unroll,
                   ii=requested_ii):
        return _evaluate_point(body, pipelined, requested_ii, ports, graph,
                               attempt_cache)


def _make_candidate(spec: _Spec, value: MemoValue) -> Candidate:
    schedule, registers, memory_ops = value
    return Candidate(schedule.initiation_interval, spec.unroll,
                     schedule.latency, registers, memory_ops, schedule)


def _enumerate_specs(loop: For, array_ports: Optional[Dict[str, int]],
                     options: Optional[HLSOptions] = None) -> List[_Spec]:
    """Candidate design points in exactly the seed compiler's sweep order."""
    options = options if options is not None else HLSOptions()
    pragmas = loop.pragmas
    if pragmas.unroll_factor > 1:
        unroll_options: Tuple[int, ...] = (pragmas.unroll_factor,)
    elif pragmas.pipeline:
        unroll_options = (1,)
    else:
        unroll_options = UNROLL_CANDIDATES

    specs: List[_Spec] = []
    port_configs = (1, 2, 4)  # single-port, dual-port, 2x-banked dual-port
    for unroll in unroll_options:
        shared_body: Optional[List[Statement]] = None
        shared_graph: Optional[DataflowGraph] = None
        digest = ""
        lb_latency = 0
        if options.reuse_graphs:
            shared_body = _unrolled_body(loop.body, loop.var, unroll, loop.step)
            shared_graph = DFGBuilder().build(shared_body)
            if options.memoize:
                digest = graph_signature(shared_graph)
            if options.prune:
                lb_latency = _asap_latency(shared_graph)
        for port_scale in port_configs:
            scaled_ports = {name: ports * port_scale
                            for name, ports in (array_ports or {}).items()}
            if options.reuse_graphs:
                body, graph = shared_body, shared_graph
                min_ii_graph = shared_graph
            else:
                # Seed-faithful: rebuild the body and graph per port config
                # (and let schedule_loop rebuild again per design point).
                body = _unrolled_body(loop.body, loop.var, unroll, loop.step)
                min_ii_graph = DFGBuilder().build(body)
                graph = None
            min_ii = max(resource_min_ii(min_ii_graph, scaled_ports),
                         recurrence_min_ii(min_ii_graph))
            if pragmas.pipeline:
                requested = pragmas.initiation_interval or min_ii
                ii_candidates = range(max(min_ii, requested),
                                      max(min_ii, requested) + II_SEARCH_WINDOW)
            else:
                ii_candidates = [0]  # sentinel: sequential schedule
            attempt_cache: Dict[int, object] = {}
            for ii in ii_candidates:
                pipelined = pragmas.pipeline and ii > 0
                specs.append(_Spec(len(specs), unroll, ii, pipelined,
                                   scaled_ports, body, graph, digest,
                                   lb_latency, attempt_cache))
    return specs


# --------------------------------------------------------------------------- #
# Incumbent tracking and pruning
# --------------------------------------------------------------------------- #


class _Incumbent:
    """Tracks the best evaluated candidate under the selection rule in use.

    ``directive`` mode mirrors :func:`_select`'s pragma branch (minimise
    (II, cost)); otherwise candidates compete on cost alone.  ``can_prune``
    is deliberately *strict*: a candidate is only skipped when its lower
    bound makes winning impossible, including tie-breaks, so pruning never
    changes which candidate ``_select`` returns.
    """

    def __init__(self, directive: bool) -> None:
        self.directive = directive
        self.best_cost: Optional[float] = None
        self.best_ii: Optional[int] = None

    def observe(self, candidate: Candidate) -> None:
        cost = candidate.cost
        ii = candidate.initiation_interval
        if self.best_cost is None:
            self.best_cost, self.best_ii = cost, ii
            return
        if self.directive:
            if (ii, cost) < (self.best_ii, self.best_cost):
                self.best_cost, self.best_ii = cost, ii
        elif cost < self.best_cost:
            self.best_cost, self.best_ii = cost, ii

    def can_prune(self, spec: _Spec) -> bool:
        if self.best_cost is None:
            return False
        if self.directive:
            # The achieved II is >= the requested II, so comparing the
            # requested II against the incumbent's achieved II is a bound.
            if spec.requested_ii > self.best_ii:
                return True
            if spec.requested_ii == self.best_ii:
                return spec.lb_cost > self.best_cost
            return False
        return spec.lb_cost > self.best_cost


def _evaluate_spec(spec: _Spec, exploration: LoopExploration,
                   memoize: bool) -> Candidate:
    memoize = memoize and spec.graph is not None
    key = spec.memo_key() if memoize else None
    value = _memo_get(key) if memoize else None
    if value is not None:
        exploration.memo_hits += 1
    else:
        with TRACER.span("dse.candidate", cat="dse", order=spec.order,
                         unroll=spec.unroll, ii=spec.requested_ii):
            value = _evaluate_point(spec.body, spec.pipelined,
                                    spec.requested_ii, spec.ports, spec.graph,
                                    spec.attempt_cache if memoize else None)
        exploration.scheduled += 1
        if memoize:
            _memo_put(key, value)
    return _make_candidate(spec, value)


def explore_loop(loop: For,
                 array_ports: Optional[Dict[str, int]] = None,
                 options: Optional[HLSOptions] = None) -> LoopExploration:
    """Schedule, bind and cost every candidate design point for one loop."""
    options = options if options is not None else HLSOptions()
    exploration = LoopExploration(loop)
    pragmas = loop.pragmas
    specs = _enumerate_specs(loop, array_ports, options)
    directive = bool(pragmas.pipeline and pragmas.initiation_interval is not None)
    incumbent = _Incumbent(directive)

    with TRACER.span("dse.explore_loop", cat="dse", var=loop.var,
                     specs=len(specs), jobs=options.jobs):
        if options.jobs > 1 and len(specs) > 1:
            self_candidates = _explore_parallel(specs, exploration, incumbent,
                                                options)
        else:
            self_candidates = _explore_serial(specs, exploration, incumbent,
                                              options)
    exploration.candidates = self_candidates
    exploration.chosen = _select(exploration.candidates, pragmas)
    TRACER.count("dse.sweeps")
    TRACER.count("dse.pruned", exploration.pruned)
    TRACER.count("dse.memo_hits", exploration.memo_hits)
    TRACER.count("dse.scheduled", exploration.scheduled)
    return exploration


def _explore_serial(specs: List[_Spec], exploration: LoopExploration,
                    incumbent: _Incumbent,
                    options: HLSOptions) -> List[Candidate]:
    candidates: List[Candidate] = []
    for spec in specs:
        if options.prune and incumbent.can_prune(spec):
            exploration.pruned += 1
            continue
        candidate = _evaluate_spec(spec, exploration, options.memoize)
        candidates.append(candidate)
        incumbent.observe(candidate)
    return candidates


def _explore_parallel(specs: List[_Spec], exploration: LoopExploration,
                      incumbent: _Incumbent,
                      options: HLSOptions) -> List[Candidate]:
    """Parallel sweep with a deterministic, order-preserving reduction.

    One seed candidate — the one whose lower bound is most promising under
    the selection rule — is evaluated first to establish the incumbent; the
    surviving specs then run concurrently and are reduced in enumeration
    order, so the candidate list (and every tie-break in :func:`_select`)
    matches the serial sweep.
    """
    if incumbent.directive:
        seed = min(specs, key=lambda s: (s.requested_ii, s.lb_cost, s.order))
    else:
        seed = min(specs, key=lambda s: (s.lb_cost, s.order))
    try:
        seed_candidate = _evaluate_spec(seed, exploration, options.memoize)
    except KeyboardInterrupt:
        raise
    except Exception as error:
        # The incumbent seed gets the same recovery ladder as pool workers.
        value = _recover_inprocess(seed, options, exploration, error)
        exploration.scheduled += 1
        if options.memoize and seed.graph is not None:
            _memo_put(seed.memo_key(), value)
        seed_candidate = _make_candidate(seed, value)
    incumbent.observe(seed_candidate)

    survivors: List[_Spec] = []
    for spec in specs:
        if spec.order == seed.order:
            continue
        if options.prune and incumbent.can_prune(spec):
            exploration.pruned += 1
            continue
        survivors.append(spec)

    results: Dict[int, Candidate] = {seed.order: seed_candidate}
    pending: List[_Spec] = []
    #: Specs whose memo key is already being computed by an earlier pending
    #: spec: they share that result (and count as memo hits, matching the
    #: serial sweep's counters) instead of scheduling the point twice.
    duplicates: Dict[int, int] = {}
    in_flight: Dict[MemoKey, int] = {}
    for spec in survivors:
        if options.memoize and spec.graph is not None:
            key = spec.memo_key()
            value = _memo_get(key)
            if value is not None:
                exploration.memo_hits += 1
                results[spec.order] = _make_candidate(spec, value)
                continue
            first_order = in_flight.get(key)
            if first_order is not None:
                duplicates[spec.order] = first_order
                continue
            in_flight[key] = spec.order
        pending.append(spec)

    if pending:
        executor = _get_executor(options.executor, options.jobs)
        use_processes = options.executor == "process"
        if use_processes:
            from repro.hls.scheduling import LEGACY_SCANS

            futures = [
                executor.submit(_evaluate_point_slim, spec.body,
                                spec.pipelined, spec.requested_ii, spec.ports,
                                LEGACY_SCANS)
                for spec in pending
            ]
        else:
            # Per-candidate spans under jobs>1: each submission records into
            # its own forked tracer, merged back in enumeration order below,
            # so the exported trace is deterministic regardless of worker
            # completion order.  (Process pools skip spans: a child tracer
            # cannot cross the pickle boundary.)
            forks = ([TRACER.fork(f"dse.worker.{spec.order}")
                      for spec in pending] if TRACER.enabled
                     else [None] * len(pending))
            futures = [
                executor.submit(_evaluate_worker, fork, spec.body,
                                spec.pipelined, spec.requested_ii, spec.ports,
                                spec.graph,
                                spec.attempt_cache if options.memoize else None,
                                spec.order, spec.unroll)
                for spec, fork in zip(pending, forks)
            ]
        values: Dict[int, MemoValue] = {}
        try:
            broken = False
            for spec, future in zip(pending, futures):
                value: Optional[MemoValue] = None
                failure: Optional[BaseException] = None
                if broken:
                    # The pool died earlier in this sweep: degrade the rest
                    # to serial in-process evaluation, no pool round-trips.
                    failure = RuntimeError(
                        "process pool broke earlier in this sweep")
                else:
                    try:
                        raw = future.result(timeout=options.candidate_timeout)
                        value = (_inflate_slim(spec, raw) if use_processes
                                 else raw)
                    except KeyboardInterrupt:
                        raise
                    except FutureTimeoutError as error:
                        future.cancel()
                        failure = error
                    except BrokenProcessPool as error:
                        # A SIGKILLed/crashed worker poisons the whole pool:
                        # drop it (the next sweep builds a fresh one) and
                        # finish this sweep serially.
                        broken = True
                        exploration.degraded = True
                        bump("dse.degraded")
                        TRACER.count("dse.degraded")
                        _discard_executor(options.executor, options.jobs)
                        failure = error
                    except Exception as error:
                        failure = error
                if value is None:
                    value = _recover_inprocess(spec, options, exploration,
                                               failure)
                exploration.scheduled += 1
                if options.memoize and spec.graph is not None:
                    _memo_put(spec.memo_key(), value)
                values[spec.order] = value
                results[spec.order] = _make_candidate(spec, value)
        except BaseException:
            # Interrupt or unrecoverable failure mid-sweep: cancel queued
            # candidates and tear the cached pool down so no orphaned
            # workers (or half-submitted futures) outlive the sweep.
            _discard_executor(options.executor, options.jobs, futures)
            raise
        if not use_processes:
            for fork in forks:
                if fork is not None:
                    TRACER.merge(fork)
        by_order = {spec.order: spec for spec in survivors}
        for dup_order, first_order in duplicates.items():
            exploration.memo_hits += 1
            results[dup_order] = _make_candidate(by_order[dup_order],
                                                 values[first_order])

    return [results[order] for order in sorted(results)]


def _recover_inprocess(spec: _Spec, options: HLSOptions,
                       exploration: LoopExploration,
                       failure: Optional[BaseException]) -> MemoValue:
    """The in-process recovery ladder for one failed worker evaluation.

    Re-evaluates the candidate serially (1 + ``candidate_retries`` attempts);
    if every attempt fails too, raises the typed
    :class:`repro.resilience.WorkerError` so callers see one clean error
    instead of a pool-internal traceback.
    """
    from repro.resilience import WorkerError
    exploration.worker_failures += 1
    bump("dse.worker_failures")
    TRACER.count("dse.worker_failures")
    TRACER.event("dse.worker_failure", cat="dse", order=spec.order,
                 error=type(failure).__name__ if failure else "unknown")
    last: Optional[BaseException] = failure
    for _ in range(1 + max(0, options.candidate_retries)):
        exploration.worker_retries += 1
        bump("dse.worker_retries")
        TRACER.count("dse.worker_retries")
        try:
            return _evaluate_point(
                spec.body, spec.pipelined, spec.requested_ii, spec.ports,
                spec.graph,
                spec.attempt_cache if options.memoize else None)
        except KeyboardInterrupt:
            raise
        except Exception as error:
            last = error
    raise WorkerError(
        f"DSE candidate order={spec.order} (unroll={spec.unroll}, "
        f"ii={spec.requested_ii}) failed in a worker and in "
        f"{1 + max(0, options.candidate_retries)} in-process attempt(s); "
        f"last error: {type(last).__name__}: {last}")


# Worker pools are reused across explore_loop calls: a compile sweeps many
# loops, and paying pool start-up per loop would swamp the win.
_EXECUTORS: Dict[Tuple[str, int], Executor] = {}


def _process_worker_init() -> None:
    """Run once in every process-pool worker: re-read ``REPRO_FAULT_PLAN``.

    Fork-started workers inherit the parent's cached fault plan (often
    explicitly suppressed in the parent while a chaos test injects into
    children only); resetting makes each worker consult its own inherited
    environment, with its own per-process hit counters.
    """
    from repro.resilience.faults import _reset_env_plan
    _reset_env_plan()


def _get_executor(kind: str, jobs: int) -> Executor:
    executor = _EXECUTORS.get((kind, jobs))
    if executor is None:
        if kind == "process":
            executor = ProcessPoolExecutor(max_workers=jobs,
                                           initializer=_process_worker_init)
        else:
            executor = ThreadPoolExecutor(max_workers=jobs)
        _EXECUTORS[(kind, jobs)] = executor
    return executor


def _discard_executor(kind: str, jobs: int, futures: Sequence = ()) -> None:
    """Drop (and shut down) one cached pool, cancelling queued work.

    Used on interrupt and on a broken process pool; the next sweep that
    needs a pool builds a fresh one.  Never raises.
    """
    executor = _EXECUTORS.pop((kind, jobs), None)
    for future in futures:
        future.cancel()
    if executor is not None:
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown is best-effort
            pass


def shutdown_executors() -> None:
    """Tear down the cached DSE worker pools (also runs at exit)."""
    for executor in _EXECUTORS.values():
        executor.shutdown(wait=True)
    _EXECUTORS.clear()


atexit.register(shutdown_executors)


def _select(candidates: List[Candidate], pragmas) -> Candidate:
    """Honour explicit directives, otherwise pick the lowest-cost candidate."""
    if pragmas.pipeline and pragmas.initiation_interval is not None:
        matching = [c for c in candidates
                    if c.initiation_interval >= pragmas.initiation_interval]
        if matching:
            return min(matching, key=lambda c: (c.initiation_interval, c.cost))
    return min(candidates, key=lambda c: c.cost)


def collect_innermost_loops(statements: Sequence[Statement],
                            depth: int = 0) -> List[Tuple[For, int]]:
    """Every innermost loop in a statement list with its nesting depth."""
    loops: List[Tuple[For, int]] = []
    for statement in statements:
        if isinstance(statement, For):
            inner = collect_innermost_loops(statement.body, depth + 1)
            if inner:
                loops.extend(inner)
            else:
                loops.append((statement, depth))
    return loops
