"""Design-space exploration (DSE) for the baseline HLS compiler.

Commercial HLS tools spend most of their compile time evaluating candidate
schedules: different initiation intervals, unroll factors and binding options
are scheduled and costed before the directive-selected (or best) one is kept.
This module reproduces that behaviour with real work — every candidate is
actually scheduled and costed — which is what makes the baseline's compile
time orders of magnitude larger than HIR code generation (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hls.binding import bind_loop
from repro.hls.scheduling import (
    DFGBuilder,
    LoopSchedule,
    recurrence_min_ii,
    resource_min_ii,
    schedule_loop,
)
from repro.hls.swir import For, Statement

#: How many candidate IIs beyond the minimum are explored per pipelined loop.
II_SEARCH_WINDOW = 8
#: Unroll factors explored for loops without an explicit unroll pragma.
UNROLL_CANDIDATES = (1, 2, 4, 8)


@dataclass
class Candidate:
    """One evaluated design point."""

    initiation_interval: int
    unroll_factor: int
    latency: int
    estimated_registers: int
    estimated_memory_ops: int
    schedule: LoopSchedule

    @property
    def cost(self) -> float:
        """A simple area-delay product used to rank candidates."""
        area = self.estimated_registers + 4 * self.estimated_memory_ops
        return float(self.latency * max(1, self.initiation_interval)) * (1 + area / 64.0)


@dataclass
class LoopExploration:
    """Every candidate evaluated for one loop plus the chosen one."""

    loop: For
    candidates: List[Candidate] = field(default_factory=list)
    chosen: Optional[Candidate] = None

    @property
    def evaluations(self) -> int:
        return len(self.candidates)


def _unrolled_body(body: Sequence[Statement], loop_var: str,
                   factor: int, step: int) -> List[Statement]:
    """Replicate the body ``factor`` times (coarse model of partial unrolling).

    Subscript rewriting is not needed for cost estimation: the replicated
    accesses are what create the port pressure the scheduler must resolve.
    """
    replicated: List[Statement] = []
    for _ in range(factor):
        replicated.extend(body)
    return replicated


def explore_loop(loop: For,
                 array_ports: Optional[Dict[str, int]] = None) -> LoopExploration:
    """Schedule, bind and cost every candidate design point for one loop."""
    exploration = LoopExploration(loop)
    pragmas = loop.pragmas
    unroll_options: Tuple[int, ...]
    if pragmas.unroll_factor > 1:
        unroll_options = (pragmas.unroll_factor,)
    elif pragmas.pipeline:
        unroll_options = (1,)
    else:
        unroll_options = UNROLL_CANDIDATES

    port_configs = (1, 2, 4)  # single-port, dual-port, 2x-banked dual-port
    for unroll in unroll_options:
      for port_scale in port_configs:
        scaled_ports = {name: ports * port_scale
                        for name, ports in (array_ports or {}).items()}
        body = _unrolled_body(loop.body, loop.var, unroll, loop.step)
        graph = DFGBuilder().build(body)
        min_ii = max(resource_min_ii(graph, scaled_ports), recurrence_min_ii(graph))
        if pragmas.pipeline:
            requested = pragmas.initiation_interval or min_ii
            ii_candidates = range(max(min_ii, requested),
                                  max(min_ii, requested) + II_SEARCH_WINDOW)
        else:
            ii_candidates = [0]  # sentinel: sequential schedule
        for ii in ii_candidates:
            pipelined = pragmas.pipeline and ii > 0
            schedule = schedule_loop(body, pipeline=pipelined,
                                     requested_ii=ii if pipelined else None,
                                     array_ports=scaled_ports)
            # Each candidate is bound as well: register lifetimes and
            # functional-unit sharing feed the area side of the cost ranking,
            # exactly the work a commercial tool repeats per design point.
            binding = bind_loop(schedule)
            registers = binding.total_register_bits // 32 + 1
            memory_ops = sum(
                1 for node in schedule.graph.nodes if node.kind in ("load", "store")
            )
            exploration.candidates.append(
                Candidate(schedule.initiation_interval, unroll, schedule.latency,
                          registers, memory_ops, schedule)
            )

    exploration.chosen = _select(exploration.candidates, pragmas)
    return exploration


def _select(candidates: List[Candidate], pragmas) -> Candidate:
    """Honour explicit directives, otherwise pick the lowest-cost candidate."""
    if pragmas.pipeline and pragmas.initiation_interval is not None:
        matching = [c for c in candidates
                    if c.initiation_interval >= pragmas.initiation_interval]
        if matching:
            return min(matching, key=lambda c: (c.initiation_interval, c.cost))
    return min(candidates, key=lambda c: c.cost)


def collect_innermost_loops(statements: Sequence[Statement],
                            depth: int = 0) -> List[Tuple[For, int]]:
    """Every innermost loop in a statement list with its nesting depth."""
    loops: List[Tuple[For, int]] = []
    for statement in statements:
        if isinstance(statement, For):
            inner = collect_innermost_loops(statement.body, depth + 1)
            if inner:
                loops.extend(inner)
            else:
                loops.append((statement, depth))
    return loops
