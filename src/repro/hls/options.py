"""Compile options for the baseline HLS compiler's fast paths.

The seed compiler scheduled and bound every (II, unroll, ports) design point
serially, from scratch.  :class:`HLSOptions` controls the three fast-path
mechanisms added on top (all on by default, all result-preserving):

* **memoize** — scheduling+binding results are cached on a canonical loop
  signature (DFG content hash, pipeline flag, requested II, port map), so
  identical design points across port configurations, loops and kernels are
  evaluated once.
* **prune** — candidates whose *lower-bound* cost already exceeds the best
  evaluated candidate are skipped without scheduling (see
  :mod:`repro.hls.dse` for the bound and a proof sketch of why the chosen
  schedule cannot change).
* **jobs** — surviving candidates are evaluated concurrently via
  ``concurrent.futures`` with a deterministic, submission-ordered reduction.
  Defaults to ``REPRO_DSE_JOBS`` (1 = serial).  ``executor`` selects
  ``"thread"`` (default; no pickling or fork constraints, safe everywhere)
  or ``"process"``.  Scheduling is pure Python, so *wall-clock* scaling
  with ``jobs`` requires both ``executor="process"`` (or
  ``REPRO_DSE_EXECUTOR=process``) to escape the GIL *and* more than one
  CPU; the thread executor keeps results identical but mainly serves
  correctness-critical determinism testing.

Every combination of options must choose the same schedules and emit the
same Verilog as the seed compiler; ``tests/hls/test_dse_fastpath.py`` and
``benchmarks/bench_compile_time.py`` enforce this bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_DSE_JOBS", "1")))
    except ValueError:
        return 1


def _default_timeout() -> Optional[float]:
    raw = os.environ.get("REPRO_DSE_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


def _default_executor() -> str:
    executor = os.environ.get("REPRO_DSE_EXECUTOR", "thread")
    return executor if executor in ("thread", "process") else "thread"


@dataclass
class HLSOptions:
    """Knobs of the baseline compiler's fast compile path."""

    #: Concurrent candidate evaluations during DSE (1 = serial).
    jobs: int = field(default_factory=_default_jobs)
    #: Reuse scheduling/binding results across identical design points.
    memoize: bool = True
    #: Skip candidates whose lower-bound cost cannot beat the incumbent.
    prune: bool = True
    #: "thread" or "process" pool for parallel candidate evaluation.
    executor: str = field(default_factory=_default_executor)
    #: Build each unroll factor's dataflow graph once and share it across
    #: port configurations and II candidates.  The seed compiler rebuilt the
    #: graph for every single design point; ``seed_equivalent`` turns this
    #: off so the frozen Table 6 baseline keeps the seed's cost profile.
    reuse_graphs: bool = True
    #: Per-candidate wall-clock budget (seconds) during a parallel sweep:
    #: a worker that stalls past it is abandoned and the candidate is
    #: re-evaluated in-process.  ``None`` (default, or unset/invalid
    #: ``REPRO_DSE_TIMEOUT``) waits forever.
    candidate_timeout: Optional[float] = field(default_factory=_default_timeout)
    #: In-process evaluation attempts after a worker failure (crash, timeout
    #: or exception) before the sweep raises a typed
    #: :class:`repro.resilience.WorkerError`.
    candidate_retries: int = 2

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.candidate_timeout is not None and self.candidate_timeout <= 0:
            raise ValueError(
                f"candidate_timeout must be positive, got {self.candidate_timeout}"
            )
        if self.candidate_retries < 0:
            raise ValueError(
                f"candidate_retries must be >= 0, got {self.candidate_retries}"
            )

    @classmethod
    def seed_equivalent(cls) -> "HLSOptions":
        """Options reproducing the seed compiler's behaviour exactly:
        serial, no memoization, no pruning, per-candidate graph rebuilds
        (the benchmark baseline and the frozen Table 6 model)."""
        return cls(jobs=1, memoize=False, prune=False, reuse_graphs=False)
