"""Automatic operation scheduling for the baseline HLS compiler.

This is the piece HIR deliberately does *not* have: given an unscheduled
loop body, decide the clock cycle of every operation.  The implementation
follows the classic HLS flow:

1. flatten the loop body into a dataflow graph of primitive operations,
2. add data and memory dependences (including loop-carried ones),
3. compute ASAP / ALAP bounds,
4. run resource-constrained list scheduling (memory ports are the scarce
   resource; combinational chaining is bounded), and
5. for pipelined loops, search for the smallest feasible initiation interval
   starting from max(ResMII, RecMII) using modulo scheduling.

The point of this module in the reproduction is twofold: it produces the
schedules behind the baseline's RTL (Tables 4 and 5), and it is the dominant
component of the baseline's compile time (Table 6), exactly as automatic
scheduling dominates a real HLS tool's runtime.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.errors import HLSError
from repro.hls.swir import (
    Assign,
    BinExpr,
    Expr,
    For,
    IntConst,
    Load,
    Statement,
    Store,
    Var,
    variables_in,
)

#: Operator latencies in clock cycles (results available N cycles later).
LATENCY = {
    "load": 1,
    "store": 0,
    "mul": 2,
    "add": 0,
    "sub": 0,
    "cmp": 0,
    "logic": 0,
    "shift": 0,
    "copy": 0,
}

#: Maximum number of zero-latency operations chained in one clock cycle.
CHAIN_LIMIT = 2

#: Memory ports available per array (block RAM: one read + one write).
READ_PORTS_PER_ARRAY = 1
WRITE_PORTS_PER_ARRAY = 1

#: When True, successors()/predecessors() answer with the seed's O(E) edge
#: scans instead of cached adjacency lists.  Only compile-time benchmarks
#: flip this (via :func:`legacy_scan_mode`) to measure the fast path against
#: the true seed behaviour; results are identical either way.
LEGACY_SCANS = False


class legacy_scan_mode:
    """Context manager restoring the seed's O(E) dependence scans."""

    def __enter__(self) -> None:
        global LEGACY_SCANS
        self._saved = LEGACY_SCANS
        LEGACY_SCANS = True

    def __exit__(self, *exc) -> None:
        global LEGACY_SCANS
        LEGACY_SCANS = self._saved


@dataclass
class DFGNode:
    """One primitive operation in the dataflow graph."""

    index: int
    kind: str                       # load/store/mul/add/sub/cmp/logic/shift/copy
    result: Optional[str]           # temporary or scalar name it defines
    reads: List[str]                # scalar names it reads
    array: Optional[str] = None     # for load/store
    subscripts: Tuple[Expr, ...] = ()
    expr: Optional[Expr] = None
    width: int = 32
    statement_index: int = 0
    #: For binary compute nodes: the textual operands ("#3" for constants,
    #: otherwise the SSA-ish value name), so RTL generation references the
    #: already-computed sub-results instead of re-materialising sub-trees.
    operand_names: Tuple[str, ...] = ()

    @property
    def latency(self) -> int:
        return LATENCY[self.kind]


@dataclass
class DataflowGraph:
    nodes: List[DFGNode] = field(default_factory=list)
    #: Edges as (producer index, consumer index, loop-carried distance).
    edges: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Lazily built adjacency lists.  The seed implementation answered every
    #: successors()/predecessors() query with an O(E) scan, which dominated
    #: DSE compile time (list scheduling asks per node, per candidate).
    _succ: Optional[List[List[Tuple[int, int]]]] = field(
        default=None, repr=False, compare=False)
    _pred: Optional[List[List[Tuple[int, int]]]] = field(
        default=None, repr=False, compare=False)
    _adj_shape: Tuple[int, int] = field(default=(-1, -1), repr=False,
                                        compare=False)

    def _ensure_adjacency(self) -> None:
        shape = (len(self.nodes), len(self.edges))
        if self._succ is None or self._adj_shape != shape:
            succ: List[List[Tuple[int, int]]] = [[] for _ in self.nodes]
            pred: List[List[Tuple[int, int]]] = [[] for _ in self.nodes]
            for src, dst, dist in self.edges:
                succ[src].append((dst, dist))
                pred[dst].append((src, dist))
            self._succ, self._pred, self._adj_shape = succ, pred, shape

    def successors(self, index: int) -> List[Tuple[int, int]]:
        if LEGACY_SCANS:
            return [(dst, dist) for src, dst, dist in self.edges if src == index]
        self._ensure_adjacency()
        return self._succ[index]

    def predecessors(self, index: int) -> List[Tuple[int, int]]:
        if LEGACY_SCANS:
            return [(src, dist) for src, dst, dist in self.edges if dst == index]
        self._ensure_adjacency()
        return self._pred[index]


@dataclass
class LoopSchedule:
    """The result of scheduling one loop body."""

    graph: DataflowGraph
    start_cycle: Dict[int, int]
    latency: int                    # cycles for one iteration
    initiation_interval: int        # II (== latency for non-pipelined loops)
    pipelined: bool
    attempts: int = 1               # how many candidate IIs were evaluated


# --------------------------------------------------------------------------- #
# DFG construction
# --------------------------------------------------------------------------- #

_OP_KIND = {"+": "add", "-": "sub", "*": "mul", "&": "logic", "|": "logic",
            "^": "logic", "<<": "shift", ">>": "shift",
            "<": "cmp", "<=": "cmp", ">": "cmp", ">=": "cmp", "==": "cmp",
            "!=": "cmp"}


class DFGBuilder:
    """Flattens a loop body (or straight-line region) into a dataflow graph."""

    def __init__(self) -> None:
        self.graph = DataflowGraph()
        self._temp_counter = 0
        self._last_def: Dict[str, int] = {}
        self._array_accesses: Dict[str, List[int]] = {}
        #: Reads of scalars not yet defined in the body: if the scalar is
        #: defined later, the read depends on the *previous* iteration's value
        #: (an accumulator recurrence).
        self._pending_reads: List[Tuple[str, int]] = []

    def build(self, statements: Sequence[Statement]) -> DataflowGraph:
        for statement_index, statement in enumerate(statements):
            self._lower_statement(statement, statement_index)
        self._add_memory_dependences()
        self._add_scalar_recurrences()
        return self.graph

    # -- helpers -----------------------------------------------------------------
    def _new_temp(self) -> str:
        self._temp_counter += 1
        return f"_t{self._temp_counter}"

    def _add_node(self, node: DFGNode) -> int:
        node.index = len(self.graph.nodes)
        self.graph.nodes.append(node)
        for read in node.reads:
            producer = self._last_def.get(read)
            if producer is not None:
                self.graph.edges.append((producer, node.index, 0))
            else:
                self._pending_reads.append((read, node.index))
        if node.result is not None:
            self._last_def[node.result] = node.index
        if node.array is not None:
            self._array_accesses.setdefault(node.array, []).append(node.index)
        return node.index

    def _lower_expr(self, expr: Expr, statement_index: int) -> Tuple[str, List[str]]:
        """Lower an expression tree to nodes; returns (value name, reads)."""
        if isinstance(expr, IntConst):
            return f"#{expr.value}", []
        if isinstance(expr, Var):
            return expr.name, [expr.name]
        if isinstance(expr, BinExpr):
            lhs_name, _ = self._lower_expr(expr.lhs, statement_index)
            rhs_name, _ = self._lower_expr(expr.rhs, statement_index)
            temp = self._new_temp()
            reads = [n for n in (lhs_name, rhs_name) if not n.startswith("#")]
            self._add_node(DFGNode(0, _OP_KIND.get(expr.op, "logic"), temp, reads,
                                   expr=expr, statement_index=statement_index,
                                   operand_names=(lhs_name, rhs_name)))
            return temp, reads
        raise HLSError(f"cannot lower expression {expr!r}")

    def _lower_statement(self, statement: Statement, statement_index: int) -> None:
        if isinstance(statement, Assign):
            value, reads = self._lower_expr(statement.expr, statement_index)
            if not isinstance(statement.expr, BinExpr):
                self._add_node(DFGNode(0, "copy", statement.target,
                                       [value] if not value.startswith("#") else [],
                                       statement_index=statement_index))
            else:
                # Rename the last node's result to the assignment target.
                node = self.graph.nodes[-1]
                node.result = statement.target
                self._last_def[statement.target] = node.index
        elif isinstance(statement, Load):
            reads: List[str] = []
            for subscript in statement.indices:
                reads.extend(variables_in(subscript))
            self._add_node(DFGNode(0, "load", statement.target, reads,
                                   array=statement.array,
                                   subscripts=statement.indices,
                                   statement_index=statement_index))
        elif isinstance(statement, Store):
            reads = list(variables_in(statement.value))
            for subscript in statement.indices:
                reads.extend(variables_in(subscript))
            value_name, _ = self._lower_expr(statement.value, statement_index)
            if not value_name.startswith("#") and value_name not in reads:
                reads.append(value_name)
            self._add_node(DFGNode(0, "store", None, reads,
                                   array=statement.array,
                                   subscripts=statement.indices,
                                   expr=statement.value,
                                   statement_index=statement_index))
        elif isinstance(statement, For):
            raise HLSError(
                "nested loops must be handled by the function scheduler, not "
                "the DFG builder"
            )
        else:  # pragma: no cover - defensive
            raise HLSError(f"cannot schedule statement {statement!r}")

    def _add_memory_dependences(self) -> None:
        """Add RAW/WAR/WAW edges between accesses to the same array.

        Subscript pairs that are syntactically identical are given distance 0
        (same-iteration dependence); anything else is conservatively treated
        as a loop-carried dependence of distance 1, which is what forces the
        II above 1 for kernels with read-modify-write recurrences (histogram).
        """
        for accesses in self._array_accesses.values():
            for earlier, later in itertools.combinations(accesses, 2):
                first = self.graph.nodes[earlier]
                second = self.graph.nodes[later]
                if first.kind == "load" and second.kind == "load":
                    continue
                if _same_subscripts(first, second):
                    # Same-iteration dependence in program order.
                    self.graph.edges.append((earlier, later, 0))
                    if not _constant_subscripts(first):
                        # Data-dependent addresses (e.g. histogram bins) may
                        # alias across iterations: add a conservative
                        # loop-carried dependence as well.
                        self.graph.edges.append((earlier, later, 1))
                else:
                    self.graph.edges.append((earlier, later, 1))

    def _add_scalar_recurrences(self) -> None:
        """Loop-carried scalar dependences (accumulators such as ``acc += x``).

        A read of a scalar that is only defined later in the body consumes the
        value produced by the previous iteration: add a distance-1 edge from
        the producer to the reader.
        """
        for name, reader in self._pending_reads:
            producer = self._last_def.get(name)
            if producer is not None:
                self.graph.edges.append((producer, reader, 1))


def graph_signature(graph: DataflowGraph) -> str:
    """A canonical content digest of a dataflow graph.

    Two graphs with equal signatures are structurally identical — same node
    kinds, value names, widths, array accesses, subscript/value expressions
    and dependence edges — so a schedule (and binding) computed for one is
    valid, bit for bit, for the other.  This is the "DFG hash" component of
    the DSE memoization key (:mod:`repro.hls.dse`).
    """
    parts = []
    for node in graph.nodes:
        parts.append((
            node.kind, node.result, tuple(node.reads), node.array,
            tuple(repr(s) for s in node.subscripts), repr(node.expr),
            node.width, node.statement_index, tuple(node.operand_names),
        ))
    payload = repr((parts, graph.edges)).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _same_subscripts(a: DFGNode, b: DFGNode) -> bool:
    return tuple(map(str, a.subscripts)) == tuple(map(str, b.subscripts))


def _constant_subscripts(node: DFGNode) -> bool:
    return all(isinstance(subscript, IntConst) for subscript in node.subscripts)


# --------------------------------------------------------------------------- #
# ASAP / ALAP and list scheduling
# --------------------------------------------------------------------------- #


def asap_schedule(graph: DataflowGraph) -> Dict[int, int]:
    """Earliest start cycle of every node ignoring resource limits."""
    start: Dict[int, int] = {}
    for node in graph.nodes:
        earliest = 0
        for pred, distance in graph.predecessors(node.index):
            if distance == 0:
                earliest = max(earliest,
                               start[pred] + graph.nodes[pred].latency)
        start[node.index] = earliest
    return start


def alap_schedule(graph: DataflowGraph, horizon: int) -> Dict[int, int]:
    """Latest start cycle of every node for a given overall latency."""
    start: Dict[int, int] = {}
    for node in reversed(graph.nodes):
        latest = horizon
        for succ, distance in graph.successors(node.index):
            if distance == 0:
                latest = min(latest, start[succ] - node.latency)
        start[node.index] = max(0, latest)
    return start


@dataclass
class _ResourceTable:
    """Tracks memory-port usage per cycle (modulo II when pipelining)."""

    modulo: Optional[int] = None
    reads: Dict[Tuple[str, int], int] = field(default_factory=dict)
    writes: Dict[Tuple[str, int], int] = field(default_factory=dict)
    chain: Dict[int, int] = field(default_factory=dict)
    #: Ports per array (from array_partition pragmas); default one per kind.
    array_ports: Dict[str, int] = field(default_factory=dict)

    def _slot(self, cycle: int) -> int:
        return cycle % self.modulo if self.modulo else cycle

    def _ports(self, array: str, default: int) -> int:
        return max(default, self.array_ports.get(array, default))

    def can_place(self, node: DFGNode, cycle: int) -> bool:
        slot = self._slot(cycle)
        if node.kind == "load":
            limit = self._ports(node.array or "", READ_PORTS_PER_ARRAY)
            return self.reads.get((node.array or "", slot), 0) < limit
        if node.kind == "store":
            limit = self._ports(node.array or "", WRITE_PORTS_PER_ARRAY)
            return self.writes.get((node.array or "", slot), 0) < limit
        if node.latency == 0:
            return self.chain.get(slot, 0) < CHAIN_LIMIT * 4
        return True

    def place(self, node: DFGNode, cycle: int) -> None:
        slot = self._slot(cycle)
        if node.kind == "load":
            key = (node.array or "", slot)
            self.reads[key] = self.reads.get(key, 0) + 1
        elif node.kind == "store":
            key = (node.array or "", slot)
            self.writes[key] = self.writes.get(key, 0) + 1
        elif node.latency == 0:
            self.chain[slot] = self.chain.get(slot, 0) + 1


def list_schedule(graph: DataflowGraph,
                  modulo: Optional[int] = None,
                  array_ports: Optional[Dict[str, int]] = None) -> Optional[Dict[int, int]]:
    """Resource-constrained list scheduling; None if infeasible at this II."""
    asap = asap_schedule(graph)
    horizon = max((asap[n.index] + n.latency for n in graph.nodes), default=0)
    alap = alap_schedule(graph, horizon)
    priority = sorted(graph.nodes, key=lambda n: (alap[n.index], n.index))
    table = _ResourceTable(modulo=modulo, array_ports=dict(array_ports or {}))
    start: Dict[int, int] = {}
    for node in priority:
        earliest = 0
        for pred, distance in graph.predecessors(node.index):
            if pred not in start:
                if distance == 0:
                    # Predecessor not scheduled yet (priority inversion):
                    # fall back to its ASAP estimate.
                    earliest = max(earliest, asap[pred] + graph.nodes[pred].latency)
                continue
            if distance == 0:
                earliest = max(earliest, start[pred] + graph.nodes[pred].latency)
            elif modulo is not None:
                # Loop-carried dependence: must finish before the same point
                # ``distance`` iterations later.
                earliest = max(earliest,
                               start[pred] + graph.nodes[pred].latency
                               - distance * modulo)
        cycle = max(0, earliest)
        placed = False
        limit = cycle + (modulo if modulo else horizon + len(graph.nodes)) + 64
        while cycle <= limit:
            if table.can_place(node, cycle):
                table.place(node, cycle)
                start[node.index] = cycle
                placed = True
                break
            cycle += 1
        if not placed:
            return None
    if modulo is not None and not _modulo_feasible(graph, start, modulo):
        return None
    return start


def _modulo_feasible(graph: DataflowGraph, start: Dict[int, int], ii: int) -> bool:
    """Check every loop-carried dependence under the candidate II."""
    for src, dst, distance in graph.edges:
        if distance == 0:
            continue
        if start[src] + graph.nodes[src].latency > start[dst] + distance * ii:
            return False
    return True


# --------------------------------------------------------------------------- #
# II search
# --------------------------------------------------------------------------- #


def resource_min_ii(graph: DataflowGraph,
                    array_ports: Optional[Dict[str, int]] = None) -> int:
    """ResMII: limited by memory ports per array (partitioning adds ports)."""
    ports = dict(array_ports or {})
    reads: Dict[str, int] = {}
    writes: Dict[str, int] = {}
    for node in graph.nodes:
        if node.kind == "load":
            reads[node.array or ""] = reads.get(node.array or "", 0) + 1
        elif node.kind == "store":
            writes[node.array or ""] = writes.get(node.array or "", 0) + 1
    candidates = [1]
    candidates += [-(-count // max(READ_PORTS_PER_ARRAY, ports.get(array, 1)))
                   for array, count in reads.items()]
    candidates += [-(-count // max(WRITE_PORTS_PER_ARRAY, ports.get(array, 1)))
                   for array, count in writes.items()]
    return max(candidates)


def recurrence_min_ii(graph: DataflowGraph) -> int:
    """RecMII from simple two-node recurrences (load/store on the same array)."""
    rec = 1
    for src, dst, distance in graph.edges:
        if distance <= 0:
            continue
        path_latency = graph.nodes[src].latency + 1
        kinds = {graph.nodes[src].kind, graph.nodes[dst].kind}
        if kinds == {"load", "store"}:
            # A read-modify-write recurrence (e.g. histogram bins): the next
            # iteration's read must wait for this iteration's write to land.
            path_latency = max(path_latency, LATENCY["load"] + 2)
        rec = max(rec, -(-path_latency // distance))
    return rec


def schedule_loop(statements: Sequence[Statement], pipeline: bool,
                  requested_ii: Optional[int] = None,
                  max_ii: int = 64,
                  array_ports: Optional[Dict[str, int]] = None,
                  graph: Optional[DataflowGraph] = None,
                  attempt_cache: Optional[Dict[int, Optional[Dict[int, int]]]]
                  = None) -> LoopSchedule:
    """Schedule one loop body, searching for the best II when pipelining.

    ``graph`` may supply a pre-built dataflow graph of ``statements`` so DSE
    sweeps do not rebuild (and re-analyse) the same graph once per candidate
    II; the builder is deterministic, so passing it is purely a time saver.

    ``attempt_cache`` maps a candidate II to its list-scheduling outcome
    (the start-cycle map, or None when infeasible) for *this* graph and port
    configuration.  A DSE sweep shares one cache across its II window, so
    overlapping internal searches — candidate II ``r`` and ``r+1`` both
    probing ``r+1, r+2, ...`` — run each probe once.  List scheduling is
    deterministic, so cached and fresh outcomes are identical.
    """
    if graph is None:
        graph = DFGBuilder().build(statements)
    attempts = 0
    if pipeline:
        lower = max(resource_min_ii(graph, array_ports), recurrence_min_ii(graph))
        if requested_ii is not None:
            lower = max(lower, requested_ii)
        for ii in range(lower, max_ii + 1):
            attempts += 1
            if attempt_cache is not None and ii in attempt_cache:
                start = attempt_cache[ii]
            else:
                start = list_schedule(graph, modulo=ii, array_ports=array_ports)
                if attempt_cache is not None:
                    attempt_cache[ii] = start
            if start is not None:
                latency = _latency_of(graph, start)
                return LoopSchedule(graph, start, latency, ii, True, attempts)
        raise HLSError(f"no feasible initiation interval up to {max_ii}")
    start = list_schedule(graph, modulo=None, array_ports=array_ports)
    attempts += 1
    if start is None:
        raise HLSError("list scheduling failed for a non-pipelined loop")
    latency = _latency_of(graph, start)
    return LoopSchedule(graph, start, latency, max(latency, 1), False, attempts)


def _latency_of(graph: DataflowGraph, start: Dict[int, int]) -> int:
    return max((start[n.index] + max(n.latency, 1) for n in graph.nodes), default=1)
