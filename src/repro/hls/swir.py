"""The software-level IR consumed by the baseline HLS compiler.

Vivado HLS compiles C/C++: loops and array accesses with *no* scheduling
information; the compiler decides when every operation executes.  This module
is the reproduction's equivalent input language: a small, unscheduled,
C-like IR with loops, array loads/stores, scalar arithmetic and the pragmas
the paper mentions (loop pipelining with a requested initiation interval,
unrolling, array partitioning).

The baseline compiler (:mod:`repro.hls.compiler`) schedules and binds this IR
and emits Verilog through the same AST as the HIR compiler so the evaluation
can apply one resource model to both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Expr:
    """Base class of scalar expressions."""


@dataclass(frozen=True)
class IntConst(Expr):
    value: int
    width: int = 32

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable (loop index, temporary or scalar argument)."""

    name: str
    width: int = 32

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinExpr(Expr):
    """Binary arithmetic / comparison expression."""

    op: str
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


def variables_in(expr: Expr) -> List[str]:
    """Names of the variables an expression reads."""
    if isinstance(expr, Var):
        return [expr.name]
    if isinstance(expr, BinExpr):
        return variables_in(expr.lhs) + variables_in(expr.rhs)
    return []


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #


@dataclass
class Statement:
    """Base class of statements."""


@dataclass
class Assign(Statement):
    """``target = expr`` on scalars."""

    target: str
    expr: Expr
    width: int = 32


@dataclass
class Load(Statement):
    """``target = array[indices]``."""

    target: str
    array: str
    indices: Tuple[Expr, ...]
    width: int = 32


@dataclass
class Store(Statement):
    """``array[indices] = value``."""

    array: str
    indices: Tuple[Expr, ...]
    value: Expr


@dataclass
class Pragmas:
    """Loop-level directives, the analogue of Vivado HLS pragmas."""

    pipeline: bool = False
    initiation_interval: Optional[int] = None
    unroll_factor: int = 1


@dataclass
class For(Statement):
    """A counted loop ``for (var = lb; var < ub; var += step)``.

    ``counter_width`` models manually reduced loop-counter precision in the
    C source (``ap_int<N>`` loop variables); automatic tools keep the default
    32 bits, which is exactly the Table 4 comparison.
    """

    var: str
    lower: int
    upper: int
    step: int
    body: List[Statement] = field(default_factory=list)
    pragmas: Pragmas = field(default_factory=Pragmas)
    counter_width: int = 32

    @property
    def trip_count(self) -> int:
        if self.step <= 0 or self.upper <= self.lower:
            return 0
        return (self.upper - self.lower + self.step - 1) // self.step


# --------------------------------------------------------------------------- #
# Functions and programs
# --------------------------------------------------------------------------- #

ARRAY = "array"
SCALAR = "scalar"


@dataclass
class Param:
    """A top-level function parameter."""

    name: str
    kind: str = ARRAY
    shape: Tuple[int, ...] = ()
    width: int = 32
    #: "in", "out" or "inout"; decides the generated memory interface.
    direction: str = "in"
    #: Cyclic partitioning factor requested by an array_partition pragma.
    partition_factor: int = 1


@dataclass
class LocalArray:
    """A locally declared on-chip buffer."""

    name: str
    shape: Tuple[int, ...]
    width: int = 32
    partition_factor: int = 1


@dataclass
class Function:
    name: str
    params: List[Param] = field(default_factory=list)
    locals: List[LocalArray] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)
    returns: Optional[str] = None

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    def array_shape(self, name: str) -> Tuple[int, ...]:
        for param in self.params:
            if param.name == name and param.kind == ARRAY:
                return param.shape
        for local in self.locals:
            if local.name == name:
                return local.shape
        raise KeyError(f"unknown array {name!r}")


@dataclass
class Program:
    name: str
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)


# --------------------------------------------------------------------------- #
# Convenience builder
# --------------------------------------------------------------------------- #


class SwBuilder:
    """Small helper for constructing software-IR functions in tests/kernels."""

    def __init__(self, name: str) -> None:
        self.program = Program(name)

    def function(self, name: str, params: Sequence[Param],
                 locals_: Sequence[LocalArray] = ()) -> Function:
        function = Function(name, list(params), list(locals_))
        self.program.functions.append(function)
        return function

    @staticmethod
    def for_loop(var: str, lower: int, upper: int, step: int = 1,
                 pipeline: bool = False, ii: Optional[int] = None,
                 unroll: int = 1, counter_width: int = 32) -> For:
        return For(var, lower, upper, step,
                   pragmas=Pragmas(pipeline=pipeline, initiation_interval=ii,
                                   unroll_factor=unroll),
                   counter_width=counter_width)

    @staticmethod
    def load(target: str, array: str, *indices: Union[Expr, int, str]) -> Load:
        return Load(target, array, tuple(_expr(i) for i in indices))

    @staticmethod
    def store(array: str, value: Union[Expr, int, str],
              *indices: Union[Expr, int, str]) -> Store:
        return Store(array, tuple(_expr(i) for i in indices), _expr(value))

    @staticmethod
    def assign(target: str, expr: Union[Expr, int, str]) -> Assign:
        return Assign(target, _expr(expr))

    @staticmethod
    def add(lhs, rhs) -> BinExpr:
        return BinExpr("+", _expr(lhs), _expr(rhs))

    @staticmethod
    def sub(lhs, rhs) -> BinExpr:
        return BinExpr("-", _expr(lhs), _expr(rhs))

    @staticmethod
    def mul(lhs, rhs) -> BinExpr:
        return BinExpr("*", _expr(lhs), _expr(rhs))


def _expr(value: Union[Expr, int, str]) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot convert {value!r} to an expression")
