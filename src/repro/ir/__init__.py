"""MLIR-like IR core: the substrate the HIR dialect is built on.

This package provides SSA values, operations, regions, blocks, attributes,
types, a round-trippable textual format, a structural verifier and a pass
manager.  It substitutes for the MLIR C++ infrastructure the paper builds on
(see DESIGN.md, substitution table).
"""

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    attr,
    int_of,
    ints_of,
)
from repro.ir.analysis import (
    AnalysisManager,
    DefUseInfo,
    LevelizationInfo,
    LoopInfo,
    PRESERVE_ALL,
    register_analysis,
    registered_analyses,
)
from repro.ir.block import Block
from repro.ir.builder import Builder, InsertionPoint
from repro.ir.errors import (
    HLSError,
    IRError,
    LoweringError,
    ParseError,
    ScheduleError,
    SimulationError,
    VerificationError,
)
from repro.ir.location import Location
from repro.ir.module import ModuleOp
from repro.ir.operation import (
    Operation,
    create_operation,
    register_operation,
    registered_operation,
    registered_operations,
)
from repro.ir.pass_manager import Pass, PassManager, PassTiming
from repro.ir.parser import parse_module, register_dialect_type_parser
from repro.ir.printer import print_module, print_op
from repro.ir.region import Region
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns
from repro.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    INDEX,
    NONE,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    NoneType,
    Type,
    i,
)
from repro.ir.values import BlockArgument, OpResult, Use, Value
from repro.ir.verifier import Verifier, collect_errors, verify

__all__ = [
    "AnalysisManager", "DefUseInfo", "LevelizationInfo", "LoopInfo",
    "PRESERVE_ALL", "register_analysis", "registered_analyses",
    "ArrayAttr", "Attribute", "BoolAttr", "FloatAttr", "IntegerAttr",
    "StringAttr", "SymbolRefAttr", "TypeAttr", "attr", "int_of", "ints_of",
    "Block", "Builder", "InsertionPoint",
    "PatternRewriter", "RewritePattern", "apply_patterns",
    "HLSError", "IRError", "LoweringError", "ParseError", "ScheduleError",
    "SimulationError", "VerificationError",
    "Location", "ModuleOp",
    "Operation", "create_operation", "register_operation",
    "registered_operation", "registered_operations",
    "Pass", "PassManager", "PassTiming",
    "parse_module", "register_dialect_type_parser",
    "print_module", "print_op",
    "Region",
    "F32", "F64", "I1", "I8", "I16", "I32", "I64", "INDEX", "NONE",
    "FloatType", "FunctionType", "IndexType", "IntegerType", "NoneType",
    "Type", "i",
    "BlockArgument", "OpResult", "Use", "Value",
    "Verifier", "collect_errors", "verify",
]
