"""Cached module analyses with explicit preserve/invalidate semantics.

Passes repeatedly need the same derived information — who uses a value, how
operations nest under loops, a topological levelization of each function —
and the seed pipeline recomputed it from scratch inside every pass.  The
:class:`AnalysisManager` computes each analysis once per module and caches
the result; after a transformation pass runs, every analysis is invalidated
except those the pass declares it preserves (``Pass.PRESERVES``).

Analyses are registered by name so the manager stays open for dialects:

* ``"def-use"``       — :class:`DefUseInfo`: users of every value.
* ``"levelization"``  — :class:`LevelizationInfo`: per-function pre-order
  position and region-nesting depth of every op.
* ``"loop-info"``     — :class:`LoopInfo`: the loop nest (for / unroll_for)
  of every function, with depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.values import Value


# --------------------------------------------------------------------------- #
# Analysis results
# --------------------------------------------------------------------------- #


@dataclass
class DefUseInfo:
    """Snapshot of the def-use graph: operations using each value."""

    users: Dict[int, List[Operation]] = field(default_factory=dict)
    _values: Dict[int, Value] = field(default_factory=dict)

    def users_of(self, value: Value) -> List[Operation]:
        return self.users.get(id(value), [])


def _compute_def_use(module: Operation) -> DefUseInfo:
    info = DefUseInfo()
    for op in module.walk():
        for operand in op.operands:
            info.users.setdefault(id(operand), []).append(op)
            info._values[id(operand)] = operand
    return info


@dataclass
class LevelizationInfo:
    """Pre-order position and nesting depth of every operation."""

    position: Dict[int, int] = field(default_factory=dict)
    depth: Dict[int, int] = field(default_factory=dict)

    def position_of(self, op: Operation) -> Optional[int]:
        return self.position.get(id(op))

    def depth_of(self, op: Operation) -> Optional[int]:
        return self.depth.get(id(op))


def _compute_levelization(module: Operation) -> LevelizationInfo:
    info = LevelizationInfo()
    counter = 0

    def visit(op: Operation, depth: int) -> None:
        nonlocal counter
        info.position[id(op)] = counter
        info.depth[id(op)] = depth
        counter += 1
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    visit(nested, depth + 1)

    visit(module, 0)
    return info


@dataclass
class LoopNest:
    """One loop (hir.for / hir.unroll_for) with its nesting context."""

    loop: Operation
    depth: int
    children: List["LoopNest"] = field(default_factory=list)


@dataclass
class LoopInfo:
    """The loop forest of every function in the module."""

    roots: List[LoopNest] = field(default_factory=list)
    loops: List[LoopNest] = field(default_factory=list)

    def loops_at_depth(self, depth: int) -> List[LoopNest]:
        return [nest for nest in self.loops if nest.depth == depth]

    @property
    def innermost(self) -> List[LoopNest]:
        return [nest for nest in self.loops if not nest.children]


def _compute_loop_info(module: Operation) -> LoopInfo:
    from repro.hir.ops import ForOp, UnrollForOp  # local: dialect-level

    info = LoopInfo()

    def visit(op: Operation, parent: Optional[LoopNest], depth: int) -> None:
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    if isinstance(nested, (ForOp, UnrollForOp)):
                        nest = LoopNest(nested, depth)
                        info.loops.append(nest)
                        (parent.children if parent else info.roots).append(nest)
                        visit(nested, nest, depth + 1)
                    else:
                        visit(nested, parent, depth)

    visit(module, None, 0)
    return info


# --------------------------------------------------------------------------- #
# Registry and manager
# --------------------------------------------------------------------------- #

_ANALYSES: Dict[str, Callable[[Operation], object]] = {
    "def-use": _compute_def_use,
    "levelization": _compute_levelization,
    "loop-info": _compute_loop_info,
}

#: Sentinel for ``Pass.PRESERVES``: the pass did not change the IR at all.
PRESERVE_ALL = ("*",)


def register_analysis(name: str,
                      compute: Callable[[Operation], object]) -> None:
    """Register a new analysis computable by every :class:`AnalysisManager`."""
    _ANALYSES[name] = compute


def registered_analyses() -> Tuple[str, ...]:
    return tuple(_ANALYSES)


class AnalysisManager:
    """Computes and caches analyses over modules.

    Cache keys include the module's identity so one manager can serve a
    pipeline that touches several modules.  ``hits``/``misses`` feed the
    pass manager's timing report.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int], object] = {}
        self.hits = 0
        self.misses = 0
        #: Cached results actually dropped by ``invalidate*`` calls.
        self.invalidations = 0

    def get(self, name: str, module: Operation) -> object:
        if name not in _ANALYSES:
            raise KeyError(
                f"unknown analysis {name!r}; registered: {sorted(_ANALYSES)}"
            )
        key = (name, id(module))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = _ANALYSES[name](module)
        self._cache[key] = result
        return result

    def cached(self, name: str, module: Operation) -> Optional[object]:
        """The cached result if present; never computes."""
        return self._cache.get((name, id(module)))

    def invalidate(self, *names: str) -> None:
        """Drop specific analyses (every module)."""
        dropped = set(names)
        before = len(self._cache)
        self._cache = {key: value for key, value in self._cache.items()
                       if key[0] not in dropped}
        self.invalidations += before - len(self._cache)

    def invalidate_all_except(self, preserved: Tuple[str, ...]) -> None:
        """Invalidate after a transformation pass ran.

        ``preserved`` lists analyses the pass guarantees are still valid;
        :data:`PRESERVE_ALL` keeps everything (analysis-only passes).
        """
        if preserved == PRESERVE_ALL:
            return
        keep = set(preserved)
        before = len(self._cache)
        self._cache = {key: value for key, value in self._cache.items()
                       if key[0] in keep}
        self.invalidations += before - len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
