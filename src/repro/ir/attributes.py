"""Attributes: compile-time constant metadata attached to operations.

Just like MLIR, attributes are immutable and attached to operations in a
string-keyed dictionary.  The HIR dialect uses them for loop bounds on
``unroll_for``, delays on function signatures, memref packing, etc.

Like types, attributes are interned (hash-consed): constructing an attribute
equal to an existing one returns the canonical instance, so attribute
equality is identity and per-use allocation disappears from the compile path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.ir.interning import HashConsMeta
from repro.ir.types import Type


@dataclass(frozen=True)
class Attribute(metaclass=HashConsMeta):
    """Base class of every attribute."""

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return "<attr>"

    def __copy__(self) -> "Attribute":
        return self

    def __deepcopy__(self, memo) -> "Attribute":
        return self


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    """An integer constant, optionally carrying the type it should have."""

    value: int
    type: Type | None = None

    def __str__(self) -> str:
        if self.type is not None:
            return f"{self.value} : {self.type}"
        return str(self.value)


@dataclass(frozen=True)
class FloatAttr(Attribute):
    #: Not interned: 0.0 and -0.0 compare equal but must print differently,
    #: so hash-consing would make the surviving spelling order-dependent.
    INTERN_EXEMPT = True

    value: float
    type: Type | None = None

    def __str__(self) -> str:
        if self.type is not None:
            return f"{self.value} : {self.type}"
        return str(self.value)


@dataclass(frozen=True)
class BoolAttr(Attribute):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StringAttr(Attribute):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """Reference to a symbol (e.g. the callee of ``hir.call``)."""

    value: str

    def __str__(self) -> str:
        return f"@{self.value}"


@dataclass(frozen=True)
class TypeAttr(Attribute):
    value: Type

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    """A tuple of attributes (used for delay lists, packing lists, ...)."""

    elements: Tuple[Attribute, ...]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> Attribute:
        return self.elements[index]


AttributeValue = Union[int, float, bool, str, Type, Attribute, tuple, list]


def attr(value: AttributeValue) -> Attribute:
    """Wrap a plain Python value into the corresponding attribute.

    Builders use this so call sites can write ``{"depth": 16}`` instead of
    ``{"depth": IntegerAttr(16)}``.
    """
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, float):
        return FloatAttr(value)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, Type):
        return TypeAttr(value)
    if isinstance(value, (tuple, list)):
        return ArrayAttr(tuple(attr(v) for v in value))
    raise TypeError(f"cannot convert {value!r} to an attribute")


def int_of(attribute: Attribute) -> int:
    """Extract the integer payload of an attribute, with type checking."""
    if isinstance(attribute, IntegerAttr):
        return attribute.value
    if isinstance(attribute, BoolAttr):
        return int(attribute.value)
    raise TypeError(f"expected an integer attribute, got {attribute!r}")


def ints_of(attribute: Attribute) -> Tuple[int, ...]:
    """Extract a tuple of integers from an array attribute."""
    if isinstance(attribute, ArrayAttr):
        return tuple(int_of(e) for e in attribute.elements)
    raise TypeError(f"expected an array attribute, got {attribute!r}")
