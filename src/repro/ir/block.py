"""Basic blocks.

HIR uses structured control flow (regions with a single block), so blocks
never branch to one another; a block is simply an ordered list of operations
plus its arguments (induction variables, time variables, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.types import Type
from repro.ir.values import BlockArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation
    from repro.ir.region import Region


class Block:
    """An ordered sequence of operations with typed block arguments."""

    def __init__(self) -> None:
        self.arguments: List[BlockArgument] = []
        self.operations: List["Operation"] = []
        self.parent_region: Optional["Region"] = None

    # -- arguments --------------------------------------------------------
    def add_argument(self, type: Type, name_hint: Optional[str] = None) -> BlockArgument:
        arg = BlockArgument(self, len(self.arguments), type, name_hint)
        self.arguments.append(arg)
        return arg

    # -- operation list management ----------------------------------------
    def append(self, operation: "Operation") -> "Operation":
        """Append ``operation`` at the end of the block and claim ownership."""
        operation.parent_block = self
        self.operations.append(operation)
        return operation

    def insert(self, index: int, operation: "Operation") -> "Operation":
        operation.parent_block = self
        self.operations.insert(index, operation)
        return operation

    def insert_before(self, anchor: "Operation", operation: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor), operation)

    def insert_after(self, anchor: "Operation", operation: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor) + 1, operation)

    def remove(self, operation: "Operation") -> None:
        self.operations.remove(operation)
        operation.parent_block = None

    def index_of(self, operation: "Operation") -> int:
        for i, op in enumerate(self.operations):
            if op is operation:
                return i
        raise ValueError("operation is not in this block")

    # -- traversal ----------------------------------------------------------
    def walk(self) -> Iterator["Operation"]:
        """Pre-order walk of every operation nested under this block."""
        for op in list(self.operations):
            yield op
            yield from op.walk_nested()

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent_region is None:
            return None
        return self.parent_region.parent_op

    def __iter__(self) -> Iterator["Operation"]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"<Block with {len(self.arguments)} args, {len(self.operations)} ops>"
