"""IR builder with an insertion point.

The builder mirrors MLIR's ``OpBuilder``: it remembers where the next op goes
and offers ``insert`` plus context-manager helpers for entering nested
regions.  Dialect-specific construction conveniences (``hir.build``) layer on
top of this class.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.ir.block import Block
from repro.ir.location import Location
from repro.ir.operation import Operation


class InsertionPoint:
    """A position inside a block: new operations go before ``anchor``.

    ``anchor is None`` means "append at the end of the block".
    """

    def __init__(self, block: Block, anchor: Optional[Operation] = None) -> None:
        self.block = block
        self.anchor = anchor

    def insert(self, op: Operation) -> Operation:
        if self.anchor is None:
            return self.block.append(op)
        return self.block.insert_before(self.anchor, op)


class Builder:
    """Stateful IR builder."""

    def __init__(self, insertion_point: Optional[InsertionPoint] = None,
                 location: Optional[Location] = None) -> None:
        self._insertion_point = insertion_point
        self.current_location = location or Location.unknown()

    # -- insertion point management -----------------------------------------
    @property
    def insertion_block(self) -> Block:
        if self._insertion_point is None:
            raise RuntimeError("builder has no insertion point")
        return self._insertion_point.block

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._insertion_point = InsertionPoint(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        if op.parent_block is None:
            raise RuntimeError("operation is not attached to a block")
        self._insertion_point = InsertionPoint(op.parent_block, op)

    def set_insertion_point_after(self, op: Operation) -> None:
        block = op.parent_block
        if block is None:
            raise RuntimeError("operation is not attached to a block")
        index = block.index_of(op)
        anchor = block.operations[index + 1] if index + 1 < len(block.operations) else None
        self._insertion_point = InsertionPoint(block, anchor)

    @contextmanager
    def at_end_of(self, block: Block) -> Iterator["Builder"]:
        """Temporarily move the insertion point to the end of ``block``."""
        saved = self._insertion_point
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self._insertion_point = saved

    # -- op insertion -----------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at the current insertion point and return it."""
        if op.location is None or isinstance(op.location, type(Location.unknown())):
            op.location = self.current_location
        if self._insertion_point is None:
            raise RuntimeError("builder has no insertion point")
        return self._insertion_point.insert(op)

    def with_location(self, location: Location) -> "Builder":
        self.current_location = location
        return self
