"""Exception hierarchy for the IR infrastructure and the HIR compiler.

Every error raised by the compiler carries an optional :class:`~repro.ir.location.Location`
so diagnostics can point back at the construct that caused them, mirroring how
MLIR attaches locations to every operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.location import Location


class IRError(Exception):
    """Base class for every error produced by the IR infrastructure."""

    def __init__(self, message: str, location: Optional["Location"] = None) -> None:
        self.message = message
        self.location = location
        super().__init__(self.formatted())

    def formatted(self) -> str:
        """Return the diagnostic text with the location prefix, if any."""
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class VerificationError(IRError):
    """Raised when structural IR verification fails (bad operands, dominance...)."""


class ScheduleError(VerificationError):
    """Raised by the schedule verifier for timing/scheduling mistakes.

    These correspond to the diagnostics shown in Figure 1 (wrong operand
    time) and Figure 2 (pipeline imbalance) of the paper.
    """


class ParseError(IRError):
    """Raised by the textual parser on malformed input."""


class LoweringError(IRError):
    """Raised by the Verilog code generator when a design cannot be lowered."""


class SimulationError(IRError):
    """Raised by the simulators on malformed designs or testbench misuse."""


class HLSError(IRError):
    """Raised by the baseline HLS compiler (scheduling/binding failures)."""
