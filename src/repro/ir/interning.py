"""Hash-consing (interning) support for immutable IR value objects.

Types and attributes are immutable value objects that compare structurally.
The compiler allocates them constantly — every operand check, every attribute
wrap, every ``IntegerType(32)`` in a builder — so the fast compile path
interns them: constructing a type or attribute that already exists returns
the canonical instance.  Equality checks then hit the identity fast path
(``a is b``), dict lookups short-circuit, and allocation churn disappears.

Two caches per class:

* a call-signature cache ``(args, kwargs) -> instance`` for the common case
  where the same literal construction repeats, and
* a canonical map ``instance -> instance`` (keyed by the dataclass's
  structural hash/eq) so different spellings of the same value
  (``IntegerType(32)`` vs ``IntegerType(width=32)``) still unify.

Construction with unhashable arguments falls back to a plain (uninterned)
instance, preserving behaviour for exotic call sites.  Invalid constructions
still raise from ``__post_init__`` before anything is cached.

The caches are process-global and deliberately unbounded: like an MLIR
context's uniqued storage, they grow with the number of *distinct* values
ever constructed, which is bounded by program content (widths, constants,
shapes) — not by the number of compiles, since compilers must never encode
per-run-unique payloads (e.g. ``id()`` values) into attributes.  Long-lived
test harnesses can reset them with :func:`clear_intern_caches`; eviction is
always safe because structural ``__eq__``/``__hash__`` remain the source of
truth and identity is only ever a fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple


class HashConsMeta(type):
    """Metaclass interning instances of immutable (frozen dataclass) classes."""

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        # Per-class caches (never inherited: each class keys on its own args).
        cls._intern_by_args: Dict[Tuple, Any] = {}
        cls._intern_canonical: Dict[Any, Any] = {}
        return cls

    def __call__(cls, *args, **kwargs):
        if cls.__dict__.get("INTERN_EXEMPT", False):
            # Classes whose payloads have equal-but-distinguishable values
            # (floats: 0.0 == -0.0 but they print differently) opt out, so
            # canonicalisation can never swap one spelling for the other.
            return super().__call__(*args, **kwargs)
        by_args = cls._intern_by_args
        try:
            key = (args, tuple(sorted(kwargs.items()))) if kwargs else args
            hit = by_args.get(key)
        except TypeError:
            # Unhashable argument (e.g. a list): construct without interning.
            return super().__call__(*args, **kwargs)
        if hit is not None:
            return hit
        instance = super().__call__(*args, **kwargs)
        try:
            canonical = cls._intern_canonical.setdefault(instance, instance)
        except TypeError:
            return instance
        by_args[key] = canonical
        return canonical


def interned_count(cls: type) -> int:
    """Number of distinct canonical instances interned for ``cls``."""
    return len(getattr(cls, "_intern_canonical", ()))


def clear_intern_caches(cls: type) -> None:
    """Drop the intern caches of ``cls`` (tests only; instances stay valid)."""
    getattr(cls, "_intern_by_args", {}).clear()
    getattr(cls, "_intern_canonical", {}).clear()
