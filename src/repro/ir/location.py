"""Source-location tracking.

The paper uses MLIR's location tracking to emit the HIR source position of
every operation as a comment in the generated Verilog (Section 5.5), which is
how designers map timing failures back to HIR.  We reproduce the same
mechanism: every operation carries a :class:`Location` and the Verilog emitter
prints it next to the hardware it produced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """Base location. ``unknown()`` is used when no better location exists."""

    def __str__(self) -> str:  # pragma: no cover - overridden by subclasses
        return "loc(unknown)"

    @staticmethod
    def unknown() -> "UnknownLocation":
        return UnknownLocation()

    @staticmethod
    def file(filename: str, line: int, column: int = 0) -> "FileLocation":
        return FileLocation(filename, line, column)

    @staticmethod
    def name(name: str) -> "NameLocation":
        return NameLocation(name)


@dataclass(frozen=True)
class UnknownLocation(Location):
    """A location for IR constructed programmatically with no source info."""

    def __str__(self) -> str:
        return "loc(unknown)"


@dataclass(frozen=True)
class FileLocation(Location):
    """A ``file:line:column`` location, as produced by the textual parser."""

    filename: str
    line: int
    column: int = 0

    def __str__(self) -> str:
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"


@dataclass(frozen=True)
class NameLocation(Location):
    """A named location, used by builders (e.g. ``loc("gemm.systolic.pe")``)."""

    identifier: str

    def __str__(self) -> str:
        return f'loc("{self.identifier}")'
