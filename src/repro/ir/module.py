"""The top-level module operation and its symbol table.

A :class:`ModuleOp` holds one region with a single block containing all the
``hir.func`` operations of a design (and, for the HLS baseline, ``sw.func``
operations).  Symbol lookup is by the ``sym_name`` attribute, which is how
``hir.call`` resolves its callee.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.attributes import StringAttr
from repro.ir.errors import VerificationError
from repro.ir.location import Location
from repro.ir.operation import Operation, register_operation


@register_operation
class ModuleOp(Operation):
    """Top-level container of a design."""

    OPERATION_NAME = "builtin.module"

    def __init__(self, name: str = "module", location: Optional[Location] = None) -> None:
        super().__init__(
            attributes={"sym_name": name},
            num_regions=1,
            location=location,
        )
        self.regions[0].add_block()

    @property
    def module_name(self) -> str:
        name_attr = self.get_attr("sym_name")
        return name_attr.value if isinstance(name_attr, StringAttr) else "module"

    # -- symbol table -------------------------------------------------------
    def symbols(self) -> Iterator[Operation]:
        """Iterate over the operations directly nested in the module body."""
        return iter(self.body.operations)

    def lookup(self, symbol: str) -> Optional[Operation]:
        """Find the operation whose ``sym_name`` attribute matches ``symbol``."""
        for op in self.body.operations:
            sym = op.get_attr("sym_name")
            if isinstance(sym, StringAttr) and sym.value == symbol:
                return op
        return None

    def require(self, symbol: str) -> Operation:
        op = self.lookup(symbol)
        if op is None:
            raise VerificationError(f"unknown symbol @{symbol}", self.location)
        return op

    def add(self, op: Operation) -> Operation:
        """Append an operation (typically a function) to the module body."""
        return self.body.append(op)

    def verify_op(self) -> None:
        seen = set()
        for op in self.body.operations:
            sym = op.get_attr("sym_name")
            if isinstance(sym, StringAttr):
                if sym.value in seen:
                    raise VerificationError(
                        f"duplicate symbol @{sym.value} in module", op.location
                    )
                seen.add(sym.value)
