"""The Operation class: the single building block of all IR.

As in MLIR, everything is an operation: functions, loops, arithmetic, memory
accesses.  An operation has operands (SSA values it reads), results (SSA
values it defines), attributes (compile-time constants), regions (nested
bodies) and a source location.

Dialect operations subclass :class:`Operation` and set ``OPERATION_NAME``;
subclasses add typed accessors and a ``verify_op`` hook but never new storage,
so generic passes (printer, CSE, walkers) can treat every op uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Type as PyType

from repro.ir.attributes import Attribute, AttributeValue, attr
from repro.ir.block import Block
from repro.ir.errors import VerificationError
from repro.ir.location import Location
from repro.ir.region import Region
from repro.ir.types import Type
from repro.ir.values import OpResult, Use, Value


class Operation:
    """A generic IR operation."""

    #: Fully qualified name ("dialect.opname"); subclasses override this.
    OPERATION_NAME: str = "builtin.unregistered"

    def __init__(
        self,
        name: Optional[str] = None,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, AttributeValue]] = None,
        num_regions: int = 0,
        location: Optional[Location] = None,
    ) -> None:
        self.name = name or self.OPERATION_NAME
        self.location = location or Location.unknown()
        self.parent_block: Optional[Block] = None
        self._operands: List[Value] = []
        self.attributes: Dict[str, Attribute] = {}
        #: Cached structural signature for CSE; invalidated on mutation.
        self._cse_signature: Optional[tuple] = None
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.regions: List[Region] = [Region(self) for _ in range(num_regions)]

        for operand in operands:
            self.append_operand(operand)
        for key, value in (attributes or {}).items():
            self.attributes[key] = attr(value)

    # -- operand management -------------------------------------------------
    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.name} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(Use(self, index))
        self._cse_signature = None

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(Use(self, index))
        self._cse_signature = None

    def operand(self, index: int) -> Value:
        return self._operands[index]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def replace_uses_of(self, old: Value, new: Value) -> None:
        """Replace every operand equal to ``old`` with ``new``."""
        for i, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(i, new)

    def drop_all_uses(self) -> None:
        """Remove this op's uses of its operands (called before erasing)."""
        for i, operand in enumerate(self._operands):
            operand._remove_use(self, i)
        self._operands = []

    # -- results --------------------------------------------------------------
    @property
    def result(self) -> OpResult:
        """The single result of this operation."""
        if len(self.results) != 1:
            raise ValueError(
                f"{self.name} has {len(self.results)} results, expected exactly 1"
            )
        return self.results[0]

    @property
    def num_results(self) -> int:
        return len(self.results)

    # -- attributes -----------------------------------------------------------
    def get_attr(self, key: str, default: Optional[Attribute] = None) -> Optional[Attribute]:
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value: AttributeValue) -> None:
        self.attributes[key] = attr(value)
        self._cse_signature = None

    def has_attr(self, key: str) -> bool:
        return key in self.attributes

    # -- CSE signature --------------------------------------------------------
    def _invalidate_signature(self) -> None:
        self._cse_signature = None

    def cse_signature(self) -> tuple:
        """Hashable structural signature: two pure ops with equal signatures
        compute the same value.

        Operands are compared by identity (SSA values), attributes and result
        types by their interned objects.  The signature is cached and
        invalidated whenever operands, attributes or result types change, so
        repeated CSE/pipeline runs do not recompute it.
        """
        signature = self._cse_signature
        if signature is None:
            operand_ids = tuple(id(operand) for operand in self._operands)
            if getattr(self, "COMMUTATIVE", False):
                operand_ids = tuple(sorted(operand_ids))
            signature = (
                self.name,
                operand_ids,
                # Attributes compare by printed form, not ==: floats 0.0 and
                # -0.0 are == but print differently and must not CSE-merge.
                # The str() cost is paid once per op thanks to the cache.
                tuple(sorted((k, str(v)) for k, v in self.attributes.items())),
                tuple(r.type for r in self.results),
            )
            self._cse_signature = signature
        return signature

    # -- regions ---------------------------------------------------------------
    def region(self, index: int = 0) -> Region:
        return self.regions[index]

    @property
    def body(self) -> Block:
        """The single block of the first region (structured control flow)."""
        return self.regions[0].block

    # -- structural navigation --------------------------------------------------
    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent_block is None:
            return None
        return self.parent_block.parent_op

    def ancestors(self) -> Iterator["Operation"]:
        op = self.parent_op
        while op is not None:
            yield op
            op = op.parent_op

    def walk_nested(self) -> Iterator["Operation"]:
        """Pre-order walk of operations nested inside this op's regions."""
        for region in self.regions:
            yield from region.walk()

    def walk(self) -> Iterator["Operation"]:
        """Pre-order walk including this operation itself."""
        yield self
        yield from self.walk_nested()

    # -- mutation -----------------------------------------------------------------
    def erase(self) -> None:
        """Remove this operation from its block and drop operand uses.

        Results must be unused; passes call :meth:`Value.replace_all_uses_with`
        first when folding.
        """
        for result in self.results:
            if result.has_uses:
                raise VerificationError(
                    f"cannot erase {self.name}: result %{result.display_name()} "
                    "still has uses",
                    self.location,
                )
        for nested in list(self.walk_nested()):
            nested.drop_all_uses()
        self.drop_all_uses()
        if self.parent_block is not None:
            self.parent_block.remove(self)

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation (and nested regions) in a single pass.

        ``value_map`` maps values in the original IR to values the clone should
        use; it is updated with mappings for every result and block argument
        produced by the clone.  This is how ``unroll_for`` bodies get
        replicated during lowering.

        The clone is built directly (one descent over the nested regions with
        the value map threaded through) rather than routed back through
        ``Operation.__init__``, which would re-validate every operand and
        re-wrap every attribute a second time per cloned op — measurable on
        unroll-heavy designs like the 256-PE GEMM array.
        """
        value_map = value_map if value_map is not None else {}
        cloned = object.__new__(type(self))
        cloned.name = self.name
        cloned.location = self.location
        cloned.parent_block = None
        cloned.attributes = dict(self.attributes)  # attributes are immutable
        cloned._cse_signature = None
        cloned._operands = []
        cloned.results = []
        for index, old_res in enumerate(self.results):
            new_res = OpResult(cloned, index, old_res.type, old_res.name_hint)
            cloned.results.append(new_res)
            value_map[old_res] = new_res
        for index, operand in enumerate(self._operands):
            mapped = value_map.get(operand, operand)
            cloned._operands.append(mapped)
            mapped._add_use(Use(cloned, index))
        cloned.regions = []
        for region in self.regions:
            new_region = Region(cloned)
            cloned.regions.append(new_region)
            for block in region.blocks:
                new_block = new_region.add_block()
                for old_arg in block.arguments:
                    new_arg = new_block.add_argument(old_arg.type, old_arg.name_hint)
                    value_map[old_arg] = new_arg
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return cloned

    # -- verification ----------------------------------------------------------------
    def verify_op(self) -> None:
        """Per-op structural checks; dialect ops override this."""

    # -- misc ---------------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{self.name} ({self.num_operands} operands, {self.num_results} results)>"


# Registry mapping operation names to their Python classes, used by the parser
# to rebuild typed operations from the generic textual form.
_OP_REGISTRY: Dict[str, PyType[Operation]] = {}


def register_operation(op_class: PyType[Operation]) -> PyType[Operation]:
    """Class decorator registering a dialect operation by its name."""
    _OP_REGISTRY[op_class.OPERATION_NAME] = op_class
    return op_class


def registered_operation(name: str) -> Optional[PyType[Operation]]:
    return _OP_REGISTRY.get(name)


def registered_operations() -> Dict[str, PyType[Operation]]:
    return dict(_OP_REGISTRY)


def create_operation(
    name: str,
    operands: Sequence[Value] = (),
    result_types: Sequence[Type] = (),
    attributes: Optional[Dict[str, AttributeValue]] = None,
    num_regions: int = 0,
    location: Optional[Location] = None,
) -> Operation:
    """Create an operation, using the registered class when one exists.

    The parser uses this so a parsed ``hir.for`` comes back as a ``ForOp``
    with its typed accessors, not a bare generic ``Operation``.
    """
    op_class = _OP_REGISTRY.get(name)
    op = object.__new__(op_class) if op_class is not None else object.__new__(Operation)
    Operation.__init__(
        op,
        name=name,
        operands=operands,
        result_types=result_types,
        attributes=attributes,
        num_regions=num_regions,
        location=location,
    )
    return op
