"""Parser for the generic textual form produced by :mod:`repro.ir.printer`.

The grammar is the MLIR generic operation form::

    operation  ::= (results `=`)? `"` op-name `"` `(` operands `)`
                   regions? attr-dict? `:` `(` types `)` `->` `(` types `)`
    regions    ::= `(` `{` block+ `}` (`,` `{` block+ `}`)* `)`
    block      ::= `^bb0` (`(` block-args `)`)? `:` operation*

Dialect types (anything starting with ``!``) are parsed through a registry so
the HIR dialect can install parsers for ``!hir.memref<...>`` et al. without
this module depending on the dialect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
)
from repro.ir.block import Block
from repro.ir.errors import ParseError
from repro.ir.location import Location
from repro.ir.operation import Operation, create_operation
from repro.ir.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    NoneType,
    Type,
)
from repro.ir.values import Value

# --------------------------------------------------------------------------- #
# Dialect type registry
# --------------------------------------------------------------------------- #

DialectTypeParser = Callable[[str, Optional[str]], Type]
_DIALECT_TYPE_PARSERS: Dict[str, DialectTypeParser] = {}


def register_dialect_type_parser(dialect: str, parser: DialectTypeParser) -> None:
    """Register a parser for ``!<dialect>.<name>`` types.

    ``parser`` receives the type's mnemonic (the part after the dialect
    prefix) and the raw body between ``<`` and ``>`` (or ``None`` when the
    type has no body) and returns a :class:`Type`.
    """
    _DIALECT_TYPE_PARSERS[dialect] = parser


# --------------------------------------------------------------------------- #
# Lexer
# --------------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<float>-?\d+\.\d+(?:[eE][-+]?\d+)?)
  | (?P<integer>-?\d+)
  | (?P<percent>%[A-Za-z0-9_]+)
  | (?P<at>@[A-Za-z0-9_.$]+)
  | (?P<caret>\^[A-Za-z0-9_]+)
  | (?P<exclaim>![A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<arrow>->)
  | (?P<punct>[(){}\[\]<>,:=*])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(
                f"unexpected character {source[pos]!r}",
                Location.file(filename, line, column),
            )
        kind = match.lastgroup or "ws"
        text = match.group()
        if kind != "ws":
            tokens.append(Token(kind, text, line, pos - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


# --------------------------------------------------------------------------- #
# Type parsing helpers (shared with dialect type parsers)
# --------------------------------------------------------------------------- #

_INT_TYPE_RE = re.compile(r"^(ui|i)(\d+)$")
_FLOAT_TYPE_RE = re.compile(r"^f(\d+)$")


def parse_simple_type(text: str) -> Type:
    """Parse a builtin scalar type written as a single identifier."""
    match = _INT_TYPE_RE.match(text)
    if match:
        return IntegerType(int(match.group(2)), signed=match.group(1) == "i")
    match = _FLOAT_TYPE_RE.match(text)
    if match:
        return FloatType(int(match.group(1)))
    if text == "index":
        return IndexType()
    if text == "none":
        return NoneType()
    raise ParseError(f"unknown type {text!r}")


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #


class Parser:
    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0
        # Scope stack mapping %name -> Value; nested regions may read outer
        # values, so lookups walk the stack outward.
        self.scopes: List[Dict[str, Value]] = [{}]

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def location(self, token: Optional[Token] = None) -> Location:
        token = token or self.peek()
        return Location.file(self.filename, token.line, token.column)

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", self.location(token))
        return token

    def expect_kind(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}", self.location(token))
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.next()
            return True
        return False

    # -- value scope --------------------------------------------------------
    def define_value(self, name: str, value: Value) -> None:
        self.scopes[-1][name] = value
        value.name_hint = value.name_hint or _hint_from_name(name)

    def lookup_value(self, name: str, token: Token) -> Value:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise ParseError(f"use of undefined value %{name}", self.location(token))

    # -- types ----------------------------------------------------------------
    def parse_type(self) -> Type:
        token = self.next()
        if token.kind == "ident":
            return parse_simple_type(token.text)
        if token.kind == "exclaim":
            full = token.text[1:]
            if "." not in full:
                raise ParseError(f"malformed dialect type !{full}", self.location(token))
            dialect, mnemonic = full.split(".", 1)
            body: Optional[str] = None
            if self.peek().text == "<":
                body = self._capture_angle_body()
            parser = _DIALECT_TYPE_PARSERS.get(dialect)
            if parser is None:
                raise ParseError(f"no registered dialect {dialect!r}", self.location(token))
            return parser(mnemonic, body)
        if token.text == "(":
            inputs = self._parse_type_list_until(")")
            self.expect_kind("arrow")
            self.expect("(")
            results = self._parse_type_list_until(")")
            return FunctionType(tuple(inputs), tuple(results))
        raise ParseError(f"expected a type, found {token.text!r}", self.location(token))

    def _parse_type_list_until(self, closer: str) -> List[Type]:
        types: List[Type] = []
        if self.accept(closer):
            return types
        while True:
            types.append(self.parse_type())
            if self.accept(closer):
                return types
            self.expect(",")

    def _capture_angle_body(self) -> str:
        """Capture raw text between balanced ``<`` ... ``>`` tokens."""
        self.expect("<")
        depth = 1
        parts: List[str] = []
        while depth:
            token = self.next()
            if token.kind == "eof":
                raise ParseError("unterminated '<' in type", self.location(token))
            if token.text == "<":
                depth += 1
            elif token.text == ">":
                depth -= 1
                if depth == 0:
                    break
            parts.append(token.text)
        return " ".join(parts)

    # -- attributes -------------------------------------------------------------
    def parse_attribute(self) -> Attribute:
        token = self.peek()
        if token.kind == "string":
            self.next()
            return StringAttr(_unescape(token.text[1:-1]))
        if token.kind == "at":
            self.next()
            return SymbolRefAttr(token.text[1:])
        if token.text == "[":
            self.next()
            elements: List[Attribute] = []
            if not self.accept("]"):
                while True:
                    elements.append(self.parse_attribute())
                    if self.accept("]"):
                        break
                    self.expect(",")
            return ArrayAttr(tuple(elements))
        if token.text in ("true", "false"):
            self.next()
            return BoolAttr(token.text == "true")
        if token.kind == "float":
            self.next()
            type_ = self._maybe_attr_type()
            return FloatAttr(float(token.text), type_)
        if token.kind == "integer":
            self.next()
            type_ = self._maybe_attr_type()
            return IntegerAttr(int(token.text), type_)
        if token.kind in ("ident", "exclaim") or token.text == "(":
            return TypeAttr(self.parse_type())
        raise ParseError(f"expected an attribute, found {token.text!r}", self.location(token))

    def _maybe_attr_type(self) -> Optional[Type]:
        if self.peek().text == ":":
            self.next()
            return self.parse_type()
        return None

    def parse_attr_dict(self) -> Dict[str, Attribute]:
        attributes: Dict[str, Attribute] = {}
        self.expect("{")
        if self.accept("}"):
            return attributes
        while True:
            key = self.expect_kind("ident").text
            self.expect("=")
            attributes[key] = self.parse_attribute()
            if self.accept("}"):
                return attributes
            self.expect(",")

    # -- operations -----------------------------------------------------------------
    def parse_operation(self) -> Operation:
        start = self.peek()
        result_names: List[str] = []
        if start.kind == "percent":
            while True:
                result_names.append(self.expect_kind("percent").text[1:])
                if not self.accept(","):
                    break
            self.expect("=")
        name_token = self.expect_kind("string")
        op_name = name_token.text[1:-1]

        self.expect("(")
        operand_tokens: List[Token] = []
        if not self.accept(")"):
            while True:
                operand_tokens.append(self.expect_kind("percent"))
                if self.accept(")"):
                    break
                self.expect(",")
        operands = [self.lookup_value(t.text[1:], t) for t in operand_tokens]

        # Regions (optional).
        region_blocks: List[List[Block]] = []
        if self.peek().text == "(" and self.peek(1).text == "{":
            self.expect("(")
            while True:
                self.expect("{")
                region_blocks.append(self._parse_region_blocks())
                if self.accept(")"):
                    break
                self.expect(",")

        attributes: Dict[str, Attribute] = {}
        if self.peek().text == "{":
            attributes = self.parse_attr_dict()

        self.expect(":")
        self.expect("(")
        operand_types = self._parse_type_list_until(")")
        self.expect_kind("arrow")
        self.expect("(")
        result_types = self._parse_type_list_until(")")
        location = self._parse_trailing_location(self.location(name_token))

        if len(operand_types) != len(operands):
            raise ParseError(
                f"{op_name}: {len(operands)} operands but {len(operand_types)} operand types",
                self.location(name_token),
            )
        for operand, expected in zip(operands, operand_types):
            if operand.type != expected:
                raise ParseError(
                    f"{op_name}: operand %{operand.display_name()} has type "
                    f"{operand.type}, expected {expected}",
                    self.location(name_token),
                )
        if result_names and len(result_names) != len(result_types):
            raise ParseError(
                f"{op_name}: {len(result_names)} result names but "
                f"{len(result_types)} result types",
                self.location(name_token),
            )

        op = create_operation(
            op_name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            num_regions=0,
            location=location,
        )
        from repro.ir.region import Region  # local import to avoid cycle at module load

        for blocks in region_blocks:
            region = Region(op)
            op.regions.append(region)
            for block in blocks:
                region.add_block(block)

        for name, result in zip(result_names, op.results):
            result.name_hint = _hint_from_name(name)
            self.define_value(name, result)
        return op

    def _parse_trailing_location(self, default: Location) -> Location:
        """Parse an optional ``loc(...)`` clause after an operation.

        The printer's ``with_locations`` mode emits ``loc(unknown)``,
        ``loc("name")`` or ``loc("file":line:column)``; absent a clause the
        operation is located at its own source position (``default``).
        """
        if self.peek().text != "loc" or self.peek(1).text != "(":
            return default
        self.next()
        self.expect("(")
        token = self.next()
        if token.text == "unknown":
            location: Location = Location.unknown()
        elif token.kind == "string":
            text = _unescape(token.text[1:-1])
            if self.accept(":"):
                line = int(self.expect_kind("integer").text)
                self.expect(":")
                column = int(self.expect_kind("integer").text)
                location = Location.file(text, line, column)
            else:
                location = Location.name(text)
        else:
            raise ParseError(
                f"malformed loc(...) clause at {token.text!r}",
                self.location(token))
        self.expect(")")
        return location

    def _parse_region_blocks(self) -> List[Block]:
        """Parse the blocks of one region up to the closing '}'."""
        blocks: List[Block] = []
        self.scopes.append({})
        try:
            while not self.accept("}"):
                blocks.append(self._parse_block())
        finally:
            self.scopes.pop()
        return blocks

    def _parse_block(self) -> Block:
        block = Block()
        token = self.peek()
        if token.kind == "caret":
            self.next()
            if self.accept("("):
                if not self.accept(")"):
                    while True:
                        arg_token = self.expect_kind("percent")
                        self.expect(":")
                        arg_type = self.parse_type()
                        arg = block.add_argument(
                            arg_type, _hint_from_name(arg_token.text[1:]))
                        self.define_value(arg_token.text[1:], arg)
                        if self.accept(")"):
                            break
                        self.expect(",")
            self.expect(":")
        while self.peek().text != "}" and self.peek().kind != "caret":
            if self.peek().kind == "eof":
                raise ParseError("unexpected end of input inside a block", self.location())
            block.append(self.parse_operation())
        return block


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def _hint_from_name(name: str) -> Optional[str]:
    """A textual value name worth keeping as an SSA name hint.

    The printer names hint-less values ``%0, %1, ...``; restoring those
    digits as hints would change downstream hint-derived names (e.g.
    Verilog signals ``sig0`` vs ``v_0``), breaking the byte-identical
    round-trip the artifact store depends on.  Real hints survive.
    """
    return None if name.isdigit() else name


def parse_module(source: str, filename: str = "<string>") -> Operation:
    """Parse a module (or any single top-level operation) from text."""
    parser = Parser(source, filename)
    op = parser.parse_operation()
    if parser.peek().kind != "eof":
        raise ParseError(
            f"unexpected trailing input {parser.peek().text!r}", parser.location()
        )
    return op
