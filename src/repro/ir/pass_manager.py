"""Pass infrastructure: passes, pass pipelines and per-pass statistics.

Modelled after MLIR's pass manager, trimmed down to what the HIR compiler and
the baseline HLS compiler need: module-level passes run in sequence, each pass
can record statistics (e.g. "ops removed by CSE"), and the manager can verify
the IR after each pass.

The manager also owns an :class:`~repro.ir.analysis.AnalysisManager`: passes
reach cached analyses through ``self.analyses`` and declare which analyses
they keep valid via ``PRESERVES``; everything else is invalidated after the
pass runs.  ``timing_report()`` is the ``--timing``-style breakdown: per-pass
transform and verifier seconds, pass statistics, and analysis cache hit/miss
counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.analysis import AnalysisManager, PRESERVE_ALL
from repro.ir.operation import Operation
from repro.ir.verifier import verify
from repro.obs.tracer import TRACER

__all__ = ["Pass", "PassManager", "PassTiming", "PRESERVE_ALL"]


class Pass:
    """Base class for a transformation or analysis over a module."""

    #: Human-readable pass name, used in statistics and timing reports.
    name: str = "unnamed-pass"

    #: Analyses (by name) this pass keeps valid; the pass manager invalidates
    #: every other cached analysis after the pass runs.  Analysis-only passes
    #: can declare :data:`~repro.ir.analysis.PRESERVE_ALL`.
    PRESERVES: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.statistics: Dict[str, int] = {}
        #: Set by the pass manager before ``run``; passes may use it to fetch
        #: cached analyses (``self.analyses.get("loop-info", module)``).
        self.analyses: Optional[AnalysisManager] = None

    def run(self, module: Operation) -> None:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"pass '{self.name}' ({type(self).__name__}) does not override "
            "Pass.run(); every registered pass must transform or analyse the "
            "module it is given"
        )

    def record(self, key: str, amount: int = 1) -> None:
        """Increment a named statistic."""
        self.statistics[key] = self.statistics.get(key, 0) + amount


@dataclass
class PassTiming:
    name: str
    seconds: float
    statistics: Dict[str, int] = field(default_factory=dict)
    #: Time spent verifying the module after this pass (0 when disabled).
    verify_seconds: float = 0.0


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, verify_each: bool = True) -> None:
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.timings: List[PassTiming] = []
        self.analysis_manager = AnalysisManager()

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Operation) -> Operation:
        """Run every registered pass in order and return the module.

        Timings *and* per-pass statistics are rebuilt on every call: a
        manager reused across modules reports the statistics of the latest
        run, not a stale accumulation over all previous runs.
        """
        self.timings = []
        analyses = self.analysis_manager
        analyses.clear()
        for pass_ in self.passes:
            pass_.statistics = {}
            pass_.analyses = analyses
            start = time.perf_counter()
            with TRACER.span("pass", cat="pass", name_=pass_.name):
                pass_.run(module)
            elapsed = time.perf_counter() - start
            verify_elapsed = 0.0
            if self.verify_each:
                verify_start = time.perf_counter()
                verify(module)
                verify_elapsed = time.perf_counter() - verify_start
            self.timings.append(
                PassTiming(pass_.name, elapsed, dict(pass_.statistics),
                           verify_elapsed)
            )
            analyses.invalidate_all_except(pass_.PRESERVES)
            TRACER.count("pass.runs")
            for key, value in pass_.statistics.items():
                TRACER.count(f"pass.{pass_.name}.{key}", value)
        return module

    def timing_report(self) -> str:
        """A human-readable per-pass timing/statistics report."""
        lines = ["pass timing report", "-" * 60]
        total = 0.0
        total_verify = 0.0
        for timing in self.timings:
            total += timing.seconds
            total_verify += timing.verify_seconds
            line = f"{timing.name:<32} {timing.seconds * 1e3:8.3f} ms"
            if timing.verify_seconds:
                line += f"  (+{timing.verify_seconds * 1e3:.3f} ms verify)"
            lines.append(line)
            for key, value in sorted(timing.statistics.items()):
                lines.append(f"    {key}: {value}")
        lines.append(
            f"{'total':<32} {total * 1e3:8.3f} ms"
            f"  (+{total_verify * 1e3:.3f} ms verify)"
        )
        manager = self.analysis_manager
        lines.append(
            f"analysis cache: {manager.hits} hits, {manager.misses} misses, "
            f"{manager.invalidations} invalidations"
        )
        return "\n".join(lines)

    def statistic(self, pass_name: str, key: str) -> Optional[int]:
        for timing in self.timings:
            if timing.name == pass_name and key in timing.statistics:
                return timing.statistics[key]
        return None
