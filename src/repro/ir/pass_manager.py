"""Pass infrastructure: passes, pass pipelines and per-pass statistics.

Modelled after MLIR's pass manager, trimmed down to what the HIR compiler and
the baseline HLS compiler need: module-level passes run in sequence, each pass
can record statistics (e.g. "ops removed by CSE"), and the manager can verify
the IR after each pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.operation import Operation
from repro.ir.verifier import verify


class Pass:
    """Base class for a transformation or analysis over a module."""

    #: Human-readable pass name, used in statistics and timing reports.
    name: str = "unnamed-pass"

    def __init__(self) -> None:
        self.statistics: Dict[str, int] = {}

    def run(self, module: Operation) -> None:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"pass '{self.name}' ({type(self).__name__}) does not override "
            "Pass.run(); every registered pass must transform or analyse the "
            "module it is given"
        )

    def record(self, key: str, amount: int = 1) -> None:
        """Increment a named statistic."""
        self.statistics[key] = self.statistics.get(key, 0) + amount


@dataclass
class PassTiming:
    name: str
    seconds: float
    statistics: Dict[str, int] = field(default_factory=dict)


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, verify_each: bool = True) -> None:
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.timings: List[PassTiming] = []

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Operation) -> Operation:
        """Run every registered pass in order and return the module."""
        self.timings = []
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module)
            elapsed = time.perf_counter() - start
            self.timings.append(
                PassTiming(pass_.name, elapsed, dict(pass_.statistics))
            )
            if self.verify_each:
                verify(module)
        return module

    def timing_report(self) -> str:
        """A human-readable per-pass timing/statistics report."""
        lines = ["pass timing report", "-" * 48]
        for timing in self.timings:
            lines.append(f"{timing.name:<32} {timing.seconds * 1e3:8.3f} ms")
            for key, value in sorted(timing.statistics.items()):
                lines.append(f"    {key}: {value}")
        return "\n".join(lines)

    def statistic(self, pass_name: str, key: str) -> Optional[int]:
        for timing in self.timings:
            if timing.name == pass_name and key in timing.statistics:
                return timing.statistics[key]
        return None
