"""Round-trippable textual printer (MLIR "generic form").

Every operation prints as::

    %res0, %res1 = "dialect.op"(%operand0, %operand1) ({
      ^bb0(%blockarg0: type):
        ...nested ops...
    }) {attr_name = attr_value, ...} : (operand types) -> (result types)

The output of :func:`print_module` parses back with
:func:`repro.ir.parser.parse_module` into structurally identical IR, which the
round-trip property tests exercise.  ``with_locations=True`` additionally
prints each operation's source location as a trailing ``loc(...)`` clause
(MLIR's generic-form location syntax) which the parser restores — the
persistent artifact store uses this so a module rebuilt from an ``ir`` blob
reproduces byte-identical Verilog, location comments included.  A separate
pretty printer for the HIR dialect (closer to the listings in the paper)
lives in :mod:`repro.hir.pretty`.
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, Optional

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
)
from repro.ir.block import Block
from repro.ir.location import FileLocation, Location, NameLocation
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.values import Value

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class NameManager:
    """Assigns unique textual names (%foo, %foo_1, %0, ...) to SSA values."""

    def __init__(self) -> None:
        self._names: Dict[Value, str] = {}
        self._used: set[str] = set()
        self._counter = 0

    def name_of(self, value: Value) -> str:
        name = self._names.get(value)
        if name is None:
            name = self._fresh(value.name_hint)
            self._names[value] = name
        return name

    def _fresh(self, hint: Optional[str]) -> str:
        if hint and _IDENT_RE.match(hint):
            candidate = hint
            suffix = 0
            while candidate in self._used:
                suffix += 1
                candidate = f"{hint}_{suffix}"
        else:
            candidate = str(self._counter)
            self._counter += 1
            while candidate in self._used:
                candidate = str(self._counter)
                self._counter += 1
        self._used.add(candidate)
        return candidate


class Printer:
    """Stateful printer writing the generic textual form."""

    def __init__(self, indent_width: int = 2,
                 with_locations: bool = False) -> None:
        self._out = io.StringIO()
        self._indent = 0
        self._indent_width = indent_width
        self._with_locations = with_locations
        self.names = NameManager()

    # -- low-level emission ---------------------------------------------------
    def _line(self, text: str) -> None:
        self._out.write(" " * (self._indent * self._indent_width) + text + "\n")

    def result(self) -> str:
        return self._out.getvalue()

    # -- attribute printing ------------------------------------------------------
    def print_attribute(self, attribute: Attribute) -> str:
        if isinstance(attribute, IntegerAttr):
            if attribute.type is not None:
                return f"{attribute.value} : {attribute.type}"
            return str(attribute.value)
        if isinstance(attribute, FloatAttr):
            text = repr(float(attribute.value))
            if attribute.type is not None:
                return f"{text} : {attribute.type}"
            return text
        if isinstance(attribute, BoolAttr):
            return "true" if attribute.value else "false"
        if isinstance(attribute, StringAttr):
            escaped = attribute.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(attribute, SymbolRefAttr):
            return f"@{attribute.value}"
        if isinstance(attribute, TypeAttr):
            return str(attribute.value)
        if isinstance(attribute, ArrayAttr):
            return "[" + ", ".join(self.print_attribute(e) for e in attribute.elements) + "]"
        raise TypeError(f"cannot print attribute {attribute!r}")

    # -- op printing -----------------------------------------------------------------
    def print_operation(self, op: Operation) -> None:
        parts: List[str] = []
        if op.results:
            parts.append(", ".join(f"%{self.names.name_of(r)}" for r in op.results))
            parts.append(" = ")
        parts.append(f'"{op.name}"')
        parts.append("(")
        parts.append(", ".join(f"%{self.names.name_of(o)}" for o in op.operands))
        parts.append(")")
        header = "".join(parts)

        if op.regions:
            self._line(header + " (" + "{")
            for i, region in enumerate(op.regions):
                self._print_region_body(region)
                if i + 1 < len(op.regions):
                    self._line("}, {")
            self._line("}) " + self._trailer(op))
        else:
            self._line(header + " " + self._trailer(op))

    def _trailer(self, op: Operation) -> str:
        attr_text = ""
        if op.attributes:
            entries = ", ".join(
                f"{key} = {self.print_attribute(value)}"
                for key, value in sorted(op.attributes.items())
            )
            attr_text = "{" + entries + "} "
        operand_types = ", ".join(str(o.type) for o in op.operands)
        result_types = ", ".join(str(r.type) for r in op.results)
        text = f"{attr_text}: ({operand_types}) -> ({result_types})"
        if self._with_locations:
            text += " " + _location_text(op.location)
        return text

    def _print_region_body(self, region: Region) -> None:
        self._indent += 1
        for block in region.blocks:
            self._print_block(block)
        self._indent -= 1

    def _print_block(self, block: Block) -> None:
        if block.arguments:
            args = ", ".join(
                f"%{self.names.name_of(a)}: {a.type}" for a in block.arguments
            )
            self._line(f"^bb0({args}):")
        else:
            self._line("^bb0:")
        self._indent += 1
        for op in block.operations:
            self.print_operation(op)
        self._indent -= 1


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _location_text(location: Location) -> str:
    """The trailing ``loc(...)`` clause of one operation."""
    if isinstance(location, NameLocation):
        return f'loc("{_escape(location.identifier)}")'
    if isinstance(location, FileLocation):
        return (f'loc("{_escape(location.filename)}"'
                f":{location.line}:{location.column})")
    return "loc(unknown)"


def print_op(op: Operation, with_locations: bool = False) -> str:
    """Print a single operation (and everything nested in it)."""
    printer = Printer(with_locations=with_locations)
    printer.print_operation(op)
    return printer.result()


def print_module(module: Operation, with_locations: bool = False) -> str:
    """Print a module (alias of :func:`print_op`, kept for readability)."""
    return print_op(module, with_locations=with_locations)


def module_fingerprint(module: Operation, length: int = 16) -> str:
    """Content hash of a module's printed form.

    The canonical identity the stage caches and the fuzzer's determinism
    checks key on: two modules fingerprint equal iff they print to the same
    text.  ``length`` truncates the sha256 hex digest (16 chars by default,
    matching the Flow artifact fingerprints).
    """
    import hashlib

    digest = hashlib.sha256(print_op(module).encode()).hexdigest()
    return digest[:length] if length else digest
