"""Regions: nested lexical scopes owned by an operation.

``hir.func``, ``hir.for`` and ``hir.unroll_for`` each own a single-block
region that forms the body of the construct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.block import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation


class Region:
    """A list of blocks owned by a parent operation."""

    def __init__(self, parent_op: Optional["Operation"] = None) -> None:
        self.blocks: List[Block] = []
        self.parent_op = parent_op

    def add_block(self, block: Optional[Block] = None) -> Block:
        block = block if block is not None else Block()
        block.parent_region = self
        self.blocks.append(block)
        return block

    @property
    def block(self) -> Block:
        """The single block of a structured-control-flow region."""
        if not self.blocks:
            raise ValueError("region has no blocks")
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        return not self.blocks

    def walk(self) -> Iterator["Operation"]:
        for block in self.blocks:
            yield from block.walk()

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"
