"""Worklist-driven pattern rewriting.

The seed passes reached their fixpoints by re-walking the whole module until
an iteration made no change — O(module) work per rewrite.  The
:class:`PatternRewriter` replaces that with the classic worklist algorithm:

1. seed the worklist with every operation under the root, in pre-order,
2. pop an operation, try the patterns registered for its name,
3. when a rewrite changes something, re-enqueue only the operations whose
   match status may have changed: the users of replaced results, the
   producers of dropped operands, newly inserted operations, and the
   rewritten operation itself.

A rewrite therefore costs O(users touched), not O(module), while reaching
the same fixpoint as the full re-walk for the local patterns used by the
HIR pipeline (the legacy implementations are kept in
:mod:`repro.passes.legacy` and the equivalence is asserted by golden tests).

Patterns mutate the IR only through the rewriter's API (``replace_op``,
``erase_op``, ``insert_before``) so the worklist always learns what changed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ir.operation import Operation
from repro.ir.values import OpResult, Value


class RewritePattern:
    """One local rewrite: match an operation and transform it in place."""

    #: Operation names this pattern can match; ``None`` matches every op.
    op_names: Optional[Tuple[str, ...]] = None

    def match_and_rewrite(self, op: Operation,
                          rewriter: "PatternRewriter") -> bool:
        """Try to rewrite ``op``; return True iff the IR changed."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement match_and_rewrite(); a "
            "pattern that never rewrites should not be registered"
        )


class PatternRewriter:
    """Applies a set of patterns over a root operation with a worklist."""

    def __init__(self, patterns: Sequence[RewritePattern]) -> None:
        self._generic: List[RewritePattern] = []
        self._by_name: Dict[str, List[RewritePattern]] = {}
        for pattern in patterns:
            if pattern.op_names is None:
                self._generic.append(pattern)
            else:
                for name in pattern.op_names:
                    self._by_name.setdefault(name, []).append(pattern)
        self._worklist: deque = deque()
        self._queued: set = set()
        self._root: Optional[Operation] = None
        self.num_rewrites = 0

    # -- driving ----------------------------------------------------------
    def rewrite(self, root: Operation) -> int:
        """Drive every pattern to fixpoint under ``root``; returns #rewrites."""
        self._root = root
        before = self.num_rewrites
        for op in root.walk():
            self.enqueue(op)
        worklist, queued = self._worklist, self._queued
        while worklist:
            op = worklist.popleft()
            queued.discard(id(op))
            if op.parent_block is None and op is not root:
                continue  # erased while queued
            self._apply_patterns(op)
        self._root = None
        return self.num_rewrites - before

    def _apply_patterns(self, op: Operation) -> None:
        patterns = self._by_name.get(op.name)
        if patterns:
            for pattern in patterns:
                if pattern.match_and_rewrite(op, self):
                    self.num_rewrites += 1
                    if op.parent_block is None and op is not self._root:
                        return  # op erased by its own rewrite
                    self.enqueue(op)
        for pattern in self._generic:
            if pattern.match_and_rewrite(op, self):
                self.num_rewrites += 1
                if op.parent_block is None and op is not self._root:
                    return
                self.enqueue(op)

    def enqueue(self, op: Operation) -> None:
        """Schedule ``op`` for (re-)examination."""
        if id(op) not in self._queued:
            self._queued.add(id(op))
            self._worklist.append(op)

    def _enqueue_operand_producers(self, op: Operation) -> None:
        for operand in op.operands:
            if isinstance(operand, OpResult) and operand.operation.parent_block is not None:
                self.enqueue(operand.operation)

    # -- mutation API used by patterns -------------------------------------
    def replace_op(self, op: Operation,
                   replacements: Union[Value, Sequence[Value]]) -> None:
        """Replace ``op``'s results with ``replacements`` and erase it.

        Users of the replaced results and producers of the operation's
        operands (whose use counts just dropped) are re-enqueued.
        """
        if isinstance(replacements, Value):
            replacements = [replacements]
        if len(replacements) != len(op.results):
            raise ValueError(
                f"cannot replace {op.name}: {len(op.results)} results but "
                f"{len(replacements)} replacement values"
            )
        for result, new_value in zip(op.results, replacements):
            for use in result.uses:
                self.enqueue(use.operation)
            result.replace_all_uses_with(new_value)
        self._enqueue_operand_producers(op)
        op.erase()

    def erase_op(self, op: Operation) -> None:
        """Erase an operation whose results are unused (DCE)."""
        self._enqueue_operand_producers(op)
        op.erase()

    def insert_before(self, anchor: Operation, new_op: Operation) -> Operation:
        """Insert ``new_op`` before ``anchor`` and schedule it for matching."""
        anchor.parent_block.insert_before(anchor, new_op)
        self.enqueue(new_op)
        return new_op


def apply_patterns(root: Operation,
                   patterns: Iterable[RewritePattern]) -> int:
    """Convenience wrapper: run ``patterns`` to fixpoint under ``root``."""
    return PatternRewriter(list(patterns)).rewrite(root)
