"""Core type system shared by all dialects.

Mirrors MLIR builtin types: arbitrary bit-width integers, floats and function
types.  HIR-specific types (``!hir.const``, ``!hir.time`` and ``!hir.memref``)
live in :mod:`repro.hir.types` but derive from :class:`Type` defined here.

All types are immutable value objects: two types compare equal iff they print
the same, which keeps uniquing trivial.  Types are additionally *interned*
(hash-consed) via :class:`~repro.ir.interning.HashConsMeta`: constructing a
type that already exists returns the canonical instance, so equal types are
the *same object* and every comparison hits the identity fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.ir.interning import HashConsMeta


@dataclass(frozen=True)
class Type(metaclass=HashConsMeta):
    """Base class of every IR type."""

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return "<type>"

    # Types are immutable and interned: copying must preserve identity so
    # cloned/deep-copied IR keeps comparing by identity.
    def __copy__(self) -> "Type":
        return self

    def __deepcopy__(self, memo) -> "Type":
        return self

    @property
    def bitwidth(self) -> int:
        """Number of bits needed to carry a value of this type on a wire.

        Types that do not correspond to hardware data (function types, time
        variables, constants) report a width of 0.
        """
        return 0


@dataclass(frozen=True)
class IntegerType(Type):
    """Arbitrary bit-width integer, e.g. ``i1``, ``i8``, ``i32``."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    def __str__(self) -> str:
        prefix = "i" if self.signed else "ui"
        return f"{prefix}{self.width}"

    @property
    def bitwidth(self) -> int:
        return self.width

    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` into this type's two's-complement range."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE float of a given width (``f16``, ``f32``, ``f64``)."""

    width: int = 32

    def __post_init__(self) -> None:
        if self.width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {self.width}")

    def __str__(self) -> str:
        return f"f{self.width}"

    @property
    def bitwidth(self) -> int:
        return self.width


@dataclass(frozen=True)
class IndexType(Type):
    """Platform-sized index type used by loop bounds before lowering."""

    def __str__(self) -> str:
        return "index"

    @property
    def bitwidth(self) -> int:
        return 32


@dataclass(frozen=True)
class NoneType(Type):
    """Unit type for operations that produce no meaningful value."""

    def __str__(self) -> str:
        return "none"


@dataclass(frozen=True)
class FunctionType(Type):
    """A function signature: input types and result types.

    HIR function signatures additionally embed per-value delays (Section 6.1
    of the paper, the ``i32 delay 3`` syntax); those delays are stored as
    attributes on the ``hir.func`` operation rather than in the type so that
    this type stays dialect-neutral.
    """

    inputs: Tuple[Type, ...] = field(default_factory=tuple)
    results: Tuple[Type, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


# Convenient singletons / constructors used throughout the code base.
def i(width: int) -> IntegerType:
    """Shorthand for a signed integer type of the given width."""
    return IntegerType(width)


I1 = IntegerType(1)
I8 = IntegerType(8)
I16 = IntegerType(16)
I32 = IntegerType(32)
I64 = IntegerType(64)
F32 = FloatType(32)
F64 = FloatType(64)
INDEX = IndexType()
NONE = NoneType()
