"""SSA values.

Every value in the IR is defined exactly once: either as the result of an
operation (:class:`OpResult`) or as a block argument (:class:`BlockArgument`,
used for function arguments, loop induction variables and time variables).
Uses are tracked so passes can cheaply ask "who reads this value?" and rewrite
uses in place, which the delay-elimination and CSE passes rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.ir.types import Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


@dataclass
class Use:
    """A single use of a value: operand ``operand_index`` of ``operation``."""

    operation: "Operation"
    operand_index: int


class Value:
    """Base class for SSA values."""

    def __init__(self, type: Type, name_hint: Optional[str] = None) -> None:
        self._type = type
        self.name_hint = name_hint
        # Uses keyed by (operation identity, operand index): add/remove are
        # O(1) while insertion order — what passes iterate — is preserved.
        # The Use holds a strong reference to the operation, so the id() key
        # stays unambiguous for the lifetime of the entry.
        self._uses: Dict[Tuple[int, int], Use] = {}

    # -- type -------------------------------------------------------------
    @property
    def type(self) -> Type:
        return self._type

    @type.setter
    def type(self, new_type: Type) -> None:
        # Changing a result type (precision optimization) invalidates the
        # defining operation's cached CSE signature.
        self._type = new_type
        owner = getattr(self, "operation", None)
        if owner is not None:
            owner._invalidate_signature()

    # -- use tracking -----------------------------------------------------
    @property
    def uses(self) -> List[Use]:
        """Live uses of this value (maintained by Operation operand setters)."""
        return list(self._uses.values())

    @property
    def has_uses(self) -> bool:
        return bool(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def users(self) -> Iterator["Operation"]:
        """Iterate over operations that use this value (with repetition)."""
        for use in self._uses.values():
            yield use.operation

    def _add_use(self, use: Use) -> None:
        self._uses[(id(use.operation), use.operand_index)] = use

    def _remove_use(self, operation: "Operation", operand_index: int) -> None:
        self._uses.pop((id(operation), operand_index), None)

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of this value to use ``replacement`` instead."""
        if replacement is self:
            return
        for use in list(self._uses.values()):
            use.operation.set_operand(use.operand_index, replacement)

    # -- convenience ------------------------------------------------------
    @property
    def owner(self):  # pragma: no cover - overridden
        return None

    def display_name(self) -> str:
        return self.name_hint or "<anonymous>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} %{self.display_name()} : {self.type}>"


class OpResult(Value):
    """The ``index``-th result of ``operation``."""

    def __init__(self, operation: "Operation", index: int, type: Type,
                 name_hint: Optional[str] = None) -> None:
        super().__init__(type, name_hint)
        self.operation = operation
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.operation


class BlockArgument(Value):
    """The ``index``-th argument of ``block``.

    In HIR these model function arguments, the start-time argument of a
    function body, loop induction variables and loop iteration-time variables.
    """

    def __init__(self, block: "Block", index: int, type: Type,
                 name_hint: Optional[str] = None) -> None:
        super().__init__(type, name_hint)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block
