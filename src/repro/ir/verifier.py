"""Structural IR verifier.

Checks the properties every well-formed module must satisfy, independent of
any dialect:

* every operand is defined by an operation or block argument that dominates
  the use (for structured control flow this means "defined earlier in the same
  block, or in an enclosing block"),
* results are not defined twice, operations appear in exactly one block,
* per-operation invariants (``verify_op`` hooks) hold.

The HIR *schedule* verifier (Figures 1 and 2 of the paper) builds on top of
this and lives in :mod:`repro.passes.schedule_verifier`.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.block import Block
from repro.ir.errors import VerificationError
from repro.ir.operation import Operation
from repro.ir.values import BlockArgument, OpResult, Value


class Verifier:
    """Verifies a module (or any operation subtree)."""

    def __init__(self) -> None:
        self.errors: List[VerificationError] = []

    def verify(self, root: Operation) -> None:
        """Verify ``root``; raises the first error found."""
        self._verify_op(root, visible=set())
        if self.errors:
            raise self.errors[0]

    def _verify_op(self, op: Operation, visible: Set[Value]) -> None:
        for index, operand in enumerate(op.operands):
            if operand not in visible:
                self.errors.append(
                    VerificationError(
                        f"operand #{index} of '{op.name}' "
                        f"(%{operand.display_name()}) does not dominate its use",
                        op.location,
                    )
                )
        try:
            op.verify_op()
        except VerificationError as error:
            self.errors.append(error)

        for region in op.regions:
            for block in region.blocks:
                self._verify_block(block, op, visible)

    def _verify_block(self, block: Block, parent: Operation, visible: Set[Value]) -> None:
        if block.parent_region is None or block.parent_region.parent_op is not parent:
            self.errors.append(
                VerificationError(
                    f"block inside '{parent.name}' has an inconsistent parent link",
                    parent.location,
                )
            )
        # Values visible inside the block: everything from enclosing scopes
        # plus the block arguments, plus results as they are defined.
        inner: Set[Value] = set(visible)
        inner.update(block.arguments)
        for op in block.operations:
            if op.parent_block is not block:
                self.errors.append(
                    VerificationError(
                        f"'{op.name}' has an inconsistent parent block link", op.location
                    )
                )
            self._verify_op(op, inner)
            inner.update(op.results)


def verify(root: Operation) -> None:
    """Module-level convenience wrapper around :class:`Verifier`."""
    Verifier().verify(root)


def collect_errors(root: Operation) -> List[VerificationError]:
    """Run verification and return every error instead of raising the first."""
    verifier = Verifier()
    verifier._verify_op(root, visible=set())
    return verifier.errors


def defining_op(value: Value) -> Operation | None:
    """Return the operation defining ``value`` (None for block arguments)."""
    if isinstance(value, OpResult):
        return value.operation
    if isinstance(value, BlockArgument):
        return None
    return None
