"""Benchmark kernels of the paper's evaluation (Section 8).

``KERNEL_BUILDERS`` maps kernel names to their ``build`` functions; each
returns a :class:`~repro.kernels.base.KernelArtifacts` with the HIR design,
the matching HLS-baseline program, reference models and input generators.
"""

from typing import Callable, Dict, List

from repro.kernels import convolution, fifo, gemm, histogram, stencil1d, transpose
from repro.kernels.base import KernelArtifacts, default_rng

KERNEL_BUILDERS: Dict[str, Callable[..., KernelArtifacts]] = {
    "transpose": transpose.build,
    "stencil_1d": stencil1d.build,
    "histogram": histogram.build,
    "gemm": gemm.build,
    "convolution": convolution.build,
    "fifo": fifo.build,
}


def build_kernel(name: str, **parameters) -> KernelArtifacts:
    """Build one kernel by name with optional size parameters."""
    return KERNEL_BUILDERS[name](**parameters)


def kernel_names() -> List[str]:
    return list(KERNEL_BUILDERS)


__all__ = [
    "KERNEL_BUILDERS",
    "KernelArtifacts",
    "build_kernel",
    "default_rng",
    "kernel_names",
    "convolution",
    "fifo",
    "gemm",
    "histogram",
    "stencil1d",
    "transpose",
]
