"""Benchmark kernels of the paper's evaluation (Section 8).

``KERNEL_BUILDERS`` maps kernel names to their ``build`` functions; each
returns a :class:`~repro.kernels.base.KernelArtifacts` with the HIR design,
the matching HLS-baseline program, reference models and input generators.
Out-of-tree kernels plug into the same registry via :func:`register_kernel`,
which makes them visible to :meth:`repro.flow.Flow.from_kernel`, the
``python -m repro`` CLI and the evaluation harness alike.
"""

from typing import Callable, Dict, List

from repro.kernels import (
    convolution,
    fifo,
    gemm,
    histogram,
    matvec,
    prefix_sum,
    sorting_network,
    spmv,
    stencil1d,
    transpose,
)
from repro.kernels.base import KernelArtifacts, default_rng

KERNEL_BUILDERS: Dict[str, Callable[..., KernelArtifacts]] = {
    "transpose": transpose.build,
    "stencil_1d": stencil1d.build,
    "histogram": histogram.build,
    "gemm": gemm.build,
    "convolution": convolution.build,
    "fifo": fifo.build,
    # New workloads (beyond the paper's six), composable via repro.graph.
    "matvec": matvec.build,
    "prefix_sum": prefix_sum.build,
    "spmv": spmv.build,
    "sorting_network": sorting_network.build,
}


class UnknownKernelError(KeyError):
    """An unregistered kernel name, with the registry spelled out.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError`` callers
    keep working.
    """

    def __init__(self, name: str) -> None:
        self.kernel = name
        message = (
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(sorted(KERNEL_BUILDERS))}. Out-of-tree kernels can "
            "be added with repro.kernels.register_kernel(name, builder)."
        )
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def register_kernel(name: str,
                    builder: Callable[..., KernelArtifacts],
                    *, overwrite: bool = False,
                    ) -> Callable[..., KernelArtifacts]:
    """Register an out-of-tree kernel builder under ``name``.

    ``builder(**parameters)`` must return a :class:`KernelArtifacts`.  The
    kernel then works everywhere a built-in one does: ``build_kernel``,
    ``Flow.from_kernel``, the CLI and the validation sweep.  Returns the
    builder, so it can be used as a decorator::

        @partial(register_kernel, "fir")
        def build_fir(taps=8): ...
    """
    if not callable(builder):
        raise TypeError(f"kernel builder for {name!r} must be callable")
    if name in KERNEL_BUILDERS and not overwrite:
        raise ValueError(
            f"kernel {name!r} is already registered; pass overwrite=True to "
            "replace it"
        )
    KERNEL_BUILDERS[name] = builder
    return builder


def unregister_kernel(name: str) -> None:
    """Remove a kernel from the registry (mainly for tests)."""
    KERNEL_BUILDERS.pop(name, None)


def build_kernel(name: str, **parameters) -> KernelArtifacts:
    """Build one kernel by name with optional size parameters."""
    builder = KERNEL_BUILDERS.get(name)
    if builder is None:
        raise UnknownKernelError(name)
    return builder(**parameters)


def kernel_names() -> List[str]:
    return list(KERNEL_BUILDERS)


__all__ = [
    "KERNEL_BUILDERS",
    "KernelArtifacts",
    "UnknownKernelError",
    "build_kernel",
    "default_rng",
    "kernel_names",
    "register_kernel",
    "unregister_kernel",
    "convolution",
    "fifo",
    "gemm",
    "histogram",
    "matvec",
    "prefix_sum",
    "sorting_network",
    "spmv",
    "stencil1d",
    "transpose",
]
