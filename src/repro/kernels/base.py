"""Common infrastructure for the benchmark kernels.

Every kernel in :mod:`repro.kernels` provides the same artefacts so the
evaluation harness, the tests and the benchmarks can treat them uniformly:

* an HIR module (the design the HIR compiler consumes),
* a software-IR program with pragmas (the design the baseline HLS compiler
  consumes), matched in loop structure and pipelining to the HIR design, and
* a numpy reference implementation plus input generators for functional
  validation of the HIR-generated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.ir.module import ModuleOp
from repro.hir.types import MemrefType
from repro.hls.swir import Program


@dataclass
class KernelArtifacts:
    """Everything the harness needs to compile, run and check one kernel."""

    name: str
    #: The HIR design.
    module: ModuleOp
    #: Symbol name of the top-level function.
    top: str
    #: Memref interfaces of the top function (argument name -> type).
    interfaces: Dict[str, MemrefType] = field(default_factory=dict)
    #: Scalar arguments of the top function (argument name -> value).
    scalar_args: Dict[str, int] = field(default_factory=dict)
    #: The matching software-IR program for the baseline HLS compiler.
    hls_program: Optional[Program] = None
    #: Name of the HLS function to compile (defaults to the program's last).
    hls_function: Optional[str] = None
    #: Generate input tensors: seed -> {interface name: numpy array}.
    make_inputs: Optional[Callable[[int], Dict[str, np.ndarray]]] = None
    #: Reference model: inputs -> {output interface name: expected array}.
    reference: Optional[Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]] = None
    #: Behavioural models for external (black-box) modules, keyed by name.
    external_models: Dict[str, Callable] = field(default_factory=dict)
    #: Free-form notes (design decisions, paper correspondence).
    notes: str = ""


def default_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
