"""Common infrastructure for the benchmark kernels.

Every kernel in :mod:`repro.kernels` provides the same artefacts so the
evaluation harness, the tests and the benchmarks can treat them uniformly:

* an HIR module (the design the HIR compiler consumes),
* a software-IR program with pragmas (the design the baseline HLS compiler
  consumes), matched in loop structure and pipelining to the HIR design, and
* a numpy reference implementation plus input generators for functional
  validation of the HIR-generated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.ir.module import ModuleOp
from repro.hir.types import MemrefType
from repro.hls.swir import Program


@dataclass
class KernelArtifacts:
    """Everything the harness needs to compile, run and check one kernel."""

    name: str
    #: The HIR design.
    module: ModuleOp
    #: Symbol name of the top-level function.
    top: str
    #: Memref interfaces of the top function (argument name -> type).
    interfaces: Dict[str, MemrefType] = field(default_factory=dict)
    #: Scalar arguments of the top function (argument name -> value).
    scalar_args: Dict[str, int] = field(default_factory=dict)
    #: The matching software-IR program for the baseline HLS compiler.
    hls_program: Optional[Program] = None
    #: Name of the HLS function to compile (defaults to the program's last).
    hls_function: Optional[str] = None
    #: Generate input tensors: seed -> {interface name: numpy array}.
    make_inputs: Optional[Callable[[int], Dict[str, np.ndarray]]] = None
    #: Reference model: inputs -> {output interface name: expected array}.
    reference: Optional[Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]] = None
    #: Behavioural models for external (black-box) modules, keyed by name.
    external_models: Dict[str, Callable] = field(default_factory=dict)
    #: Output name -> leading elements the hardware does not produce (e.g.
    #: a stencil's window warm-up); comparisons skip them.
    output_warmup: Dict[str, int] = field(default_factory=dict)
    #: Free-form notes (design decisions, paper correspondence).
    notes: str = ""

    # -- simulation conveniences ------------------------------------------------
    def check_outputs(self, run, inputs) -> bool:
        """Did a simulation run reproduce the numpy reference exactly?

        Applies :attr:`output_warmup` so kernel-specific comparison quirks
        live here rather than in every caller.
        """
        from repro.flow import outputs_match  # local: layering
        if not run.done:
            return False
        return outputs_match(self.reference(inputs), run.memory_array,
                             self.output_warmup)

    #: Lazily created Flow session backing the conveniences below.  Stage
    #: caching (with content-based invalidation) lives in the Flow, so this
    #: is just a handle — not a cache of compiled state.
    _flow: Optional[object] = field(default=None, repr=False, compare=False)

    def flow(self, config=None):
        """The :class:`repro.flow.Flow` session over these artifacts.

        The default config uses ``pipeline="none"``, preserving the historic
        behaviour of the artifact helpers (simulate exactly the module as
        built, no optimization passes); pass a
        :class:`~repro.flow.FlowConfig` for anything else.  The no-config
        Flow is cached on the artifacts; its stages re-build automatically
        if :attr:`module` is mutated (content-fingerprinted), which replaces
        the old ``_design`` attribute hack that served stale designs.
        """
        from repro.flow import Flow, FlowConfig  # local: layering
        if config is not None:
            return Flow(self, config=config)
        if self._flow is None:
            self._flow = Flow(self, config=FlowConfig(pipeline="none"))
        return self._flow

    def generate_design(self):
        """Deprecated: use ``artifacts.flow().design`` (or ``.verilog()``)."""
        from repro._compat import warn_deprecated
        warn_deprecated("KernelArtifacts.generate_design()",
                        "artifacts.flow().design")
        return self.flow().design

    def simulate(self, seed: int = 0, engine: Optional[str] = None,
                 drain_cycles: int = 16, max_cycles: int = 100000):
        """Compile (cached) and simulate one stimulus set.

        Returns ``(run, inputs)`` where ``run`` is the
        :class:`~repro.sim.testbench.SimulationRun` and ``inputs`` the tensors
        generated from ``seed`` (feed them to :attr:`reference`).
        """
        outcome = self.flow().simulate(seed=seed, engine=engine,
                                       drain_cycles=drain_cycles,
                                       max_cycles=max_cycles).value
        return outcome.run, outcome.inputs

    def simulate_batch(self, seeds, drain_cycles: int = 16,
                       max_cycles: int = 100000):
        """Simulate one stimulus lane per seed with the batched engine.

        Returns ``(run, inputs_per_lane)`` where ``run`` is a
        :class:`~repro.sim.engine.batch.BatchedSimulationRun`.
        """
        outcome = self.flow().simulate_batch(seeds,
                                             drain_cycles=drain_cycles,
                                             max_cycles=max_cycles).value
        return outcome.run, outcome.inputs_per_lane


def default_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
