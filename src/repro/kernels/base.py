"""Common infrastructure for the benchmark kernels.

Every kernel in :mod:`repro.kernels` provides the same artefacts so the
evaluation harness, the tests and the benchmarks can treat them uniformly:

* an HIR module (the design the HIR compiler consumes),
* a software-IR program with pragmas (the design the baseline HLS compiler
  consumes), matched in loop structure and pipelining to the HIR design, and
* a numpy reference implementation plus input generators for functional
  validation of the HIR-generated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.ir.module import ModuleOp
from repro.hir.types import MemrefType
from repro.hls.swir import Program


@dataclass
class KernelArtifacts:
    """Everything the harness needs to compile, run and check one kernel."""

    name: str
    #: The HIR design.
    module: ModuleOp
    #: Symbol name of the top-level function.
    top: str
    #: Memref interfaces of the top function (argument name -> type).
    interfaces: Dict[str, MemrefType] = field(default_factory=dict)
    #: Scalar arguments of the top function (argument name -> value).
    scalar_args: Dict[str, int] = field(default_factory=dict)
    #: The matching software-IR program for the baseline HLS compiler.
    hls_program: Optional[Program] = None
    #: Name of the HLS function to compile (defaults to the program's last).
    hls_function: Optional[str] = None
    #: Generate input tensors: seed -> {interface name: numpy array}.
    make_inputs: Optional[Callable[[int], Dict[str, np.ndarray]]] = None
    #: Reference model: inputs -> {output interface name: expected array}.
    reference: Optional[Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]] = None
    #: Behavioural models for external (black-box) modules, keyed by name.
    external_models: Dict[str, Callable] = field(default_factory=dict)
    #: Output name -> leading elements the hardware does not produce (e.g.
    #: a stencil's window warm-up); comparisons skip them.
    output_warmup: Dict[str, int] = field(default_factory=dict)
    #: Free-form notes (design decisions, paper correspondence).
    notes: str = ""

    # -- simulation conveniences ------------------------------------------------
    def check_outputs(self, run, inputs) -> bool:
        """Did a simulation run reproduce the numpy reference exactly?

        Applies :attr:`output_warmup` so kernel-specific comparison quirks
        live here rather than in every caller.
        """
        if not run.done:
            return False
        for name, reference in self.reference(inputs).items():
            produced = np.asarray(run.memory_array(name))
            reference = np.asarray(reference)
            skip = self.output_warmup.get(name, 0)
            if skip:
                produced, reference = produced[skip:], reference[skip:]
            if not np.array_equal(produced, reference):
                return False
        return True

    def generate_design(self):
        """Compile the HIR module to a Verilog design (cached per artifacts,
        so repeated simulations share one elaboration and compilation)."""
        design = getattr(self, "_design", None)
        if design is None:
            from repro.verilog import generate_verilog  # local: layering
            design = generate_verilog(self.module, top=self.top).design
            self._design = design
        return design

    def simulate(self, seed: int = 0, engine: Optional[str] = None,
                 drain_cycles: int = 16, max_cycles: int = 100000):
        """Compile (cached) and simulate one stimulus set.

        Returns ``(run, inputs)`` where ``run`` is the
        :class:`~repro.sim.testbench.SimulationRun` and ``inputs`` the tensors
        generated from ``seed`` (feed them to :attr:`reference`).
        """
        from repro.sim import run_design  # local: layering
        inputs = self.make_inputs(seed)
        run = run_design(
            self.generate_design(),
            memories={name: (memref_type, inputs[name])
                      for name, memref_type in self.interfaces.items()},
            scalar_inputs=self.scalar_args,
            external_models=self.external_models or None,
            drain_cycles=drain_cycles,
            max_cycles=max_cycles,
            engine=engine,
        )
        return run, inputs

    def simulate_batch(self, seeds, drain_cycles: int = 16,
                       max_cycles: int = 100000):
        """Simulate one stimulus lane per seed with the batched engine.

        Returns ``(run, inputs_per_lane)`` where ``run`` is a
        :class:`~repro.sim.engine.batch.BatchedSimulationRun`.
        """
        from repro.sim import run_design_batch  # local: layering
        inputs_per_lane = [self.make_inputs(seed) for seed in seeds]
        run = run_design_batch(
            self.generate_design(),
            memories={name: (memref_type,
                             [inputs[name] for inputs in inputs_per_lane])
                      for name, memref_type in self.interfaces.items()},
            scalar_inputs=self.scalar_args,
            external_models=self.external_models or None,
            drain_cycles=drain_cycles,
            max_cycles=max_cycles,
        )
        return run, inputs_per_lane


def default_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
