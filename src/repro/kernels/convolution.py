"""Two-dimensional convolution with constant weights (Tables 5 and 6).

A 3x3 constant-coefficient filter slides over the input image; every output
pixel is computed by nine scheduled reads through the single input port
(initiation interval 9), constant multiplications (shift/add fabric, no DSPs
— matching the zero DSP count of the paper's convolution row) and a balanced
adder/delay tree that re-aligns the partial products before the accumulated
result is written out.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng

#: The constant 3x3 filter (an integer Gaussian blur).
WEIGHTS: Tuple[Tuple[int, ...], ...] = ((1, 2, 1), (2, 4, 2), (1, 2, 1))
_TAPS = [(ki, kj, WEIGHTS[ki][kj]) for ki in range(3) for kj in range(3)]
_WINDOW = len(_TAPS)  # 9 reads -> II = 9


def build_hir(size: int = 16) -> DesignBuilder:
    out_size = size - 2
    design = DesignBuilder("convolution_design")
    in_type = MemrefType((size, size), I32, port="r")
    out_type = MemrefType((out_size, out_size), I32, port="w")
    with design.func("convolution", [("img", in_type), ("out", out_type)]) as f:
        with f.for_loop(0, out_size, 1, time=f.time, iter_offset=1,
                        iv_name="oi") as row_loop:
            with f.for_loop(0, out_size, 1, time=row_loop.time, iter_offset=1,
                            iv_name="oj") as col_loop:
                partials: List = []
                for index, (ki, kj, weight) in enumerate(_TAPS):
                    in_row = f.add(row_loop.iv, ki) if ki else row_loop.iv
                    in_col = f.add(col_loop.iv, kj) if kj else col_loop.iv
                    pixel = f.mem_read(f.arg("img"), [in_row, in_col],
                                       time=col_loop.time, offset=index)
                    weighted = f.mult(pixel, weight)
                    # Re-align every partial product to cycle II (= 9).
                    lag = _WINDOW - (index + 1)
                    aligned = (f.delay(weighted, lag, time=col_loop.time,
                                       offset=index + 1) if lag else weighted)
                    partials.append(aligned)
                total = partials[0]
                for partial in partials[1:]:
                    total = f.add(total, partial)
                col_delayed = f.delay(col_loop.iv, _WINDOW, time=col_loop.time)
                f.mem_write(total, f.arg("out"), [row_loop.iv, col_delayed],
                            time=col_loop.time, offset=_WINDOW)
                f.yield_(col_loop.time, offset=_WINDOW)
            f.yield_(col_loop.done, offset=1)
        f.return_()
    return design


def build_hls(size: int = 16):
    out_size = size - 2
    sw = SwBuilder("convolution_hls")
    function = sw.function(
        "convolution",
        [
            Param("img", shape=(size, size), direction="in"),
            Param("out", shape=(out_size, out_size), direction="out"),
        ],
    )
    inner = sw.for_loop("oj", 0, out_size, pipeline=True)
    body = []
    acc_expr = None
    for index, (ki, kj, weight) in enumerate(_TAPS):
        name = f"p{index}"
        body.append(sw.load(name, "img", sw.add("oi", ki), sw.add("oj", kj)))
        term = sw.mul(name, weight)
        acc_expr = term if acc_expr is None else sw.add(acc_expr, term)
    body.append(sw.assign("acc", acc_expr))
    body.append(sw.store("out", Var("acc"), Var("oi"), Var("oj")))
    inner.body = body
    outer = sw.for_loop("oi", 0, out_size)
    outer.body = [inner]
    function.body = [outer]
    return sw.program


def build(size: int = 16) -> KernelArtifacts:
    out_size = size - 2
    design = build_hir(size)
    in_type = MemrefType((size, size), I32, port="r")
    out_type = MemrefType((out_size, out_size), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"img": rng.integers(0, 256, size=(size, size)),
                "out": np.zeros((out_size, out_size), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        image = np.asarray(inputs["img"], dtype=np.int64)
        out = np.zeros((out_size, out_size), dtype=np.int64)
        kernel = np.asarray(WEIGHTS, dtype=np.int64)
        for oi in range(out_size):
            for oj in range(out_size):
                out[oi, oj] = np.sum(image[oi:oi + 3, oj:oj + 3] * kernel)
        return {"out": out}

    return KernelArtifacts(
        name="convolution",
        module=design.module,
        top="convolution",
        interfaces={"img": in_type, "out": out_type},
        hls_program=build_hls(size),
        hls_function="convolution",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"3x3 constant-weight convolution over a {size}x{size} image, "
               f"inner loop II={_WINDOW} (single input port)"),
    )
