"""FIFO stream buffer (the "FIFO (Verilog)" row of Table 5).

The paper compares an HIR FIFO against a hand-written Verilog FIFO.  Two
artefacts are therefore provided:

* :func:`build` — the HIR design: a producer loop streams the input into an
  on-chip block-RAM buffer and a consumer loop, started a fixed number of
  cycles later, streams it out again.  The two loops run in lock step with no
  handshake — the deterministic, synchronization-free task-level parallelism
  of Section 5.3 — so the buffer behaves exactly like a flow-through FIFO.
* :func:`build_verilog_fifo` — the hand-written Verilog baseline: a classic
  circular-buffer FIFO with read/write pointers, occupancy counter and
  full/empty flags.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.kernels.base import KernelArtifacts, default_rng
from repro.verilog.ast import (
    BinOp,
    Const,
    Design,
    If,
    INPUT,
    MemIndex,
    MemWrite,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
    UnOp,
)

#: Buffer depth of both the HIR and the hand-written design.
DEPTH = 512
#: How many cycles after the producer the consumer starts (covers the
#: interface-read plus buffer-write latency of the producer loop).
CONSUMER_LAG = 4


def build_hir(depth: int = DEPTH) -> DesignBuilder:
    design = DesignBuilder("fifo_design")
    in_type = MemrefType((depth,), I32, port="r")
    out_type = MemrefType((depth,), I32, port="w")
    with design.func("fifo_stream", [("din", in_type), ("dout", out_type)]) as f:
        buffer_r, buffer_w = f.alloc((depth,), I32, ports=("r", "w"),
                                     mem_kind="bram", name="fifo_buf")
        # Producer: one element per cycle from the input interface.
        with f.for_loop(0, depth, 1, time=f.time, iter_offset=1,
                        iv_name="wp") as producer:
            value = f.mem_read(f.arg("din"), [producer.iv], time=producer.time)
            write_index = f.delay(producer.iv, 1, time=producer.time)
            f.mem_write(value, buffer_w, [write_index], time=producer.time,
                        offset=1)
            f.yield_(producer.time, offset=1)
        # Consumer: starts CONSUMER_LAG cycles later, one element per cycle.
        with f.for_loop(0, depth, 1, time=f.time, iter_offset=1 + CONSUMER_LAG,
                        iv_name="rp") as consumer:
            value = f.mem_read(buffer_r, [consumer.iv], time=consumer.time)
            read_index = f.delay(consumer.iv, 1, time=consumer.time)
            f.mem_write(value, f.arg("dout"), [read_index], time=consumer.time,
                        offset=1)
            f.yield_(consumer.time, offset=1)
        f.return_()
    return design


def build_verilog_fifo(depth: int = DEPTH, width: int = 32) -> Design:
    """The hand-written Verilog FIFO the paper uses as its baseline."""
    address_width = max(1, (depth - 1).bit_length())
    module = Module("fifo")
    module.header_comments.append(
        f"hand-written circular-buffer FIFO: depth={depth}, width={width}"
    )
    module.add_port("clk", INPUT, 1)
    module.add_port("rst", INPUT, 1)
    module.add_port("wr_en", INPUT, 1)
    module.add_port("wr_data", INPUT, width)
    module.add_port("rd_en", INPUT, 1)
    module.add_port("rd_data", OUTPUT, width)
    module.add_port("full", OUTPUT, 1)
    module.add_port("empty", OUTPUT, 1)

    module.add_memory("mem", width, depth, kind="bram")
    module.add_reg("wr_ptr", address_width)
    module.add_reg("rd_ptr", address_width)
    module.add_reg("count", address_width + 1)
    module.add_reg("rd_data_reg", width)

    module.add_assign("full", BinOp("==", Ref("count"), Const(depth, address_width + 1)))
    module.add_assign("empty", BinOp("==", Ref("count"), Const(0, address_width + 1)))
    module.add_assign("rd_data", Ref("rd_data_reg"))

    push = BinOp("&", Ref("wr_en"), UnOp("!", Ref("full")))
    pop = BinOp("&", Ref("rd_en"), UnOp("!", Ref("empty")))
    module.add_wire("do_push", 1)
    module.add_wire("do_pop", 1)
    module.add_assign("do_push", push)
    module.add_assign("do_pop", pop)

    clocked = module.add_always()
    clocked.body.append(
        If(Ref("do_push"), [
            MemWrite("mem", Ref("wr_ptr"), Ref("wr_data")),
            NonBlockingAssign("wr_ptr", BinOp("+", Ref("wr_ptr"), Const(1, address_width))),
        ])
    )
    clocked.body.append(
        If(Ref("do_pop"), [
            NonBlockingAssign("rd_data_reg", MemIndex("mem", Ref("rd_ptr"))),
            NonBlockingAssign("rd_ptr", BinOp("+", Ref("rd_ptr"), Const(1, address_width))),
        ])
    )
    clocked.body.append(
        If(BinOp("&", Ref("do_push"), UnOp("!", Ref("do_pop"))),
           [NonBlockingAssign("count", BinOp("+", Ref("count"), Const(1, address_width + 1)))],
           [If(BinOp("&", Ref("do_pop"), UnOp("!", Ref("do_push"))),
               [NonBlockingAssign("count", BinOp("-", Ref("count"), Const(1, address_width + 1)))])])
    )

    design = Design(top="fifo")
    design.add(module)
    return design


def build(depth: int = DEPTH) -> KernelArtifacts:
    design = build_hir(depth)
    in_type = MemrefType((depth,), I32, port="r")
    out_type = MemrefType((depth,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"din": rng.integers(-10000, 10000, size=(depth,)),
                "dout": np.zeros((depth,), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"dout": np.asarray(inputs["din"], dtype=np.int64)}

    return KernelArtifacts(
        name="fifo",
        module=design.module,
        top="fifo_stream",
        interfaces={"din": in_type, "dout": out_type},
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"flow-through FIFO of depth {depth}: producer and consumer "
               "loops overlapped in lock step (no handshake); baseline is a "
               "hand-written Verilog circular-buffer FIFO"),
    )
