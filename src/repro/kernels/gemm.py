"""General matrix-matrix multiplication on a lockstep PE array
(Section 7.3 and Tables 5 / 6 of the paper).

Architecture (following the paper's GEMM description):

* The input matrices are loaded from their memory interfaces into on-chip
  local buffers implemented as banked distributed RAM (``A_buf`` is banked by
  row, ``B_buf`` by column), one interface read per cycle.
* A two-dimensional array of processing elements, described with nested
  ``hir.unroll_for`` loops, computes all ``N x N`` dot products.  All PEs run
  in lockstep: in cycle ``k`` every PE in row ``i`` reads ``A_buf[i][k]`` and
  every PE in column ``j`` reads ``B_buf[k][j]`` — parallel reads of the same
  bank are legal because they use the same address (Section 4.5).
* Each PE accumulates into a private register and stores its final result in
  a fully distributed result buffer; a staggered write-back phase then streams
  the results out through the single output interface port.

Resource correspondence: each PE has one 32x32 variable multiplier, i.e.
three DSP slices in the resource model, so the default 16x16 array uses the
768 DSPs Table 5 reports; the local buffers map to distributed RAM as in the
paper.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import LocalArray, Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(size: int = 16) -> DesignBuilder:
    design = DesignBuilder("gemm_design")
    a_type = MemrefType((size, size), I32, port="r")
    b_type = MemrefType((size, size), I32, port="r")
    c_type = MemrefType((size, size), I32, port="w")
    load_cycles = size * size + 6
    compute_cycles = size + 8
    with design.func("gemm", [("A", a_type), ("B", b_type), ("C", c_type)]) as f:
        # A_buf: banked by row (packed along k); B_buf: banked by column.
        a_buf_r, a_buf_w = f.alloc((size, size), I32, ports=("r", "w"),
                                   packing=[0], name="A_buf")
        b_buf_r, b_buf_w = f.alloc((size, size), I32, ports=("r", "w"),
                                   packing=[1], name="B_buf")
        # Result buffer: one register per element, written by its PE.
        c_buf_r, c_buf_w = f.alloc((size, size), I32, ports=("r", "w"),
                                   packing=[], name="C_buf")

        # ---- load phase: rows of A (one interface read per cycle) -----------
        with f.unroll_for(0, size, 1, time=f.time, iter_offset=1,
                          iv_name="li") as load_row:
            f.yield_(load_row.time, offset=size)
            with f.for_loop(0, size, 1, time=load_row.time, iter_offset=0,
                            iv_name="lk") as load_k:
                element = f.mem_read(f.arg("A"), [load_row.iv, load_k.iv],
                                     time=load_k.time)
                k_delayed = f.delay(load_k.iv, 1, time=load_k.time)
                f.mem_write(element, a_buf_w, [load_row.iv, k_delayed],
                            time=load_k.time, offset=1)
                f.yield_(load_k.time, offset=1)

        # ---- load phase: columns of B (its own interface, runs concurrently) -
        with f.unroll_for(0, size, 1, time=f.time, iter_offset=1,
                          iv_name="lj") as load_col:
            f.yield_(load_col.time, offset=size)
            with f.for_loop(0, size, 1, time=load_col.time, iter_offset=0,
                            iv_name="lkb") as load_kb:
                element = f.mem_read(f.arg("B"), [load_kb.iv, load_col.iv],
                                     time=load_kb.time)
                kb_delayed = f.delay(load_kb.iv, 1, time=load_kb.time)
                f.mem_write(element, b_buf_w, [kb_delayed, load_col.iv],
                            time=load_kb.time, offset=1)
                f.yield_(load_kb.time, offset=1)

        # ---- compute phase: N x N PEs in lockstep ----------------------------
        with f.unroll_for(0, size, 1, time=f.time, iter_offset=load_cycles,
                          iv_name="pi") as pe_row:
            f.yield_(pe_row.time, offset=0)
            with f.unroll_for(0, size, 1, time=pe_row.time, iv_name="pj") as pe_col:
                f.yield_(pe_col.time, offset=0)
                acc_r, acc_w = f.alloc((1,), I32, ports=("r", "w"), packing=[],
                                       name="acc")
                f.mem_write(0, acc_w, [0], time=pe_col.time)
                with f.for_loop(0, size, 1, time=pe_col.time, iter_offset=1,
                                iv_name="k") as mac:
                    a_value = f.mem_read(a_buf_r, [pe_row.iv, mac.iv],
                                         time=mac.time)
                    b_value = f.mem_read(b_buf_r, [mac.iv, pe_col.iv],
                                         time=mac.time)
                    product = f.mult(a_value, b_value)
                    running = f.mem_read(acc_r, [0], time=mac.time, offset=1)
                    updated = f.add(product, running)
                    f.mem_write(updated, acc_w, [0], time=mac.time, offset=1)
                    f.yield_(mac.time, offset=1)
                total = f.mem_read(acc_r, [0], time=mac.done, offset=1)
                f.mem_write(total, c_buf_w, [pe_row.iv, pe_col.iv],
                            time=mac.done, offset=1)

        # ---- write-back phase: stream the result registers out ----------------
        writeback_offset = load_cycles + compute_cycles
        with f.unroll_for(0, size, 1, time=f.time, iter_offset=writeback_offset,
                          iv_name="wi") as out_row:
            f.yield_(out_row.time, offset=size)
            with f.unroll_for(0, size, 1, time=out_row.time, iv_name="wj") as out_col:
                f.yield_(out_col.time, offset=1)
                value = f.mem_read(c_buf_r, [out_row.iv, out_col.iv],
                                   time=out_col.time)
                f.mem_write(value, f.arg("C"), [out_row.iv, out_col.iv],
                            time=out_col.time)
        f.return_()
    return design


def build_hls(size: int = 16):
    """The HLS-baseline GEMM with the same parallelism as the HIR PE array.

    The paper matches the amount of unrolling between the two compilers: the
    ``i`` and ``j`` loops are fully unrolled (written out explicitly here, the
    effect of ``#pragma HLS unroll``) so every ``k`` iteration performs
    ``size*size`` multiply-accumulates, and the local buffers are partitioned
    so one row / column can be read per cycle.
    """
    sw = SwBuilder("gemm_hls")
    function = sw.function(
        "gemm",
        [
            Param("A", shape=(size, size), direction="in",
                  partition_factor=size),
            Param("B", shape=(size, size), direction="in",
                  partition_factor=size),
            Param("C", shape=(size, size), direction="out"),
        ],
        locals_=[
            LocalArray("A_buf", (size, size), partition_factor=size),
            LocalArray("B_buf", (size, size), partition_factor=size),
        ],
    )
    load_a = sw.for_loop("la", 0, size * size, pipeline=True, ii=1)
    load_a.body = [sw.load("va", "A", Var("la")),
                   sw.store("A_buf", Var("va"), Var("la"))]
    load_b = sw.for_loop("lb", 0, size * size, pipeline=True, ii=1)
    load_b.body = [sw.load("vb", "B", Var("lb")),
                   sw.store("B_buf", Var("vb"), Var("lb"))]
    # k loop: fully unrolled i/j bodies (size*size MACs per iteration).
    inner = sw.for_loop("k", 0, size, pipeline=True, ii=1)
    body = []
    for i in range(size):
        body.append(sw.load(f"a{i}", "A_buf", i, Var("k")))
    for j in range(size):
        body.append(sw.load(f"b{j}", "B_buf", Var("k"), j))
    for i in range(size):
        for j in range(size):
            accumulator = f"acc_{i}_{j}"
            body.append(
                sw.assign(accumulator,
                          sw.add(accumulator, sw.mul(f"a{i}", f"b{j}")))
            )
    inner.body = body
    # Write-back of the accumulator matrix.
    writeback = sw.for_loop("w", 0, size * size, pipeline=True, ii=1)
    writeback.body = [sw.store("C", Var("acc_0_0"), Var("w"))]
    function.body = [load_a, load_b, inner, writeback]
    return sw.program


def build(size: int = 16) -> KernelArtifacts:
    design = build_hir(size)
    a_type = MemrefType((size, size), I32, port="r")
    b_type = MemrefType((size, size), I32, port="r")
    c_type = MemrefType((size, size), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {
            "A": rng.integers(-50, 50, size=(size, size)),
            "B": rng.integers(-50, 50, size=(size, size)),
            "C": np.zeros((size, size), dtype=np.int64),
        }

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        a = np.asarray(inputs["A"], dtype=np.int64)
        b = np.asarray(inputs["B"], dtype=np.int64)
        return {"C": a @ b}

    return KernelArtifacts(
        name="gemm",
        module=design.module,
        top="gemm",
        interfaces={"A": a_type, "B": b_type, "C": c_type},
        hls_program=build_hls(size),
        hls_function="gemm",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{size}x{size} integer GEMM on a {size}x{size} lockstep PE "
               "array; banked distributed-RAM input buffers, MAC loops "
               "pipelined at II=1, staggered write-back"),
    )
