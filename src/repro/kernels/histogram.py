"""Histogram of an image (Table 5 and 6 of the paper).

The kernel demonstrates data-dependent memory accesses: the pixel value read
from the image addresses the on-chip histogram buffer (a block RAM), which is
read, incremented and written back.  The read-modify-write recurrence forces
an initiation interval of three on the update loop; the clear and write-back
loops are pipelined at II=1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import Param, LocalArray, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(pixels: int = 256, bins: int = 256) -> DesignBuilder:
    design = DesignBuilder("histogram_design")
    image_type = MemrefType((pixels,), I32, port="r")
    out_type = MemrefType((bins,), I32, port="w")
    with design.func("histogram", [("img", image_type), ("hist", out_type)]) as f:
        local_r, local_w = f.alloc((bins,), I32, ports=("r", "w"),
                                   mem_kind="bram", name="bins")
        # Phase 1: clear the local histogram (II = 1).
        with f.for_loop(0, bins, 1, time=f.time, iter_offset=1,
                        iv_name="b") as clear:
            f.mem_write(0, local_w, [clear.iv], time=clear.time)
            f.yield_(clear.time, offset=1)
        # Phase 2: accumulate (II = 3 because of the read-modify-write).
        with f.for_loop(0, pixels, 1, time=clear.done, iter_offset=2,
                        iv_name="p") as update:
            pixel = f.mem_read(f.arg("img"), [update.iv], time=update.time)
            count = f.mem_read(local_r, [pixel], time=update.time, offset=1)
            incremented = f.add(count, 1)
            pixel_delayed = f.delay(pixel, 1, time=update.time, offset=1)
            f.mem_write(incremented, local_w, [pixel_delayed], time=update.time,
                        offset=2)
            f.yield_(update.time, offset=3)
        # Phase 3: write the final histogram to the output interface (II = 1).
        with f.for_loop(0, bins, 1, time=update.done, iter_offset=2,
                        iv_name="o") as flush:
            value = f.mem_read(local_r, [flush.iv], time=flush.time)
            index_delayed = f.delay(flush.iv, 1, time=flush.time)
            f.mem_write(value, f.arg("hist"), [index_delayed], time=flush.time,
                        offset=1)
            f.yield_(flush.time, offset=1)
        f.return_()
    return design


def build_hls(pixels: int = 256, bins: int = 256):
    sw = SwBuilder("histogram_hls")
    function = sw.function(
        "histogram",
        [
            Param("img", shape=(pixels,), direction="in"),
            Param("hist", shape=(bins,), direction="out"),
        ],
        locals_=[LocalArray("bins_buf", (bins,))],
    )
    clear = sw.for_loop("b", 0, bins, pipeline=True, ii=1)
    clear.body = [sw.store("bins_buf", 0, Var("b"))]
    update = sw.for_loop("p", 0, pixels, pipeline=True)
    update.body = [
        sw.load("pix", "img", Var("p")),
        sw.load("cnt", "bins_buf", Var("pix")),
        sw.assign("cnt1", sw.add("cnt", 1)),
        sw.store("bins_buf", Var("cnt1"), Var("pix")),
    ]
    flush = sw.for_loop("o", 0, bins, pipeline=True, ii=1)
    flush.body = [
        sw.load("val", "bins_buf", Var("o")),
        sw.store("hist", Var("val"), Var("o")),
    ]
    function.body = [clear, update, flush]
    return sw.program


def build(pixels: int = 256, bins: int = 256) -> KernelArtifacts:
    design = build_hir(pixels, bins)
    image_type = MemrefType((pixels,), I32, port="r")
    out_type = MemrefType((bins,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"img": rng.integers(0, bins, size=(pixels,)),
                "hist": np.zeros((bins,), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        counts = np.bincount(np.asarray(inputs["img"], dtype=np.int64),
                             minlength=bins)[:bins]
        return {"hist": counts.astype(np.int64)}

    return KernelArtifacts(
        name="histogram",
        module=design.module,
        top="histogram",
        interfaces={"img": image_type, "hist": out_type},
        hls_program=build_hls(pixels, bins),
        hls_function="histogram",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{pixels}-pixel histogram with {bins} bins in one block RAM; "
               "data-dependent addressing; update loop II=3"),
    )
