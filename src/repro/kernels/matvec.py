"""Matrix-vector multiplication (a new workload beyond the paper's six).

Row-major ``y = A @ x`` with a block-RAM accumulator: the inner dot-product
loop reads one matrix element and one vector element per iteration and
accumulates into ``acc[i]`` with the histogram kernel's read-modify-write
idiom (II = 2 — the accumulator write of iteration ``k`` must commit before
iteration ``k+1`` reads it back).  A ``k == 0`` select seeds the
accumulator, so no clear phase is needed; a pipelined flush loop streams the
finished accumulator out through the output interface at II = 1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import LocalArray, Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(size: int = 16) -> DesignBuilder:
    design = DesignBuilder("matvec_design")
    a_type = MemrefType((size, size), I32, port="r")
    x_type = MemrefType((size,), I32, port="r")
    y_type = MemrefType((size,), I32, port="w")
    with design.func("matvec", [("A", a_type), ("x", x_type),
                                ("y", y_type)]) as f:
        acc_r, acc_w = f.alloc((size,), I32, ports=("r", "w"),
                               mem_kind="bram", name="acc")
        # Dot products: for each row i, accumulate A[i,k] * x[k] (II = 2).
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1,
                        iv_name="i") as row:
            with f.for_loop(0, size, 1, time=row.time, iter_offset=1,
                            iv_name="k") as mac:
                a_value = f.mem_read(f.arg("A"), [row.iv, mac.iv],
                                     time=mac.time)
                x_value = f.mem_read(f.arg("x"), [mac.iv], time=mac.time)
                running = f.mem_read(acc_r, [row.iv], time=mac.time)
                product = f.mult(a_value, x_value)
                accumulated = f.add(product, running)
                k_delayed = f.delay(mac.iv, 1, time=mac.time)
                first = f.cmp("eq", k_delayed, 0)
                updated = f.select(first, product, accumulated)
                f.mem_write(updated, acc_w, [row.iv], time=mac.time, offset=1)
                f.yield_(mac.time, offset=2)
            f.yield_(mac.done, offset=1)
        # Flush: stream the accumulator out (II = 1).
        with f.for_loop(0, size, 1, time=row.done, iter_offset=1,
                        iv_name="o") as flush:
            value = f.mem_read(acc_r, [flush.iv], time=flush.time)
            index_delayed = f.delay(flush.iv, 1, time=flush.time)
            f.mem_write(value, f.arg("y"), [index_delayed], time=flush.time,
                        offset=1)
            f.yield_(flush.time, offset=1)
        f.return_()
    return design


def build_hls(size: int = 16):
    sw = SwBuilder("matvec_hls")
    function = sw.function(
        "matvec",
        [
            Param("A", shape=(size, size), direction="in"),
            Param("x", shape=(size,), direction="in"),
            Param("y", shape=(size,), direction="out"),
        ],
        locals_=[LocalArray("acc_buf", (size,))],
    )
    inner = sw.for_loop("k", 0, size, pipeline=True)
    inner.body = [
        sw.load("a", "A", Var("i"), Var("k")),
        sw.load("xv", "x", Var("k")),
        sw.load("run", "acc_buf", Var("i")),
        sw.assign("upd", sw.add(sw.mul("a", "xv"), "run")),
        sw.store("acc_buf", Var("upd"), Var("i")),
    ]
    outer = sw.for_loop("i", 0, size)
    outer.body = [sw.store("acc_buf", 0, Var("i")), inner]
    flush = sw.for_loop("o", 0, size, pipeline=True, ii=1)
    flush.body = [
        sw.load("val", "acc_buf", Var("o")),
        sw.store("y", Var("val"), Var("o")),
    ]
    function.body = [outer, flush]
    return sw.program


def build(size: int = 16) -> KernelArtifacts:
    design = build_hir(size)
    a_type = MemrefType((size, size), I32, port="r")
    x_type = MemrefType((size,), I32, port="r")
    y_type = MemrefType((size,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {
            "A": rng.integers(-50, 50, size=(size, size)),
            "x": rng.integers(-50, 50, size=(size,)),
            "y": np.zeros((size,), dtype=np.int64),
        }

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        a = np.asarray(inputs["A"], dtype=np.int64)
        x = np.asarray(inputs["x"], dtype=np.int64)
        return {"y": a @ x}

    return KernelArtifacts(
        name="matvec",
        module=design.module,
        top="matvec",
        interfaces={"A": a_type, "x": x_type, "y": y_type},
        hls_program=build_hls(size),
        hls_function="matvec",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{size}x{size} matrix-vector product; block-RAM accumulator "
               "updated read-modify-write at II=2, flush loop at II=1"),
    )
