"""Inclusive prefix sum / scan (a new workload beyond the paper's six).

``out[i] = in[0] + ... + in[i]`` with the running total held in a single
register (a fully distributed one-element memref, read combinationally like
the stencil kernel's window).  The loop is pipelined at II = 1: one element
enters and one partial sum leaves every cycle.  An ``i == 0`` select seeds
the register, so the kernel does not depend on power-on register state —
important when it runs mid-stream inside a composed design.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(size: int = 64) -> DesignBuilder:
    design = DesignBuilder("prefix_sum_design")
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")
    with design.func("prefix_sum", [("xs", in_type), ("sums", out_type)]) as f:
        total_r, total_w = f.alloc((1,), I32, ports=("r", "w"), packing=[],
                                   name="total")
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1,
                        iv_name="i") as loop:
            value = f.mem_read(f.arg("xs"), [loop.iv], time=loop.time)
            running = f.mem_read(total_r, [0], time=loop.time, offset=1)
            accumulated = f.add(value, running)
            index_delayed = f.delay(loop.iv, 1, time=loop.time)
            first = f.cmp("eq", index_delayed, 0)
            updated = f.select(first, value, accumulated)
            f.mem_write(updated, total_w, [0], time=loop.time, offset=1)
            f.mem_write(updated, f.arg("sums"), [index_delayed],
                        time=loop.time, offset=1)
            f.yield_(loop.time, offset=1)
        f.return_()
    return design


def build_hls(size: int = 64):
    sw = SwBuilder("prefix_sum_hls")
    function = sw.function(
        "prefix_sum",
        [
            Param("xs", shape=(size,), direction="in"),
            Param("sums", shape=(size,), direction="out"),
        ],
    )
    loop = sw.for_loop("i", 0, size, pipeline=True)
    loop.body = [
        sw.load("v", "xs", Var("i")),
        sw.assign("total", sw.add("total", "v")),
        sw.store("sums", Var("total"), Var("i")),
    ]
    function.body = [loop]
    return sw.program


def build(size: int = 64) -> KernelArtifacts:
    design = build_hir(size)
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"xs": rng.integers(-1000, 1000, size=(size,)),
                "sums": np.zeros((size,), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"sums": np.cumsum(np.asarray(inputs["xs"], dtype=np.int64))}

    return KernelArtifacts(
        name="prefix_sum",
        module=design.module,
        top="prefix_sum",
        interfaces={"xs": in_type, "sums": out_type},
        hls_program=build_hls(size),
        hls_function="prefix_sum",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{size}-element inclusive scan: register-held running total, "
               "pipelined at II=1, seeded by an i==0 select"),
    )
