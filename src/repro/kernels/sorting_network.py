"""Odd-even transposition sorting network (new workload).

A fixed-size sorting network is pure spatial hardware: the input vector is
streamed into a fully distributed register file, ``n`` rounds of
compare-exchange stages (round ``r`` swaps the odd or even adjacent pairs)
run one round per cycle, and the sorted register file is streamed back out.
Every stage is generated at build time with Python loops — all indices are
compile-time constants, so each register is read combinationally and written
by at most one comparator per cycle.  Latency is exactly ``3n + 1`` cycles
regardless of the data.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.kernels.base import KernelArtifacts, default_rng

#: Generated comparisons are unsigned; adding 2^31 to both operands turns an
#: unsigned ``<=`` into a signed one (two's-complement order shift).
SIGN_BIAS = 1 << 31


def build_hir(size: int = 8) -> DesignBuilder:
    design = DesignBuilder("sorting_network_design")
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")
    with design.func("sort_network", [("xs", in_type),
                                      ("sorted", out_type)]) as f:
        lanes_r, lanes_w = f.alloc((size,), I32, ports=("r", "w"), packing=[],
                                   name="lane")
        # Load: one element per cycle from the input interface.
        for index in range(size):
            value = f.mem_read(f.arg("xs"), [index], time=f.time, offset=index)
            f.mem_write(value, lanes_w, [index], time=f.time, offset=index + 1)
        # Compare-exchange rounds: one round per cycle, odd/even pairs.
        base = size + 1
        for round_index in range(size):
            cycle = base + round_index
            for left in range(round_index % 2, size - 1, 2):
                a = f.mem_read(lanes_r, [left], time=f.time, offset=cycle)
                b = f.mem_read(lanes_r, [left + 1], time=f.time, offset=cycle)
                ordered = f.cmp("le", f.add(a, SIGN_BIAS), f.add(b, SIGN_BIAS))
                low = f.select(ordered, a, b)
                high = f.select(ordered, b, a)
                f.mem_write(low, lanes_w, [left], time=f.time, offset=cycle)
                f.mem_write(high, lanes_w, [left + 1], time=f.time,
                            offset=cycle)
        # Drain: one sorted element per cycle to the output interface.
        drain = base + size
        for index in range(size):
            value = f.mem_read(lanes_r, [index], time=f.time,
                               offset=drain + index)
            f.mem_write(value, f.arg("sorted"), [index], time=f.time,
                        offset=drain + index)
        f.return_()
    return design


def build(size: int = 8) -> KernelArtifacts:
    design = build_hir(size)
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"xs": rng.integers(-1000, 1000, size=(size,)),
                "sorted": np.zeros((size,), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"sorted": np.sort(np.asarray(inputs["xs"], dtype=np.int64))}

    return KernelArtifacts(
        name="sorting_network",
        module=design.module,
        top="sort_network",
        interfaces={"xs": in_type, "sorted": out_type},
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{size}-lane odd-even transposition sorting network: "
               f"register lanes, {size} compare-exchange rounds, one round "
               "per cycle; no HLS-baseline program (the software IR has no "
               "select), like the hand-written fifo baseline"),
    )
