"""Sparse matrix-vector multiplication, ELLPACK format (new workload).

The matrix is stored ELL-style: ``values[i, k]`` holds the k-th nonzero of
row ``i`` and ``cols[i, k]`` its column, with every row padded to the same
``nnz`` nonzeros (padding entries have value 0).  The kernel combines the
histogram kernel's data-dependent addressing — the loaded column index
addresses the dense vector — with the matvec kernel's read-modify-write
accumulator; the address indirection stretches the update recurrence to
II = 3.  A flush loop streams the accumulator out at II = 1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import LocalArray, Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(rows: int = 16, nnz: int = 4) -> DesignBuilder:
    design = DesignBuilder("spmv_design")
    values_type = MemrefType((rows, nnz), I32, port="r")
    cols_type = MemrefType((rows, nnz), I32, port="r")
    x_type = MemrefType((rows,), I32, port="r")
    y_type = MemrefType((rows,), I32, port="w")
    with design.func("spmv", [("vals", values_type), ("cols", cols_type),
                              ("x", x_type), ("y", y_type)]) as f:
        acc_r, acc_w = f.alloc((rows,), I32, ports=("r", "w"),
                               mem_kind="bram", name="acc")
        with f.for_loop(0, rows, 1, time=f.time, iter_offset=1,
                        iv_name="i") as row:
            with f.for_loop(0, nnz, 1, time=row.time, iter_offset=1,
                            iv_name="k") as mac:
                column = f.mem_read(f.arg("cols"), [row.iv, mac.iv],
                                    time=mac.time)
                value = f.mem_read(f.arg("vals"), [row.iv, mac.iv],
                                   time=mac.time)
                # The loaded column addresses the dense vector (indirection).
                x_value = f.mem_read(f.arg("x"), [column], time=mac.time,
                                     offset=1)
                value_delayed = f.delay(value, 1, time=mac.time, offset=1)
                product = f.mult(value_delayed, x_value)
                running = f.mem_read(acc_r, [row.iv], time=mac.time, offset=1)
                accumulated = f.add(product, running)
                k_delayed = f.delay(mac.iv, 2, time=mac.time)
                first = f.cmp("eq", k_delayed, 0)
                updated = f.select(first, product, accumulated)
                f.mem_write(updated, acc_w, [row.iv], time=mac.time, offset=2)
                f.yield_(mac.time, offset=3)
            f.yield_(mac.done, offset=1)
        with f.for_loop(0, rows, 1, time=row.done, iter_offset=1,
                        iv_name="o") as flush:
            value = f.mem_read(acc_r, [flush.iv], time=flush.time)
            index_delayed = f.delay(flush.iv, 1, time=flush.time)
            f.mem_write(value, f.arg("y"), [index_delayed], time=flush.time,
                        offset=1)
            f.yield_(flush.time, offset=1)
        f.return_()
    return design


def build_hls(rows: int = 16, nnz: int = 4):
    sw = SwBuilder("spmv_hls")
    function = sw.function(
        "spmv",
        [
            Param("vals", shape=(rows, nnz), direction="in"),
            Param("cols", shape=(rows, nnz), direction="in"),
            Param("x", shape=(rows,), direction="in"),
            Param("y", shape=(rows,), direction="out"),
        ],
        locals_=[LocalArray("acc_buf", (rows,))],
    )
    inner = sw.for_loop("k", 0, nnz, pipeline=True)
    inner.body = [
        sw.load("c", "cols", Var("i"), Var("k")),
        sw.load("v", "vals", Var("i"), Var("k")),
        sw.load("xv", "x", Var("c")),
        sw.load("run", "acc_buf", Var("i")),
        sw.assign("upd", sw.add(sw.mul("v", "xv"), "run")),
        sw.store("acc_buf", Var("upd"), Var("i")),
    ]
    outer = sw.for_loop("i", 0, rows)
    outer.body = [sw.store("acc_buf", 0, Var("i")), inner]
    flush = sw.for_loop("o", 0, rows, pipeline=True, ii=1)
    flush.body = [
        sw.load("val", "acc_buf", Var("o")),
        sw.store("y", Var("val"), Var("o")),
    ]
    function.body = [outer, flush]
    return sw.program


def build(rows: int = 16, nnz: int = 4) -> KernelArtifacts:
    design = build_hir(rows, nnz)
    values_type = MemrefType((rows, nnz), I32, port="r")
    cols_type = MemrefType((rows, nnz), I32, port="r")
    x_type = MemrefType((rows,), I32, port="r")
    y_type = MemrefType((rows,), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {
            "vals": rng.integers(-20, 20, size=(rows, nnz)),
            "cols": rng.integers(0, rows, size=(rows, nnz)),
            "x": rng.integers(-20, 20, size=(rows,)),
            "y": np.zeros((rows,), dtype=np.int64),
        }

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        values = np.asarray(inputs["vals"], dtype=np.int64)
        columns = np.asarray(inputs["cols"], dtype=np.int64)
        x = np.asarray(inputs["x"], dtype=np.int64)
        return {"y": (values * x[columns]).sum(axis=1)}

    return KernelArtifacts(
        name="spmv",
        module=design.module,
        top="spmv",
        interfaces={"vals": values_type, "cols": cols_type,
                    "x": x_type, "y": y_type},
        hls_program=build_hls(rows, nnz),
        hls_function="spmv",
        make_inputs=make_inputs,
        reference=reference,
        notes=(f"{rows}-row ELL SpMV with {nnz} nonzeros per row; "
               "column-indirect vector gather, accumulator RMW at II=3"),
    )
