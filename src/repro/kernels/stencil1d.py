"""One-dimensional weighted stencil (Listing 2 of the paper; Tables 5 and 6).

A sliding two-element window is kept in registers (a fully distributed
memref); the loop is pipelined at II=1, so one input element is consumed and
one weighted output is produced every cycle.  The two weights are scalar
arguments held stable by the caller, and the two variable multiplications are
what give the kernel its six DSP slices in the paper's Table 5.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(size: int = 64) -> DesignBuilder:
    design = DesignBuilder("stencil1d_design")
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")
    with design.func(
        "stencil_1d",
        [("Ai", in_type), ("Bw", out_type), ("w0", I32), ("w1", I32)],
        stable_args=("w0", "w1"),
    ) as f:
        window_r, window_w = f.alloc((2,), I32, ports=("r", "w"), packing=[],
                                     name="W1")
        # Prologue: fill the window with the first two input elements.
        first = f.mem_read(f.arg("Ai"), [0], time=f.time)
        first_delayed = f.delay(first, 1, time=f.time, offset=1)
        second = f.mem_read(f.arg("Ai"), [1], time=f.time, offset=1)
        f.mem_write(first_delayed, window_w, [0], time=f.time, offset=2)
        f.mem_write(second, window_w, [1], time=f.time, offset=2)

        # Pipelined steady-state loop (II = 1).
        with f.for_loop(1, size, 1, time=f.time, iter_offset=3,
                        iv_name="i") as loop:
            f.yield_(loop.time, offset=1)
            window0 = f.mem_read(window_r, [0], time=loop.time, offset=1)
            window1 = f.mem_read(window_r, [1], time=loop.time, offset=1)
            next_index = f.add(loop.iv, 1)
            incoming = f.mem_read(f.arg("Ai"), [next_index], time=loop.time)
            f.mem_write(window1, window_w, [0], time=loop.time, offset=1)
            f.mem_write(incoming, window_w, [1], time=loop.time, offset=1)
            weighted0 = f.mult(window0, f.arg("w0"))
            weighted1 = f.mult(window1, f.arg("w1"))
            combined = f.add(weighted0, weighted1)
            result = f.delay(combined, 1, time=loop.time, offset=1)
            index_delayed = f.delay(loop.iv, 2, time=loop.time)
            f.mem_write(result, f.arg("Bw"), [index_delayed], time=loop.time,
                        offset=2)
        f.return_()
    return design


def build_hls(size: int = 64):
    sw = SwBuilder("stencil1d_hls")
    function = sw.function(
        "stencil_1d",
        [
            Param("Ai", shape=(size,), direction="in"),
            Param("Bw", shape=(size,), direction="out"),
            Param("w0", kind="scalar"),
            Param("w1", kind="scalar"),
        ],
    )
    loop = sw.for_loop("i", 1, size, pipeline=True, ii=1)
    loop.body = [
        sw.load("prev", "Ai", sw.sub("i", 1)),
        sw.load("curr", "Ai", Var("i")),
        sw.assign("acc", sw.add(sw.mul("prev", "w0"), sw.mul("curr", "w1"))),
        sw.store("Bw", Var("acc"), Var("i")),
    ]
    function.body = [loop]
    return sw.program


def build(size: int = 64) -> KernelArtifacts:
    design = build_hir(size)
    in_type = MemrefType((size,), I32, port="r")
    out_type = MemrefType((size,), I32, port="w")
    weights = {"w0": 3, "w1": 5}

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"Ai": rng.integers(-500, 500, size=(size,)),
                "Bw": np.zeros((size,), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        data = np.asarray(inputs["Ai"], dtype=np.int64)
        out = np.zeros(size, dtype=np.int64)
        for i in range(1, size):
            out[i] = weights["w0"] * data[i - 1] + weights["w1"] * data[i]
        return {"Bw": out}

    return KernelArtifacts(
        name="stencil_1d",
        module=design.module,
        top="stencil_1d",
        interfaces={"Ai": in_type, "Bw": out_type},
        scalar_args=weights,
        hls_program=build_hls(size),
        hls_function="stencil_1d",
        make_inputs=make_inputs,
        reference=reference,
        output_warmup={"Bw": 1},
        notes=(f"{size}-element weighted 2-tap stencil with a register window, "
               "pipelined at II=1; out[0] is not produced (window warm-up)"),
    )
