"""Matrix transpose (Listing 1 of the paper; Tables 4, 5 and 6).

Reads an ``N x N`` matrix through an input memory interface and writes its
transpose through an output interface.  The inner loop is pipelined with an
initiation interval of one: a read is issued every cycle, the data arrives a
cycle later, and the write uses the one-cycle-delayed column index
(``hir.delay``), exactly as in the paper's listing.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.hls.swir import Param, SwBuilder, Var
from repro.kernels.base import KernelArtifacts, default_rng


def build_hir(size: int = 16) -> DesignBuilder:
    """The HIR design: two nested loops, inner loop pipelined at II=1."""
    design = DesignBuilder("transpose_design")
    in_type = MemrefType((size, size), I32, port="r")
    out_type = MemrefType((size, size), I32, port="w")
    with design.func("transpose", [("Ai", in_type), ("Co", out_type)]) as f:
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, size, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                value = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv],
                                   time=j_loop.time)
                j_delayed = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(value, f.arg("Co"), [j_delayed, i_loop.iv],
                            time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
    return design


def build_hls(size: int = 16, manual_precision: bool = False):
    """The matching C-like design for the baseline HLS compiler.

    ``manual_precision=True`` models the "Vivado HLS (manual opt)" row of
    Table 4: the programmer rewrites the loop counters with narrow arbitrary-
    precision integer types because the tool will not narrow them itself.
    """
    counter_width = max(2, (size).bit_length() + 1) if manual_precision else 32
    sw = SwBuilder("transpose_hls")
    function = sw.function(
        "transpose",
        [
            Param("Ai", shape=(size, size), direction="in"),
            Param("Co", shape=(size, size), direction="out"),
        ],
    )
    inner = sw.for_loop("j", 0, size, pipeline=True, ii=1,
                        counter_width=counter_width)
    inner.body = [
        sw.load("v", "Ai", Var("i"), Var("j")),
        sw.store("Co", Var("v"), Var("j"), Var("i")),
    ]
    outer = sw.for_loop("i", 0, size, counter_width=counter_width)
    outer.body = [inner]
    function.body = [outer]
    return sw.program


def build(size: int = 16) -> KernelArtifacts:
    design = build_hir(size)
    in_type = MemrefType((size, size), I32, port="r")
    out_type = MemrefType((size, size), I32, port="w")

    def make_inputs(seed: int) -> Dict[str, np.ndarray]:
        rng = default_rng(seed)
        return {"Ai": rng.integers(-1000, 1000, size=(size, size)),
                "Co": np.zeros((size, size), dtype=np.int64)}

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"Co": np.asarray(inputs["Ai"]).T}

    return KernelArtifacts(
        name="transpose",
        module=design.module,
        top="transpose",
        interfaces={"Ai": in_type, "Co": out_type},
        hls_program=build_hls(size),
        hls_function="transpose",
        make_inputs=make_inputs,
        reference=reference,
        notes=f"{size}x{size} i32 matrix transpose, inner loop pipelined at II=1",
    )
