"""``repro.obs`` — tracing, metrics and simulation profiling.

The observability layer the rest of the toolchain reports into:

* :mod:`~repro.obs.tracer` — the process-wide :data:`~repro.obs.tracer.
  TRACER`: nestable spans, typed counters/gauges, a bounded event ring.
  Off by default, ~free when off; enable per Flow session with
  ``FlowConfig(trace=True)``, per block with :func:`tracing`, or from the
  CLI with ``--trace out.json``.
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto), flat
  JSONL, and the human stats tree.
* :mod:`~repro.obs.cachestats` — one registry enumerating every in-memory
  cache (sim compile cache, DSE memo, Flow stages) with capacity/size/
  hit-rate; the substrate of ``python -m repro stats``.
* :mod:`~repro.obs.simprofile` — opt-in per-run simulation profiles
  (op firings, per-cycle events, port occupancy, memory/stream-buffer
  utilization), bit-identical across the interpreted, compiled and batched
  engines.
* :mod:`~repro.obs.metrics` — the versioned schema of the BENCH_*.json
  benchmark artifacts plus its validator.

Zero dependencies beyond the standard library and numpy (already required
by the simulators).
"""

from repro.obs.cachestats import (
    CacheStats,
    all_cache_stats,
    register_cache,
    render_cache_report,
)
from repro.obs.export import (
    chrome_trace_from_jsonl,
    read_jsonl,
    stats_tree,
    to_chrome_trace,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    SCHEMA_VERSION,
    bench_payload,
    validate_bench_payload,
)
from repro.obs.simprofile import (
    BatchSimProfiler,
    MemProfile,
    PortProfile,
    SimProfile,
    SimProfiler,
)
from repro.obs.tracer import (
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing,
)

__all__ = [
    "BatchSimProfiler",
    "CacheStats",
    "MemProfile",
    "PortProfile",
    "SCHEMA_VERSION",
    "SimProfile",
    "SimProfiler",
    "TRACER",
    "Tracer",
    "all_cache_stats",
    "bench_payload",
    "chrome_trace_from_jsonl",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "read_jsonl",
    "register_cache",
    "render_cache_report",
    "stats_tree",
    "to_chrome_trace",
    "to_jsonl_lines",
    "tracing",
    "validate_bench_payload",
    "write_chrome_trace",
    "write_jsonl",
]
