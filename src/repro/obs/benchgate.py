"""The CI bench-regression gate over the versioned BENCH_*.json payloads.

``benchmarks/baseline.json`` commits one known-good run of the benchmark
harness (schema v2, see :mod:`repro.obs.metrics`); this module compares a
fresh run against it and fails CI on a regression::

    python -m repro.obs.benchgate --baseline benchmarks/baseline.json \\
        BENCH_sim.json BENCH_compile.json

Absolute timings vary wildly across runner generations, so the gate is
deliberately coarse and only inspects two metric families, with a generous
multiplicative ``--tolerance`` (default 1.5x):

* metrics whose name contains ``seconds`` must not grow past
  ``baseline * tolerance`` (a wall-clock regression);
* metrics whose name contains ``speedup`` must not fall below
  ``baseline / tolerance`` (an optimization stopped paying for itself).

Everything else (cycles, lane counts, DSE tallies) is correctness-tested
elsewhere and ignored here.  A baseline record with no fresh counterpart
fails the gate — a silently vanished benchmark is itself a regression.  The
reverse is not: a fresh record with no baseline is a *new* benchmark, which
passes with an explicit ``no baseline, recorded`` note so the log shows it
needs a baseline refresh rather than being silently unchecked.

``--self-test`` proves the gate has teeth: it synthesizes a 2x slowdown of
the fresh records, runs the same comparison, and exits 0 only if the gate
*failed* on it — and also injects a synthetic brand-new record to prove new
benchmarks never trip the gate by themselves.  CI runs both modes; refresh
instructions live in the README's "Benchmarks" section.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, Sequence

from repro.obs.metrics import validate_bench_payload

__all__ = ["compare", "load_records", "main", "new_records", "slowdown"]

#: Fresh wall-clock may grow to baseline * TOLERANCE before the gate trips.
DEFAULT_TOLERANCE = 1.5


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_records(path: str) -> Dict[str, Dict[str, Any]]:
    """Records of one BENCH_*.json file, indexed by name (schema-checked)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    errors = validate_bench_payload(payload)
    if errors:
        raise ValueError(f"{path}: invalid bench payload: {errors[0]}")
    return {str(record["name"]): dict(record)
            for record in payload["records"]}


def compare(baseline: Mapping[str, Mapping[str, Any]],
            fresh: Mapping[str, Mapping[str, Any]],
            tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Every regression of ``fresh`` against ``baseline`` (empty = gate up).

    Both arguments map record name -> record dict (see :func:`load_records`);
    extra fresh records are fine (new benchmarks don't need a baseline yet).
    """
    problems: List[str] = []
    for name in sorted(baseline):
        base_record = baseline[name]
        fresh_record = fresh.get(name)
        if fresh_record is None:
            problems.append(f"{name}: benchmark missing from the fresh run")
            continue
        for metric in sorted(base_record):
            base_value = base_record[metric]
            if not _numeric(base_value) or base_value <= 0:
                continue
            fresh_value = fresh_record.get(metric)
            if "seconds" in metric:
                if not _numeric(fresh_value):
                    problems.append(f"{name}: metric {metric!r} missing "
                                    "from the fresh run")
                elif fresh_value > base_value * tolerance:
                    problems.append(
                        f"{name}: {metric} regressed "
                        f"{fresh_value / base_value:.2f}x "
                        f"({base_value:.4g}s -> {fresh_value:.4g}s, "
                        f"tolerance {tolerance:g}x)")
            elif "speedup" in metric:
                if not _numeric(fresh_value):
                    problems.append(f"{name}: metric {metric!r} missing "
                                    "from the fresh run")
                elif fresh_value < base_value / tolerance:
                    problems.append(
                        f"{name}: {metric} fell to "
                        f"{fresh_value:.2f}x (baseline {base_value:.2f}x, "
                        f"floor {base_value / tolerance:.2f}x)")
    return problems


def new_records(baseline: Mapping[str, Mapping[str, Any]],
                fresh: Mapping[str, Mapping[str, Any]]) -> List[str]:
    """Names of fresh records with no baseline counterpart (sorted).

    These pass the gate — a brand-new benchmark cannot regress — but the
    gate announces each one so the committed baseline gets refreshed instead
    of the new metric staying unchecked forever.
    """
    return sorted(set(fresh) - set(baseline))


def slowdown(records: Mapping[str, Mapping[str, Any]],
             factor: float = 2.0) -> Dict[str, Dict[str, Any]]:
    """A synthetic regression: every seconds-metric ``factor`` slower, every
    speedup-metric ``factor`` smaller (the self-test input)."""
    slowed: Dict[str, Dict[str, Any]] = {}
    for name, record in records.items():
        mutated = dict(record)
        for metric, value in record.items():
            if not _numeric(value):
                continue
            if "seconds" in metric:
                mutated[metric] = value * factor
            elif "speedup" in metric:
                mutated[metric] = value / factor
        slowed[name] = mutated
    return slowed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.benchgate",
        description="Fail on benchmark regressions against a committed "
                    "baseline.")
    parser.add_argument("fresh", nargs="+",
                        help="freshly emitted BENCH_*.json file(s)")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline payload "
                             "(benchmarks/baseline.json)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed wall-clock growth / speedup shrink "
                             "factor (default %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails on a synthetic 2x "
                             "slowdown of the fresh run")
    arguments = parser.parse_args(argv)
    if arguments.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {arguments.tolerance}")

    try:
        baseline = load_records(arguments.baseline)
        fresh: Dict[str, Dict[str, Any]] = {}
        for path in arguments.fresh:
            fresh.update(load_records(path))
    except (OSError, ValueError) as error:
        print(f"benchgate: {error}", file=sys.stderr)
        return 2

    if arguments.self_test:
        slowed = slowdown(fresh)
        # A brand-new benchmark (no baseline) must never trip the gate by
        # itself, even alongside real regressions.
        slowed["benchgate-self-test/brand-new"] = {
            "name": "benchgate-self-test/brand-new", "seconds": 1.0}
        problems = compare(baseline, slowed, tolerance=arguments.tolerance)
        if not problems:
            print("benchgate: SELF-TEST FAILED — a synthetic 2x slowdown "
                  "passed the gate", file=sys.stderr)
            return 1
        named = [p for p in problems if "brand-new" in p]
        if named:
            print("benchgate: SELF-TEST FAILED — a baseline-less record "
                  f"tripped the gate: {named[0]}", file=sys.stderr)
            return 1
        print(f"benchgate: self-test ok — synthetic 2x slowdown tripped "
              f"{len(problems)} check(s), brand-new record tripped none")
        return 0

    problems = compare(baseline, fresh, tolerance=arguments.tolerance)
    for name in new_records(baseline, fresh):
        print(f"benchgate: note — {name}: no baseline, recorded "
              "(refresh benchmarks/baseline.json to gate it)")
    checked = sum(1 for record in baseline.values() for metric in record
                  if _numeric(record[metric])
                  and ("seconds" in metric or "speedup" in metric))
    if problems:
        for problem in problems:
            print(f"REGRESSION  {problem}", file=sys.stderr)
        print(f"benchgate: {len(problems)} regression(s) across {checked} "
              f"checked metric(s)", file=sys.stderr)
        return 1
    print(f"benchgate: ok — {checked} metric(s) within {arguments.tolerance:g}x "
          f"of {arguments.baseline}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
