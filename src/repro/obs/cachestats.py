"""One registry for every in-memory cache in the toolchain.

The toolchain keeps three bounded/unbounded caches, each of which used to be
tuned and inspected through its own ad-hoc knob.  They now all report through
this module's provider registry, so ``python -m repro stats`` (and tests) can
enumerate every cache with its capacity, current size, and hit rate:

``sim.compile``
    The per-design simulator compile cache
    (:mod:`repro.sim.engine.cache`).  Capacity: ``REPRO_SIM_CACHE_SIZE``
    environment variable (default 64), overridden programmatically by
    ``FlowConfig(sim_cache_size=...)`` for the duration of a Flow stage.
``dse.memo``
    The DSE scheduling memo (:mod:`repro.hls.dse`).  Capacity:
    ``REPRO_DSE_MEMO_SIZE`` (default 512), overridden by
    ``FlowConfig(dse_memo_size=...)``.
``flow.stages``
    The per-session Flow stage caches (:mod:`repro.flow`), summed over every
    live :class:`~repro.flow.Flow`.  Unbounded: one artifact per stage per
    session, lifetime tied to the session object.
``store.blobs``
    The persistent on-disk artifact store (:mod:`repro.store`), the tier
    under all of the above.  Unbounded on disk (``repro store gc`` applies
    budgets); hits/misses are process-lifetime, evictions count quarantined
    corrupt blobs.

All three ``FlowConfig`` limits install through
:meth:`repro.flow.FlowConfig.limits`, which is the single supported way to
override the environment defaults for a bounded scope.

A *provider* is a zero-argument callable returning a :class:`CacheStats`
snapshot; caches register one at import time via :func:`register_cache`.
:func:`all_cache_stats` imports the builtin cache modules first, so the
report is complete even if nothing else imported them yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache."""

    name: str
    capacity: Optional[int]     # None = unbounded
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 before the first access)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


_PROVIDERS: Dict[str, Callable[[], CacheStats]] = {}


def register_cache(name: str, provider: Callable[[], CacheStats]) -> None:
    """Register (or replace) the stats provider for cache ``name``."""
    _PROVIDERS[name] = provider


def registered_caches() -> List[str]:
    return sorted(_PROVIDERS)


def ensure_builtin_caches() -> None:
    """Import the modules whose caches self-register, so the report always
    covers the builtin set (sim.compile, dse.memo, flow.stages,
    store.blobs)."""
    import repro.flow  # noqa: F401
    import repro.hls.dse  # noqa: F401
    import repro.sim.engine.cache  # noqa: F401
    import repro.store.store  # noqa: F401


def all_cache_stats() -> List[CacheStats]:
    """A snapshot of every registered cache, sorted by name."""
    ensure_builtin_caches()
    return [_PROVIDERS[name]() for name in sorted(_PROVIDERS)]


def render_cache_report() -> str:
    """The ``repro stats`` cache table."""
    rows = all_cache_stats()
    lines = [f"{'cache':<14} {'cap':>6} {'size':>6} {'hits':>8} "
             f"{'misses':>8} {'evict':>6} {'hit rate':>9}"]
    for stats in rows:
        capacity = "-" if stats.capacity is None else str(stats.capacity)
        rate = f"{stats.hit_rate * 100:6.1f} %" if stats.accesses else "      -"
        lines.append(f"{stats.name:<14} {capacity:>6} {stats.size:>6} "
                     f"{stats.hits:>8} {stats.misses:>8} "
                     f"{stats.evictions:>6} {rate:>9}")
    return "\n".join(lines)


__all__ = [
    "CacheStats",
    "all_cache_stats",
    "ensure_builtin_caches",
    "register_cache",
    "registered_caches",
    "render_cache_report",
]
