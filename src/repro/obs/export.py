"""Exporters for :class:`~repro.obs.tracer.Tracer` recordings.

Three formats, all derived from the same span/counter/event records:

* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON (the ``{"traceEvents":
  [...]}`` array form), loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev.  Spans become complete ``"X"`` events with
  microsecond timestamps, counters become ``"C"`` events, ring-buffer events
  become instants.
* :func:`to_jsonl_lines` / :func:`write_jsonl` — a flat, line-per-record JSON
  log (kind-tagged), convenient for grep and downstream tooling.  The JSONL
  form is lossless: :func:`chrome_trace_from_jsonl` rebuilds the exact Chrome
  trace from it (the round-trip the tier-1 suite asserts).
* :func:`stats_tree` — a human-readable tree aggregating spans by call path
  with counts and total/self time, plus the counter and gauge tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.tracer import Tracer

#: Process id used for every exported event (single-process toolchain).
_PID = 1


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #


def _span_events(spans: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    events = []
    for span in spans:
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span.get("cat") or "span",
            "ts": round(span["ts"] * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": _PID,
            "tid": span.get("tid", 0),
            "args": dict(span.get("args") or {}),
        })
    return events


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's records as a Chrome ``trace_event`` JSON object."""
    events = _span_events(tracer.spans)
    for record in tracer.events:
        events.append({
            "ph": "i",
            "s": "t",
            "name": record["name"],
            "cat": record.get("cat") or "event",
            "ts": round(record["ts"] * 1e6, 3),
            "pid": _PID,
            "tid": record.get("tid", 0),
            "args": dict(record.get("args") or {}),
        })
    end_ts = max((e["ts"] + e.get("dur", 0) for e in events), default=0.0)
    for name in sorted(tracer.counters):
        events.append({
            "ph": "C",
            "name": name,
            "cat": "counter",
            "ts": end_ts,
            "pid": _PID,
            "tid": 0,
            "args": {"value": tracer.counters[name]},
        })
    for name in sorted(tracer.gauges):
        events.append({
            "ph": "C",
            "name": name,
            "cat": "gauge",
            "ts": end_ts,
            "pid": _PID,
            "tid": 0,
            "args": {"value": tracer.gauges[name]},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> str:
    """Write the Chrome trace JSON for ``tracer`` (default: the global
    :data:`~repro.obs.tracer.TRACER`) to ``path``; returns ``path``.

    Published atomically (write-then-rename): a crash mid-write can never
    leave a torn, half-JSON trace behind."""
    from repro.obs.tracer import TRACER
    from repro.store.io import atomic_write_json
    atomic_write_json(path, to_chrome_trace(tracer or TRACER), indent=1)
    return path


# --------------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------------- #


def to_jsonl_lines(tracer: Tracer) -> List[str]:
    """One kind-tagged JSON object per line (spans, events, counters,
    gauges), in deterministic order."""
    lines = []
    for span in tracer.spans:
        lines.append(json.dumps({"kind": "span", **span}, sort_keys=True))
    for record in tracer.events:
        lines.append(json.dumps({"kind": "event", **record}, sort_keys=True))
    for name in sorted(tracer.counters):
        lines.append(json.dumps({"kind": "counter", "name": name,
                                 "value": tracer.counters[name]},
                                sort_keys=True))
    for name in sorted(tracer.gauges):
        lines.append(json.dumps({"kind": "gauge", "name": name,
                                 "value": tracer.gauges[name]},
                                sort_keys=True))
    return lines


def write_jsonl(path: str, tracer: Optional[Tracer] = None) -> str:
    from repro.obs.tracer import TRACER
    from repro.store.io import atomic_write_text
    lines = to_jsonl_lines(tracer or TRACER)
    return atomic_write_text(path, "".join(line + "\n" for line in lines))


def read_jsonl(source: Any) -> List[Dict[str, Any]]:
    """Parse JSONL records from a path or an iterable of lines."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines: Iterable[str] = handle.readlines()
    else:
        lines = source
    return [json.loads(line) for line in lines if line.strip()]


def chrome_trace_from_jsonl(records: Sequence[Mapping[str, Any]]
                            ) -> Dict[str, Any]:
    """Rebuild the Chrome trace from JSONL records (lossless round-trip:
    equals :func:`to_chrome_trace` of the tracer the JSONL came from)."""
    replay = Tracer(name="jsonl", origin=0.0)
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            replay.spans.append({key: value for key, value in record.items()
                                 if key != "kind"})
        elif kind == "event":
            replay.events.append({key: value for key, value in record.items()
                                  if key != "kind"})
        elif kind == "counter":
            replay.counters[record["name"]] = record["value"]
        elif kind == "gauge":
            replay.gauges[record["name"]] = record["value"]
    return to_chrome_trace(replay)


# --------------------------------------------------------------------------- #
# Human stats tree
# --------------------------------------------------------------------------- #


def stats_tree(tracer: Optional[Tracer] = None) -> str:
    """Aggregate spans by call path into an indented tree with counts and
    total time, followed by the counter and gauge tables."""
    from repro.obs.tracer import TRACER
    tracer = tracer or TRACER

    totals: Dict[str, List[float]] = {}  # path -> [count, seconds]
    for span in tracer.spans:
        path = span.get("path") or span["name"]
        entry = totals.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]

    lines: List[str] = []
    if totals:
        lines.append("spans (count, total):")
        for path in sorted(totals):
            count, seconds = totals[path]
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            lines.append(f"  {'  ' * depth}{name:<{max(1, 36 - 2 * depth)}} "
                         f"x{int(count):<5} {seconds * 1e3:9.2f} ms")
    if tracer.counters:
        lines.append("counters:")
        for name in sorted(tracer.counters):
            value = tracer.counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<40} {shown}")
    if tracer.gauges:
        lines.append("gauges:")
        for name in sorted(tracer.gauges):
            lines.append(f"  {name:<40} {tracer.gauges[name]}")
    if not lines:
        lines.append("(tracer has no recordings)")
    return "\n".join(lines)


__all__ = [
    "chrome_trace_from_jsonl",
    "read_jsonl",
    "stats_tree",
    "to_chrome_trace",
    "to_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]
