"""The versioned metrics schema behind BENCH_sim.json / BENCH_compile.json.

The benchmark harness (``benchmarks/conftest.py``) records named measurement
dicts; :func:`bench_payload` wraps them into the stable envelope below, and
:func:`validate_bench_payload` is the smoke check CI runs against every
emitted file (``python -m repro.obs.metrics BENCH_sim.json ...``), so the
perf trajectory stays machine-readable across commits.

Schema (version 2)::

    {
      "schema": 2,
      "unix_time": <float>,           # emission time
      "python": "3.x.y",
      "platform": "<platform.platform()>",
      "records": [                    # sorted by name
        {"name": "<measurement id>", <metric>: <int|float|str|bool>, ...},
        ...
      ]
    }

Version 1 (no formal validation, same envelope minus the guarantees) is
accepted by the validator for old artifacts; new emitters always write
version 2.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

SCHEMA_VERSION = 2

#: Metric value types the schema allows inside a record.
_SCALAR_TYPES = (int, float, str, bool)


def bench_payload(records: Sequence[Mapping[str, Any]],
                  unix_time: Optional[float] = None) -> Dict[str, Any]:
    """Wrap benchmark records in the versioned envelope (records sorted by
    name so diffs between commits stay stable)."""
    return {
        "schema": SCHEMA_VERSION,
        "unix_time": time.time() if unix_time is None else unix_time,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": sorted((dict(record) for record in records),
                          key=lambda record: str(record.get("name", ""))),
    }


def validate_bench_payload(payload: Any) -> List[str]:
    """Every schema violation in ``payload`` (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    schema = payload.get("schema")
    if schema not in (1, SCHEMA_VERSION):
        errors.append(f"unknown schema version {schema!r} "
                      f"(expected 1 or {SCHEMA_VERSION})")
    for key, kind in (("unix_time", (int, float)), ("python", str),
                      ("platform", str)):
        if not isinstance(payload.get(key), kind):
            errors.append(f"missing or mistyped field {key!r}")
    records = payload.get("records")
    if not isinstance(records, list):
        return errors + ["'records' must be a list"]
    names = []
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            errors.append(f"records[{index}] must be an object")
            continue
        name = record.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"records[{index}] needs a non-empty 'name'")
            continue
        names.append(name)
        for key, value in record.items():
            if not isinstance(value, _SCALAR_TYPES):
                errors.append(
                    f"records[{index}] ({name}): metric {key!r} must be "
                    f"int/float/str/bool, got {type(value).__name__}")
    if schema == SCHEMA_VERSION and names != sorted(names):
        errors.append("records must be sorted by name")
    return errors


def validate_bench_file(path: str) -> List[str]:
    """Validate one emitted BENCH_*.json file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: cannot read/parse: {error}"]
    return [f"{path}: {error}" for error in validate_bench_payload(payload)]


def main(argv: Optional[List[str]] = None) -> int:
    """CI smoke check: ``python -m repro.obs.metrics FILE [FILE...]``."""
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.obs.metrics BENCH_file.json ...",
              file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        errors = validate_bench_file(path)
        if errors:
            failures += 1
            for error in errors:
                print(f"INVALID  {error}", file=sys.stderr)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            print(f"ok       {path}: schema {payload.get('schema')}, "
                  f"{len(payload.get('records', []))} record(s)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())


__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "validate_bench_file",
    "validate_bench_payload",
    "main",
]
