"""Opt-in simulation profiling, identical in shape across every engine.

A :class:`SimProfiler` (scalar engines) or :class:`BatchSimProfiler`
(batched engine) attaches to a simulator and collects, per run:

* **per-op firing counts** — how many clock edges changed each register
  (keyed by flattened signal name),
* **per-cycle event counts** — a histogram of (register firings + committed
  memory writes) per clock edge,
* **interface-memory port occupancy** — read/write enable counts per memref
  port of the top module,
* **on-chip memory utilization** — committed in-bounds writes and distinct
  words touched per internal memory, which for composed graphs doubles as
  the stream-buffer edge utilization (:meth:`SimProfile.bind_stream_edges`).

Everything counted is an *architectural* event — a register value change at
a clock edge, a committed in-bounds memory write, a sampled rd_en/wr_en —
never an artifact of how an engine evaluates (the compiled engine only
re-evaluates dirty cones; the interpreter evaluates everything).  Profiles
are therefore bit-identical across interpreted, compiled and batched runs of
the same stimulus, and the differential suite (and the ``profile`` fuzz
oracle) asserts exactly that via :meth:`SimProfile.signature`.

Profiling is opt-in: engines carry ``self.profiler = None`` and skip every
hook when it is unset, so the default path costs one ``is None`` check per
clock edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

import numpy as np


@dataclass
class PortProfile:
    """Occupancy of one interface-memory port (external RAM protocol)."""

    reads: int = 0
    writes: int = 0
    read_cycles: int = 0
    write_cycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"reads": int(self.reads), "writes": int(self.writes),
                "read_cycles": int(self.read_cycles),
                "write_cycles": int(self.write_cycles)}


@dataclass
class MemProfile:
    """Write traffic + utilization of one on-chip (internal) memory."""

    depth: int
    writes: int = 0
    words_written: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of the memory's words written at least once."""
        return self.words_written / self.depth if self.depth else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {"depth": int(self.depth), "writes": int(self.writes),
                "words_written": int(self.words_written)}


@dataclass
class SimProfile:
    """One run's profile; engine-independent except for the label."""

    engine: str
    cycles: int
    op_firings: Dict[str, int] = field(default_factory=dict)
    events_per_cycle: Dict[int, int] = field(default_factory=dict)
    ports: Dict[str, PortProfile] = field(default_factory=dict)
    memories: Dict[str, MemProfile] = field(default_factory=dict)
    #: Stream-buffer edge utilization of a composed graph, filled by
    #: :meth:`bind_stream_edges` (keys: ``GraphEdge.buffer_name``).
    stream_edges: Dict[str, MemProfile] = field(default_factory=dict)

    def signature(self) -> Dict[str, Any]:
        """Engine-independent, JSON-stable digest for differential tests.

        Two engines simulated the same design on the same stimulus iff their
        signatures compare equal (``stream_edges`` is excluded: it is a
        deterministic view over ``memories``).
        """
        return {
            "cycles": int(self.cycles),
            "op_firings": {name: int(count) for name, count
                           in sorted(self.op_firings.items()) if count},
            "events_per_cycle": {str(events): int(count) for events, count
                                 in sorted(self.events_per_cycle.items())
                                 if count},
            "ports": {name: port.as_dict()
                      for name, port in sorted(self.ports.items())},
            "memories": {name: mem.as_dict()
                         for name, mem in sorted(self.memories.items())},
        }

    def bind_stream_edges(self, buffer_names: List[str]) -> "SimProfile":
        """Map composed-graph edge buffers onto their internal memories.

        Edge buffers are allocated inside the generated wrapper, so their
        flattened memory names *contain* the buffer name; each edge picks the
        matching memory's profile.
        """
        for buffer_name in buffer_names:
            for mem_name, profile in self.memories.items():
                if buffer_name in mem_name:
                    self.stream_edges[buffer_name] = profile
                    break
        return self

    def render(self, top: int = 12) -> str:
        """Human-readable profile summary (``top`` busiest ops)."""
        lines = [f"profile [{self.engine}] {self.cycles} cycles"]
        firings = sorted(self.op_firings.items(),
                         key=lambda item: (-item[1], item[0]))
        if firings:
            lines.append(f"  op firings (top {min(top, len(firings))} "
                         f"of {len(firings)}):")
            for name, count in firings[:top]:
                lines.append(f"    {name:<48} {count:>8}")
        if self.events_per_cycle:
            busiest = max(self.events_per_cycle)
            total = sum(events * count for events, count
                        in self.events_per_cycle.items())
            lines.append(f"  events: {total} total, busiest cycle "
                         f"{busiest} events")
        for name, port in sorted(self.ports.items()):
            lines.append(f"  port {name:<24} reads={port.reads:<6} "
                         f"writes={port.writes}")
        if self.stream_edges:
            for name, mem in sorted(self.stream_edges.items()):
                lines.append(f"  edge {name:<24} writes={mem.writes:<6} "
                             f"util={mem.utilization * 100:5.1f} %")
        else:
            for name, mem in sorted(self.memories.items()):
                lines.append(f"  mem  {name:<24} writes={mem.writes:<6} "
                             f"util={mem.utilization * 100:5.1f} %")
        return "\n".join(lines)


def _bind_target(simulator):
    """The engine object that owns the profiler hooks (the interpreted
    reference child for a DifferentialSimulator)."""
    return getattr(simulator, "reference", None) or simulator


class SimProfiler:
    """Collector for the scalar engines (interpreted / compiled /
    differential); engines call the ``on_*`` hooks from ``clock_edge``."""

    def __init__(self) -> None:
        self.firings: Dict[str, int] = {}
        self.events_per_cycle: Dict[int, int] = {}
        self.mem_writes: Dict[str, int] = {}
        self.mem_words: Dict[str, Set[int]] = {}
        self.ports: Dict[str, PortProfile] = {}
        self.edges = 0
        self._events = 0
        self._mem_depths: Dict[str, int] = {}

    def bind(self, simulator) -> "SimProfiler":
        """Attach to a simulator (installs ``simulator.profiler``)."""
        target = _bind_target(simulator)
        self._mem_depths = {name: depth for name, (_, depth)
                            in target.flat.memories.items()}
        for name in self._mem_depths:
            self.mem_writes.setdefault(name, 0)
            self.mem_words.setdefault(name, set())
        target.profiler = self
        return self

    # -- clock-edge hooks ----------------------------------------------------
    def begin_edge(self) -> None:
        self._events = 0

    def on_reg(self, name: str) -> None:
        self.firings[name] = self.firings.get(name, 0) + 1
        self._events += 1

    def on_mem_write(self, name: str, address: int) -> None:
        self.mem_writes[name] = self.mem_writes.get(name, 0) + 1
        self.mem_words.setdefault(name, set()).add(address)
        self._events += 1

    def end_edge(self) -> None:
        self.edges += 1
        count = self.events_per_cycle
        count[self._events] = count.get(self._events, 0) + 1

    # -- testbench hook ------------------------------------------------------
    def on_port(self, prefix: str, read: bool, write: bool) -> None:
        port = self.ports.setdefault(prefix, PortProfile())
        if read:
            port.reads += 1
            port.read_cycles += 1
        if write:
            port.writes += 1
            port.write_cycles += 1

    # -- result --------------------------------------------------------------
    def finish(self, engine: str) -> SimProfile:
        memories = {
            name: MemProfile(depth=self._mem_depths.get(name, 0),
                             writes=self.mem_writes.get(name, 0),
                             words_written=len(self.mem_words.get(name, ())))
            for name in self._mem_depths
        }
        return SimProfile(engine=engine, cycles=self.edges,
                          op_firings=dict(self.firings),
                          events_per_cycle=dict(self.events_per_cycle),
                          ports=dict(self.ports), memories=memories)


class BatchSimProfiler:
    """Collector for the batched engine: every accumulator grows a lane
    axis, and counting is gated per lane by the testbench's *active* mask so
    each lane's profile covers exactly the cycles its scalar run would
    execute (start through done + drain)."""

    def __init__(self) -> None:
        self.lanes = 0
        self._bound = False

    def bind(self, simulator) -> "BatchSimProfiler":
        self.lanes = simulator.lanes
        self._lane_index = np.arange(self.lanes)
        self.mem_names = list(simulator.lowered.mem_names)
        self.mem_depths = list(simulator.lowered.mem_depths)
        self.firings: Dict[str, np.ndarray] = {}
        self.mem_writes = {name: np.zeros(self.lanes, dtype=np.int64)
                           for name in self.mem_names}
        self.mem_words = {
            name: np.zeros((self.lanes, depth), dtype=bool)
            for name, depth in zip(self.mem_names, self.mem_depths)
        }
        self.ports: Dict[str, Dict[str, np.ndarray]] = {}
        self.active = np.ones(self.lanes, dtype=bool)
        self.edge_count = np.zeros(self.lanes, dtype=np.int64)
        self._hist = np.zeros((self.lanes, 8), dtype=np.int64)
        self._events = np.zeros(self.lanes, dtype=np.int64)
        self._bound = True
        simulator.profiler = self
        return self

    def set_active(self, active: np.ndarray) -> None:
        """Install the per-lane drain-window mask for the coming edge."""
        self.active = active

    # -- clock-edge hooks ----------------------------------------------------
    def begin_edge(self) -> None:
        self._events = np.zeros(self.lanes, dtype=np.int64)

    def on_reg(self, name: str, changed: np.ndarray) -> None:
        fired = changed & self.active
        if not fired.any():
            return
        counts = self.firings.get(name)
        if counts is None:
            counts = self.firings[name] = np.zeros(self.lanes, dtype=np.int64)
        counts += fired
        self._events += fired

    def on_mem_write(self, name: str, valid: np.ndarray,
                     address: np.ndarray) -> None:
        counted = valid & self.active
        if not counted.any():
            return
        self.mem_writes[name] += counted
        self.mem_words[name][self._lane_index[counted], address[counted]] = True
        self._events += counted

    def end_edge(self) -> None:
        self.edge_count += self.active
        peak = int(self._events.max()) if self.lanes else 0
        if peak >= self._hist.shape[1]:
            grown = np.zeros((self.lanes, peak + 8), dtype=np.int64)
            grown[:, :self._hist.shape[1]] = self._hist
            self._hist = grown
        lanes = self._lane_index[self.active]
        np.add.at(self._hist, (lanes, self._events[self.active]), 1)

    # -- testbench hook ------------------------------------------------------
    def on_port(self, prefix: str,
                read_mask: Optional[np.ndarray],
                write_mask: Optional[np.ndarray]) -> None:
        port = self.ports.get(prefix)
        if port is None:
            port = self.ports[prefix] = {
                key: np.zeros(self.lanes, dtype=np.int64)
                for key in ("reads", "writes", "read_cycles", "write_cycles")
            }
        if read_mask is not None:
            hits = read_mask & self.active
            port["reads"] += hits
            port["read_cycles"] += hits
        if write_mask is not None:
            hits = write_mask & self.active
            port["writes"] += hits
            port["write_cycles"] += hits

    # -- result --------------------------------------------------------------
    def lane_profile(self, lane: int) -> SimProfile:
        """The profile of one lane, shaped exactly like a scalar run's."""
        firings = {name: int(counts[lane])
                   for name, counts in self.firings.items()
                   if counts[lane]}
        hist_row = self._hist[lane]
        events_per_cycle = {events: int(count)
                            for events, count in enumerate(hist_row) if count}
        ports = {
            prefix: PortProfile(reads=int(arrays["reads"][lane]),
                                writes=int(arrays["writes"][lane]),
                                read_cycles=int(arrays["read_cycles"][lane]),
                                write_cycles=int(arrays["write_cycles"][lane]))
            for prefix, arrays in self.ports.items()
        }
        memories = {
            name: MemProfile(depth=depth,
                             writes=int(self.mem_writes[name][lane]),
                             words_written=int(self.mem_words[name][lane].sum()))
            for name, depth in zip(self.mem_names, self.mem_depths)
        }
        return SimProfile(engine="batched", cycles=int(self.edge_count[lane]),
                          op_firings=firings,
                          events_per_cycle=events_per_cycle,
                          ports=ports, memories=memories)

    def finish(self) -> List[SimProfile]:
        return [self.lane_profile(lane) for lane in range(self.lanes)]


__all__ = [
    "BatchSimProfiler",
    "MemProfile",
    "PortProfile",
    "SimProfile",
    "SimProfiler",
]
