"""The process-wide tracer: nestable spans, typed counters, event ring.

Instrumentation across the toolchain — Flow stages, PassManager passes, DSE
candidate evaluation, the simulation testbenches — all reports into one
:class:`Tracer` (the module-level :data:`TRACER`).  Three design rules keep
it safe to leave in hot paths:

* **Off by default, ~free when off.**  ``span()`` returns a shared null
  context manager and ``count()``/``gauge()``/``event()`` return immediately
  when the tracer is disabled, so the only cost on the default path is one
  attribute check.
* **Thread-safe.**  Finished spans, counters and events are appended under a
  lock; the open-span stack is thread-local, so spans nest correctly per
  thread and carry a stable small ``tid``.
* **Mergeable.**  Parallel workers (e.g. the DSE thread pool) record into
  :meth:`fork` children sharing the parent's clock origin; the parent
  :meth:`merge`\\ s them back in a deterministic order, so exported traces do
  not depend on completion order.

Export lives in :mod:`repro.obs.export` (Chrome ``trace_event`` JSON, JSONL,
human stats tree).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, List, Optional


def _ring_capacity() -> int:
    try:
        return max(16, int(os.environ.get("REPRO_OBS_EVENTS", "4096")))
    except ValueError:
        return 4096


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records itself into the tracer on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "_start", "_path")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._path = ""

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to the span while it is open."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        self._path = (f"{stack[-1]}/{self.name}" if stack else self.name)
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        self.tracer._record_span({
            "name": self.name,
            "cat": self.cat,
            "path": self._path,
            "ts": self._start - self.tracer.origin,
            "dur": end - self._start,
            "tid": self.tracer._tid(),
            "args": self.args,
        })


class Tracer:
    """Spans + counters + gauges + a bounded structured-event ring."""

    def __init__(self, name: str = "main",
                 origin: Optional[float] = None) -> None:
        self.name = name
        self.enabled = False
        #: perf_counter value all span/event timestamps are relative to;
        #: forked children share it so merged spans stay on one timeline.
        self.origin = time.perf_counter() if origin is None else origin
        self.spans: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.events: Deque[Dict[str, Any]] = deque(maxlen=_ring_capacity())
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _tid(self) -> int:
        """Small, stable per-thread id (0 for the first thread seen)."""
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = len(self._tids)
                self._tids[ident] = tid
            return tid

    def _record_span(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(record)

    # -- switches ------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def activated(self, on: bool = True):
        """Enable the tracer for a ``with`` block (no-op when ``on`` is
        false or the tracer is already enabled — nesting never disables an
        outer activation)."""
        if not on or self.enabled:
            yield self
            return
        self.enable()
        try:
            yield self
        finally:
            self.disable()

    def clear(self) -> None:
        """Drop every recorded span/counter/gauge/event and restart the
        clock origin (enabled state is preserved)."""
        with self._lock:
            self.spans.clear()
            self.counters.clear()
            self.gauges.clear()
            self.events.clear()
            self._tids.clear()
            self.origin = time.perf_counter()

    # -- recording -----------------------------------------------------------
    def span(self, name: str, cat: str = "", **args: Any):
        """A nestable timed region: ``with TRACER.span("flow.hir"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to the typed counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def event(self, name: str, cat: str = "", **args: Any) -> None:
        """Record an instant event into the bounded ring buffer."""
        if not self.enabled:
            return
        record = {
            "name": name,
            "cat": cat,
            "ts": time.perf_counter() - self.origin,
            "tid": self._tid(),
            "args": args,
        }
        with self._lock:
            self.events.append(record)

    # -- parallel workers ----------------------------------------------------
    def fork(self, name: str) -> "Tracer":
        """A child tracer sharing this tracer's clock origin and enabled
        state — hand one to each parallel worker, then :meth:`merge` them
        back in a deterministic order."""
        child = Tracer(name=name, origin=self.origin)
        child.enabled = self.enabled
        return child

    def merge(self, child: "Tracer") -> None:
        """Fold a forked child's records into this tracer.

        Child threads get fresh ``tid``\\ s here, so two children that ran on
        the same (pooled) OS thread still render as distinct tracks; call in
        a fixed order for deterministic output.
        """
        with self._lock:
            remap: Dict[int, int] = {}
            for record in child.spans:
                tid = record.get("tid", 0)
                if tid not in remap:
                    remap[tid] = len(self._tids)
                    self._tids[f"{child.name}:{tid}"] = remap[tid]
                self.spans.append({**record, "tid": remap[tid]})
            for name, value in child.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(child.gauges)
            for record in child.events:
                self.events.append(record)


#: The process-wide tracer every subsystem reports into.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :data:`TRACER`."""
    return TRACER


def enable_tracing() -> None:
    TRACER.enable()


def disable_tracing() -> None:
    TRACER.disable()


@contextmanager
def tracing(on: bool = True):
    """``with tracing(): ...`` — enable the global tracer for a block."""
    with TRACER.activated(on):
        yield TRACER


__all__ = [
    "TRACER",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "tracing",
]
