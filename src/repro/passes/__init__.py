"""Verification and optimization passes of the HIR compiler (Sections 6 and 7)."""

from repro.passes.canonicalize import CanonicalizePass
from repro.passes.constant_propagation import ConstantPropagationPass
from repro.passes.cse import CSEPass
from repro.passes.delay_elimination import DelayEliminationPass
from repro.passes.legacy import (
    LegacyCanonicalizePass,
    LegacyConstantPropagationPass,
    LegacyCSEPass,
    LegacyDelayEliminationPass,
    LegacyStrengthReductionPass,
)
from repro.passes.memport_opt import MemPortOptimizationPass
from repro.passes.precision_opt import PrecisionOptimizationPass, RangeAnalysis
from repro.passes.pipeline import (
    optimization_pipeline,
    pipeline_for,
    verification_pipeline,
)
from repro.passes.schedule_verifier import (
    CROSS_REGION_USE,
    INVALID_OPERAND_TIME,
    PIPELINE_IMBALANCE,
    PORT_CONFLICT,
    RESULT_DELAY_MISMATCH,
    ScheduleDiagnostic,
    ScheduleVerifierPass,
    VerificationReport,
    verify_schedule,
)
from repro.passes.strength_reduction import StrengthReductionPass

__all__ = [
    "CanonicalizePass",
    "ConstantPropagationPass",
    "CSEPass",
    "DelayEliminationPass",
    "MemPortOptimizationPass",
    "PrecisionOptimizationPass",
    "RangeAnalysis",
    "optimization_pipeline",
    "pipeline_for",
    "verification_pipeline",
    "CROSS_REGION_USE",
    "INVALID_OPERAND_TIME",
    "PIPELINE_IMBALANCE",
    "PORT_CONFLICT",
    "RESULT_DELAY_MISMATCH",
    "ScheduleDiagnostic",
    "ScheduleVerifierPass",
    "VerificationReport",
    "verify_schedule",
    "StrengthReductionPass",
    "LegacyCanonicalizePass",
    "LegacyConstantPropagationPass",
    "LegacyCSEPass",
    "LegacyDelayEliminationPass",
    "LegacyStrengthReductionPass",
]
