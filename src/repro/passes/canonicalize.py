"""Canonicalization: algebraic identities, constant de-duplication and DCE.

These are the "standard optimizations well-known in the software compiler
domain" the paper inherits for free from building on a compiler IR
(Section 6.2): they reduce hardware because an unused combinational op is an
unused LUT cluster, and ``x + 0`` is just a wire.

The pass is worklist-driven (:mod:`repro.ir.rewriter`): one seeding walk,
then only the users of rewritten values are revisited, instead of re-walking
the whole module to fixpoint.  The stage order of the seed implementation is
preserved exactly — simplify, unique constants, DCE — so the result is
bit-identical to :class:`repro.passes.legacy.LegacyCanonicalizePass`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.rewriter import PatternRewriter, RewritePattern
from repro.ir.values import Value
from repro.hir.ops import (
    AddOp,
    ConstantOp,
    DelayOp,
    MultOp,
    OrOp,
    ShlOp,
    ShrOp,
    SubOp,
    XorOp,
    constant_value,
)
from repro.passes.common import functions_in


def _simplify(op: Operation) -> Optional[Value]:
    """Return a value that can replace ``op``'s single result, or None."""
    if isinstance(op, AddOp):
        if constant_value(op.rhs) == 0:
            return op.lhs
        if constant_value(op.lhs) == 0:
            return op.rhs
    elif isinstance(op, SubOp):
        if constant_value(op.rhs) == 0:
            return op.lhs
    elif isinstance(op, MultOp):
        if constant_value(op.rhs) == 1:
            return op.lhs
        if constant_value(op.lhs) == 1:
            return op.rhs
    elif isinstance(op, (ShlOp, ShrOp)):
        if constant_value(op.rhs) == 0:
            return op.lhs
    elif isinstance(op, (OrOp, XorOp)):
        if constant_value(op.rhs) == 0:
            return op.lhs
        if constant_value(op.lhs) == 0:
            return op.rhs
    elif isinstance(op, DelayOp):
        if op.delay == 0:
            return op.value
    return None


#: Operations _simplify can rewrite, for the pattern's name filter.
_SIMPLIFIABLE = ("hir.add", "hir.sub", "hir.mult", "hir.shl", "hir.shr",
                 "hir.or", "hir.xor", "hir.delay")


class _SimplifyPattern(RewritePattern):
    op_names = _SIMPLIFIABLE

    def __init__(self, pass_: "CanonicalizePass") -> None:
        self._pass = pass_

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        if not op.results:
            return False
        replacement = _simplify(op)
        if replacement is None:
            return False
        rewriter.replace_op(op, replacement)
        self._pass.record("ops-simplified")
        return True


class _DCEPattern(RewritePattern):
    op_names = None  # every op is a DCE candidate

    def __init__(self, pass_: "CanonicalizePass") -> None:
        self._pass = pass_

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        if not getattr(op, "PURE", False) and not isinstance(op, DelayOp):
            return False
        if not op.results or any(result.has_uses for result in op.results):
            return False
        rewriter.erase_op(op)
        self._pass.record("dead-ops-removed")
        return True


class CanonicalizePass(Pass):
    """Apply local simplifications, unique constants, and run DCE."""

    name = "canonicalize"
    PRESERVES = ("loop-info",)  # loops are never erased, only their bodies

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            PatternRewriter([_SimplifyPattern(self)]).rewrite(func)
            self._unique_constants(func)
            PatternRewriter([_DCEPattern(self)]).rewrite(func)

    def _unique_constants(self, func) -> None:
        """Merge hir.constant ops with identical value and type per block scope."""
        seen: Dict[Tuple[int, str], ConstantOp] = {}
        # Only constants in the function's top-level block are safe to merge
        # into from anywhere (they dominate every nested region).
        for op in list(func.body.operations):
            if not isinstance(op, ConstantOp):
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            op.results[0].replace_all_uses_with(existing.results[0])
            op.erase()
            self.record("constants-merged")
        # Constants nested inside loops with a top-level equivalent are folded up.
        for op in list(func.walk()):
            if not isinstance(op, ConstantOp) or op.parent_block is func.body:
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is not None:
                op.results[0].replace_all_uses_with(existing.results[0])
                op.erase()
                self.record("constants-merged")
