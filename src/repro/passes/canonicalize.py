"""Canonicalization: algebraic identities, constant de-duplication and DCE.

These are the "standard optimizations well-known in the software compiler
domain" the paper inherits for free from building on a compiler IR
(Section 6.2): they reduce hardware because an unused combinational op is an
unused LUT cluster, and ``x + 0`` is just a wire.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.values import Value
from repro.hir.ops import (
    AddOp,
    AndOp,
    ConstantOp,
    DelayOp,
    MultOp,
    OrOp,
    ShlOp,
    ShrOp,
    SubOp,
    XorOp,
    constant_value,
)
from repro.passes.common import functions_in


def _simplify(op: Operation) -> Optional[Value]:
    """Return a value that can replace ``op``'s single result, or None."""
    if isinstance(op, AddOp):
        if constant_value(op.rhs) == 0:
            return op.lhs
        if constant_value(op.lhs) == 0:
            return op.rhs
    elif isinstance(op, SubOp):
        if constant_value(op.rhs) == 0:
            return op.lhs
    elif isinstance(op, MultOp):
        if constant_value(op.rhs) == 1:
            return op.lhs
        if constant_value(op.lhs) == 1:
            return op.rhs
    elif isinstance(op, (ShlOp, ShrOp)):
        if constant_value(op.rhs) == 0:
            return op.lhs
    elif isinstance(op, (OrOp, XorOp)):
        if constant_value(op.rhs) == 0:
            return op.lhs
        if constant_value(op.lhs) == 0:
            return op.rhs
    elif isinstance(op, DelayOp):
        if op.delay == 0:
            return op.value
    return None


class CanonicalizePass(Pass):
    """Apply local simplifications, unique constants, and run DCE."""

    name = "canonicalize"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._simplify_ops(func)
            self._unique_constants(func)
            self._dead_code_elimination(func)

    # -- rewrites --------------------------------------------------------------
    def _simplify_ops(self, func) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(func.walk()):
                if op.parent_block is None or not op.results:
                    continue
                replacement = _simplify(op)
                if replacement is None:
                    continue
                op.results[0].replace_all_uses_with(replacement)
                op.erase()
                self.record("ops-simplified")
                changed = True

    def _unique_constants(self, func) -> None:
        """Merge hir.constant ops with identical value and type per block scope."""
        seen: Dict[Tuple[int, str], ConstantOp] = {}
        # Only constants in the function's top-level block are safe to merge
        # into from anywhere (they dominate every nested region).
        for op in list(func.body.operations):
            if not isinstance(op, ConstantOp):
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            op.results[0].replace_all_uses_with(existing.results[0])
            op.erase()
            self.record("constants-merged")
        # Constants nested inside loops with a top-level equivalent are folded up.
        for op in list(func.walk()):
            if not isinstance(op, ConstantOp) or op.parent_block is func.body:
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is not None:
                op.results[0].replace_all_uses_with(existing.results[0])
                op.erase()
                self.record("constants-merged")

    def _dead_code_elimination(self, func) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(func.walk()):
                if op.parent_block is None:
                    continue
                if not getattr(op, "PURE", False) and not isinstance(op, DelayOp):
                    continue
                if any(result.has_uses for result in op.results):
                    continue
                op.erase()
                self.record("dead-ops-removed")
                changed = True
