"""Shared helpers for HIR passes."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.values import Value
from repro.hir.ops import FuncOp, constant_value
from repro.hir.types import ConstType


def functions_in(module: Operation) -> List[FuncOp]:
    """Every non-external hir.func nested in ``module`` (or ``module`` itself)."""
    return [
        op for op in module.walk()
        if isinstance(op, FuncOp) and not op.is_external
    ]


def all_functions_in(module: Operation) -> List[FuncOp]:
    """Every hir.func, including external declarations."""
    return [op for op in module.walk() if isinstance(op, FuncOp)]


def as_constant(value: Value) -> Optional[int]:
    """Integer behind ``value`` when it is a compile-time constant, else None."""
    return constant_value(value)


def is_const_typed(value: Value) -> bool:
    return isinstance(value.type, ConstType)


def erase_if_dead(op: Operation) -> bool:
    """Erase ``op`` when none of its results are used; returns True if erased."""
    if any(result.has_uses for result in op.results):
        return False
    if not op.results:
        return False
    op.erase()
    return True


def iter_pure_ops(func: FuncOp) -> Iterator[Operation]:
    """Iterate pure (side-effect-free) operations in ``func``, innermost last."""
    for op in func.walk():
        if getattr(op, "PURE", False):
            yield op


def signed_range_width(low: int, high: int) -> int:
    """Bits of a signed integer able to represent every value in [low, high]."""
    width = 1
    while not (-(1 << (width - 1)) <= low and high <= (1 << (width - 1)) - 1):
        width += 1
    return width


def value_range_of_constant(value: Value) -> Optional[Tuple[int, int]]:
    constant = constant_value(value)
    if constant is None:
        return None
    return (constant, constant)
