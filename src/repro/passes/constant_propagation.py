"""Constant propagation and folding (Section 6.2).

Pure compute operations whose operands are all compile-time constants are
evaluated at compile time and replaced by ``hir.constant``.  This both removes
hardware (an adder fed by two constants is just a wire) and enables the later
strength-reduction and precision passes.

Worklist-driven: folding an operation re-enqueues only its users, whose
operands may now be constant, so chains of foldable ops collapse without
re-walking the module once per wave (the seed behaviour is preserved in
:class:`repro.passes.legacy.LegacyConstantPropagationPass`).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.rewriter import PatternRewriter, RewritePattern
from repro.ir.types import IntegerType
from repro.hir.ops import (
    BinaryOp,
    CmpOp,
    ConstantOp,
    ExtOp,
    SelectOp,
    TruncOp,
    constant_value,
)
from repro.passes.common import functions_in


def _fold_op(op: Operation) -> Optional[int]:
    """Return the folded constant for ``op`` when all operands are constants."""
    if isinstance(op, (BinaryOp, CmpOp)):
        lhs = constant_value(op.lhs)
        rhs = constant_value(op.rhs)
        if lhs is None or rhs is None:
            return None
        return op.evaluate(lhs, rhs)
    if isinstance(op, SelectOp):
        condition = constant_value(op.condition)
        if condition is None:
            return None
        chosen = op.true_value if condition else op.false_value
        return constant_value(chosen)
    if isinstance(op, (TruncOp, ExtOp)):
        value = constant_value(op.value)
        if value is None:
            return None
        result_type = op.results[0].type
        if isinstance(result_type, IntegerType):
            return result_type.wrap(value)
        return value
    return None


#: Operations _fold_op can evaluate, for the pattern's name filter.
_FOLDABLE = ("hir.add", "hir.sub", "hir.mult", "hir.and", "hir.or", "hir.xor",
             "hir.shl", "hir.shr", "hir.cmp", "hir.select", "hir.trunc",
             "hir.ext")


class _FoldPattern(RewritePattern):
    op_names = _FOLDABLE

    def __init__(self, pass_: "ConstantPropagationPass") -> None:
        self._pass = pass_

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        folded = _fold_op(op)
        if folded is None:
            return False
        result = op.results[0]
        result_type = result.type
        if isinstance(result_type, IntegerType):
            folded = result_type.wrap(folded)
        constant = ConstantOp(folded, result_type, location=op.location)
        rewriter.insert_before(op, constant)
        rewriter.replace_op(op, constant.results[0])
        self._pass.record("ops-folded")
        return True


class ConstantPropagationPass(Pass):
    """Fold constant expressions to ``hir.constant`` until a fixpoint."""

    name = "constant-propagation"
    PRESERVES = ("loop-info",)

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            PatternRewriter([_FoldPattern(self)]).rewrite(func)
