"""Common sub-expression elimination (Section 6.2).

Two identical pure operations with the same operands produce the same wires;
instantiating them twice wastes LUTs.  The pass walks regions with a scoped
hash table (an op in an enclosing region dominates everything nested inside
it, so nested duplicates can reuse the outer result — the reverse is not
true).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.passes.common import functions_in

#: Hashable signature of an operation for CSE purposes.
Signature = Tuple


def _signature(op: Operation) -> Signature:
    """The op's structural signature.

    Delegates to :meth:`Operation.cse_signature`, which caches the tuple and
    invalidates it on mutation — with interned types/attributes the signature
    compares by identity, so repeated CSE runs cost hash lookups, not string
    formatting of every attribute and type.
    """
    return op.cse_signature()


class CSEPass(Pass):
    """Eliminate duplicate pure operations."""

    name = "cse"
    PRESERVES = ("loop-info",)

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._run_on_block(func.body, [])

    def _run_on_block(self, block: Block, scopes: List[Dict[Signature, Operation]]) -> None:
        scopes = scopes + [{}]
        for op in list(block.operations):
            if op.parent_block is None:
                continue
            if getattr(op, "PURE", False) and op.results:
                signature = _signature(op)
                existing = self._lookup(scopes, signature)
                if existing is not None:
                    for old, new in zip(op.results, existing.results):
                        old.replace_all_uses_with(new)
                    op.erase()
                    self.record("ops-eliminated")
                    continue
                scopes[-1][signature] = op
            for region in op.regions:
                for nested in region.blocks:
                    self._run_on_block(nested, scopes)

    @staticmethod
    def _lookup(scopes: List[Dict[Signature, Operation]],
                signature: Signature) -> Operation | None:
        for scope in reversed(scopes):
            if signature in scope:
                return scope[signature]
        return None
