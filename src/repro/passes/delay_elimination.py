"""Delay elimination and shift-register sharing (Section 6.4).

Each ``hir.delay`` lowers to a shift register.  Two delays of the same value
scheduled against the same time variable can share one register chain, and a
delay of a compile-time constant needs no hardware at all.  The pass

* replaces delays of constants with the constant itself (worklist-driven, so
  delays whose inputs *become* constant are caught without re-walking),
* de-duplicates identical delays (same input, same time variable, same
  offset, same amount), and
* records, for the code generator, which delays belong to the same sharing
  group (same input and time variable) so it can build one chain with
  multiple taps instead of independent chains.

The grouping logic is shared with the legacy reference pass via
:func:`share_delay_groups`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.rewriter import PatternRewriter, RewritePattern
from repro.hir.ops import DelayOp, constant_value
from repro.passes.common import functions_in

GroupKey = Tuple[int, int, int]


def share_delay_groups(groups: Dict[GroupKey, List[DelayOp]],
                       record: Callable[..., None]) -> None:
    """De-duplicate grouped delays and mark the survivors' sharing groups.

    Group ids are small sequential integers (in group-discovery order, which
    is walk order and therefore deterministic), not ``id()`` values: the
    backend only needs members of one group to share a tag, and per-run
    unique integers would both make the printed IR irreproducible and feed
    an unbounded stream of fresh values into the attribute intern caches.
    """
    next_group_id = 0
    for delays in groups.values():
        delays.sort(key=lambda op: op.delay)
        by_amount: Dict[int, DelayOp] = {}
        for op in delays:
            existing = by_amount.get(op.delay)
            if existing is None:
                by_amount[op.delay] = op
                continue
            op.results[0].replace_all_uses_with(existing.results[0])
            op.erase()
            record("duplicate-delays-removed")
        if len(by_amount) > 1:
            # Mark every member of the sharing group so the Verilog
            # backend builds a single tapped chain (the registers saved
            # equal the sum of all but the deepest chain).
            survivors = sorted(by_amount.values(), key=lambda op: op.delay)
            group_id = next_group_id
            next_group_id += 1
            for op in survivors:
                op.set_attr("share_group", group_id)
            saved = sum(op.delay for op in survivors[:-1])
            record("registers-shared", saved)


class _ConstantDelayPattern(RewritePattern):
    op_names = (DelayOp.OPERATION_NAME,)

    def __init__(self, pass_: "DelayEliminationPass") -> None:
        self._pass = pass_

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        if constant_value(op.value) is None:
            return False
        # Constants are valid at every cycle; the delay is a no-op.
        rewriter.replace_op(op, op.value)
        self._pass.record("constant-delays-removed")
        return True


class DelayEliminationPass(Pass):
    """Remove redundant ``hir.delay`` operations and share shift registers."""

    name = "delay-elimination"
    PRESERVES = ("loop-info",)

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            PatternRewriter([_ConstantDelayPattern(self)]).rewrite(func)
            groups: Dict[GroupKey, List[DelayOp]] = {}
            for op in func.walk():
                if not isinstance(op, DelayOp) or op.parent_block is None:
                    continue
                key = (id(op.value), id(op.time_operand), op.offset)
                groups.setdefault(key, []).append(op)
            share_delay_groups(groups, self.record)
