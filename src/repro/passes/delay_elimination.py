"""Delay elimination and shift-register sharing (Section 6.4).

Each ``hir.delay`` lowers to a shift register.  Two delays of the same value
scheduled against the same time variable can share one register chain, and a
delay of a compile-time constant needs no hardware at all.  The pass

* replaces delays of constants with the constant itself,
* de-duplicates identical delays (same input, same time variable, same
  offset, same amount), and
* records, for the code generator, which delays belong to the same sharing
  group (same input and time variable) so it can build one chain with
  multiple taps instead of independent chains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.hir.ops import DelayOp, constant_value
from repro.passes.common import functions_in

GroupKey = Tuple[int, int, int]


class DelayEliminationPass(Pass):
    """Remove redundant ``hir.delay`` operations and share shift registers."""

    name = "delay-elimination"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._run_on_function(func)

    def _run_on_function(self, func) -> None:
        groups: Dict[GroupKey, List[DelayOp]] = {}
        for op in list(func.walk()):
            if not isinstance(op, DelayOp) or op.parent_block is None:
                continue
            if constant_value(op.value) is not None:
                # Constants are valid at every cycle; the delay is a no-op.
                op.results[0].replace_all_uses_with(op.value)
                op.erase()
                self.record("constant-delays-removed")
                continue
            key = (id(op.value), id(op.time_operand), op.offset)
            groups.setdefault(key, []).append(op)

        for delays in groups.values():
            delays.sort(key=lambda op: op.delay)
            by_amount: Dict[int, DelayOp] = {}
            for op in delays:
                existing = by_amount.get(op.delay)
                if existing is None:
                    by_amount[op.delay] = op
                    continue
                op.results[0].replace_all_uses_with(existing.results[0])
                op.erase()
                self.record("duplicate-delays-removed")
            if len(by_amount) > 1:
                # Mark every member of the sharing group so the Verilog
                # backend builds a single tapped chain (the registers saved
                # equal the sum of all but the deepest chain).
                survivors = sorted(by_amount.values(), key=lambda op: op.delay)
                group_id = id(survivors[-1])
                for op in survivors:
                    op.set_attr("share_group", group_id)
                saved = sum(op.delay for op in survivors[:-1])
                self.record("registers-shared", saved)
