"""Reference (pre-worklist) implementations of the scalar optimization passes.

These are the seed implementations that reach their fixpoints by re-walking
the whole module after every change.  They are kept for two reasons:

* **differential oracle** — golden tests assert the worklist-driven passes
  in :mod:`repro.passes` produce bit-identical IR/Verilog, and
* **benchmark baseline** — ``benchmarks/bench_compile_time.py`` measures the
  fast compile path against exactly this code
  (``optimization_pipeline(legacy=True)``).

Do not add new rewrites here; extend the worklist passes and mirror the
behaviour only if the golden tests need it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.types import IntegerType
from repro.hir.ops import ConstantOp, DelayOp, MultOp, constant_value
from repro.passes.canonicalize import _simplify
from repro.passes.common import functions_in
from repro.passes.constant_propagation import _fold_op


class LegacyCanonicalizePass(Pass):
    """Seed canonicalization: full re-walk to fixpoint per rewrite wave."""

    name = "legacy-canonicalize"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._simplify_ops(func)
            self._unique_constants(func)
            self._dead_code_elimination(func)

    def _simplify_ops(self, func) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(func.walk()):
                if op.parent_block is None or not op.results:
                    continue
                replacement = _simplify(op)
                if replacement is None:
                    continue
                op.results[0].replace_all_uses_with(replacement)
                op.erase()
                self.record("ops-simplified")
                changed = True

    def _unique_constants(self, func) -> None:
        seen: Dict[Tuple[int, str], ConstantOp] = {}
        for op in list(func.body.operations):
            if not isinstance(op, ConstantOp):
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            op.results[0].replace_all_uses_with(existing.results[0])
            op.erase()
            self.record("constants-merged")
        for op in list(func.walk()):
            if not isinstance(op, ConstantOp) or op.parent_block is func.body:
                continue
            key = (op.value, str(op.results[0].type))
            existing = seen.get(key)
            if existing is not None:
                op.results[0].replace_all_uses_with(existing.results[0])
                op.erase()
                self.record("constants-merged")

    def _dead_code_elimination(self, func) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(func.walk()):
                if op.parent_block is None:
                    continue
                if not getattr(op, "PURE", False) and not isinstance(op, DelayOp):
                    continue
                if any(result.has_uses for result in op.results):
                    continue
                op.erase()
                self.record("dead-ops-removed")
                changed = True


class LegacyConstantPropagationPass(Pass):
    """Seed constant folding: whole-function re-walks until a fixpoint."""

    name = "legacy-constant-propagation"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            changed = True
            while changed:
                changed = False
                for op in list(func.walk()):
                    if op.parent_block is None:
                        continue
                    folded = _fold_op(op)
                    if folded is None:
                        continue
                    result = op.results[0]
                    result_type = result.type
                    if isinstance(result_type, IntegerType):
                        folded = result_type.wrap(folded)
                    constant = ConstantOp(folded, result_type, location=op.location)
                    op.parent_block.insert_before(op, constant)
                    result.replace_all_uses_with(constant.results[0])
                    op.erase()
                    self.record("ops-folded")
                    changed = True


class LegacyCSEPass(Pass):
    """Seed CSE: scoped hash table with per-run signature recomputation."""

    name = "legacy-cse"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._run_on_block(func.body, [])

    @staticmethod
    def _signature(op: Operation) -> Tuple:
        operand_ids = tuple(id(operand) for operand in op.operands)
        if getattr(op, "COMMUTATIVE", False):
            operand_ids = tuple(sorted(operand_ids))
        attributes = tuple(sorted((k, str(v)) for k, v in op.attributes.items()))
        result_types = tuple(str(r.type) for r in op.results)
        return (op.name, operand_ids, attributes, result_types)

    def _run_on_block(self, block: Block,
                      scopes: List[Dict[Tuple, Operation]]) -> None:
        scopes = scopes + [{}]
        for op in list(block.operations):
            if op.parent_block is None:
                continue
            if getattr(op, "PURE", False) and op.results:
                signature = self._signature(op)
                existing = None
                for scope in reversed(scopes):
                    if signature in scope:
                        existing = scope[signature]
                        break
                if existing is not None:
                    for old, new in zip(op.results, existing.results):
                        old.replace_all_uses_with(new)
                    op.erase()
                    self.record("ops-eliminated")
                    continue
                scopes[-1][signature] = op
            for region in op.regions:
                for nested in region.blocks:
                    self._run_on_block(nested, scopes)


class LegacyStrengthReductionPass(Pass):
    """Seed strength reduction: one full walk rewriting constant multiplies."""

    name = "legacy-strength-reduction"

    def run(self, module: Operation) -> None:
        from repro.passes.strength_reduction import rewrite_mult

        for func in functions_in(module):
            for op in list(func.walk()):
                if not isinstance(op, MultOp) or op.parent_block is None:
                    continue
                if rewrite_mult(op):
                    self.record("multiplies-removed")


class LegacyDelayEliminationPass(Pass):
    """Seed delay elimination: one walk + global sharing-group scan."""

    name = "legacy-delay-elimination"

    def run(self, module: Operation) -> None:
        from repro.passes.delay_elimination import share_delay_groups

        for func in functions_in(module):
            groups: Dict[Tuple[int, int, int], List[DelayOp]] = {}
            for op in list(func.walk()):
                if not isinstance(op, DelayOp) or op.parent_block is None:
                    continue
                if constant_value(op.value) is not None:
                    op.results[0].replace_all_uses_with(op.value)
                    op.erase()
                    self.record("constant-delays-removed")
                    continue
                key = (id(op.value), id(op.time_operand), op.offset)
                groups.setdefault(key, []).append(op)
            share_delay_groups(groups, self.record)
