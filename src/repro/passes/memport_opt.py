"""Memory-port optimization (Section 2, "Ease of optimization").

If a tensor is allocated with separate read and write ports (a simple
dual-port RAM) but the explicit schedule shows reads and writes never happen
in the same cycle, a single-port RAM suffices and saves resources.  HDLs make
this optimization hard because the schedule is hidden inside the controller;
in HIR it is a direct consequence of the schedule analysis.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.values import Value
from repro.hir.ops import AllocOp, FuncOp, MemReadOp, MemWriteOp
from repro.hir.schedule import ScheduleAnalysis, TimeStamp
from repro.passes.common import functions_in


class MemPortOptimizationPass(Pass):
    """Mark dual-port allocations whose ports are never active simultaneously."""

    name = "memport-optimization"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            self._run_on_function(func)

    def _run_on_function(self, func: FuncOp) -> None:
        info = ScheduleAnalysis(func).run()
        for op in func.walk():
            if not isinstance(op, AllocOp) or len(op.results) < 2:
                continue
            if self._ports_never_overlap(func, op, info):
                op.set_attr("single_port", True)
                self.record("allocations-made-single-port")

    def _ports_never_overlap(self, func: FuncOp, alloc: AllocOp, info) -> bool:
        schedules: List[Set[Tuple[int, int]]] = []
        for port in alloc.results:
            offsets = self._port_schedule(func, port, info)
            if offsets is None:
                return False
            schedules.append(offsets)
        combined: Set[Tuple[int, int]] = set()
        for offsets in schedules:
            if combined & offsets:
                return False
            combined |= offsets
        return True

    @staticmethod
    def _port_schedule(func: FuncOp, port: Value, info) -> Optional[Set[Tuple[int, int]]]:
        """Static (time-root, offset) pairs at which ``port`` is accessed."""
        offsets: Set[Tuple[int, int]] = set()
        for op in func.walk():
            if isinstance(op, (MemReadOp, MemWriteOp)) and op.memref is port:
                start: Optional[TimeStamp] = info.start_of(op)
                if start is None:
                    return None
                offsets.add((id(start.root), start.offset))
        return offsets
