"""Standard pass pipelines for the HIR compiler.

Two configurations mirror the paper's evaluation:

* ``optimization_pipeline()`` — the full "auto opt" pipeline (Table 4's "HIR
  (auto opt)" row and the Table 5/6 HIR results).
* ``verification_pipeline()`` — schedule verification only ("HIR (no opt)").
"""

from __future__ import annotations

from repro.ir.pass_manager import PassManager
from repro.passes.canonicalize import CanonicalizePass
from repro.passes.constant_propagation import ConstantPropagationPass
from repro.passes.cse import CSEPass
from repro.passes.delay_elimination import DelayEliminationPass
from repro.passes.memport_opt import MemPortOptimizationPass
from repro.passes.precision_opt import PrecisionOptimizationPass
from repro.passes.schedule_verifier import ScheduleVerifierPass
from repro.passes.strength_reduction import StrengthReductionPass


def verification_pipeline(raise_on_error: bool = True,
                          verify_each: bool = True) -> PassManager:
    """Schedule verification only (no optimization)."""
    manager = PassManager(verify_each=verify_each)
    manager.add(ScheduleVerifierPass(raise_on_error=raise_on_error))
    return manager


def optimization_pipeline(verify_schedule: bool = True,
                          verify_each: bool = True,
                          legacy: bool = False) -> PassManager:
    """The full HIR optimization pipeline used for the paper's evaluation.

    ``legacy=True`` assembles the same pipeline from the seed (full re-walk)
    pass implementations in :mod:`repro.passes.legacy`; it exists as the
    baseline for compile-time benchmarks and as a differential oracle — both
    variants must produce bit-identical IR and Verilog.
    """
    manager = PassManager(verify_each=verify_each)
    if verify_schedule:
        manager.add(ScheduleVerifierPass())
    if legacy:
        from repro.passes.legacy import (
            LegacyCanonicalizePass,
            LegacyConstantPropagationPass,
            LegacyCSEPass,
            LegacyDelayEliminationPass,
            LegacyStrengthReductionPass,
        )

        manager.add(
            LegacyCanonicalizePass(),
            LegacyConstantPropagationPass(),
            LegacyCSEPass(),
            LegacyStrengthReductionPass(),
            LegacyConstantPropagationPass(),
            PrecisionOptimizationPass(),
            LegacyDelayEliminationPass(),
            MemPortOptimizationPass(),
            LegacyCanonicalizePass(),
        )
        return manager
    manager.add(
        CanonicalizePass(),
        ConstantPropagationPass(),
        CSEPass(),
        StrengthReductionPass(),
        ConstantPropagationPass(),
        PrecisionOptimizationPass(),
        DelayEliminationPass(),
        MemPortOptimizationPass(),
        CanonicalizePass(),
    )
    return manager


def pipeline_for(optimize: bool, verify_schedule: bool = True) -> PassManager:
    """Choose between the verification-only and full pipelines."""
    if optimize:
        return optimization_pipeline(verify_schedule=verify_schedule)
    return verification_pipeline(raise_on_error=verify_schedule)
