"""Precision optimization (Section 6.3, Table 4).

Hardware benefits from arbitrarily narrow arithmetic.  HIR's high-level
description makes the analysis easy: constant loop bounds bound the loop
induction variable, and ranges propagate through arithmetic.  The pass

1. runs a forward value-range analysis over each function,
2. narrows loop induction variables to the smallest signed width able to hold
   their range (this shrinks the loop counter, comparator and every address
   adder fed by it), and
3. narrows the results of pure compute ops and delays whose range is known.

The equivalent optimization in an HDL would require reverse-engineering the
loop's state machine, which is exactly the point the paper makes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.types import IntegerType
from repro.ir.values import Value
from repro.hir.ops import (
    AddOp,
    BinaryOp,
    CmpOp,
    DelayOp,
    ExtOp,
    ForOp,
    FuncOp,
    MultOp,
    SelectOp,
    ShlOp,
    SubOp,
    TruncOp,
    UnrollForOp,
    constant_value,
)
from repro.passes.common import functions_in, signed_range_width

Range = Tuple[int, int]


class RangeAnalysis:
    """Forward interval analysis over one function."""

    def __init__(self, func: FuncOp) -> None:
        self.func = func
        self.ranges: Dict[Value, Range] = {}

    def run(self) -> Dict[Value, Range]:
        self._analyse_block(self.func.body.operations)
        return self.ranges

    def range_of(self, value: Value) -> Optional[Range]:
        constant = constant_value(value)
        if constant is not None:
            return (constant, constant)
        return self.ranges.get(value)

    def _analyse_block(self, operations) -> None:
        for op in operations:
            self._analyse_op(op)
            for region in op.regions:
                for block in region.blocks:
                    self._analyse_block(block.operations)

    def _analyse_op(self, op: Operation) -> None:
        if isinstance(op, ForOp):
            self._analyse_for(op)
            return
        if isinstance(op, UnrollForOp):
            # The unrolled induction variable is a compile-time constant.
            self.ranges[op.induction_var] = (op.lower_bound, max(op.lower_bound,
                                                                 op.upper_bound - 1))
            return
        if isinstance(op, DelayOp):
            input_range = self.range_of(op.value)
            if input_range is not None:
                self.ranges[op.results[0]] = input_range
            return
        if isinstance(op, (TruncOp, ExtOp)):
            input_range = self.range_of(op.operand(0))
            if input_range is not None:
                self.ranges[op.results[0]] = input_range
            return
        if isinstance(op, SelectOp):
            true_range = self.range_of(op.true_value)
            false_range = self.range_of(op.false_value)
            if true_range and false_range:
                self.ranges[op.results[0]] = (
                    min(true_range[0], false_range[0]),
                    max(true_range[1], false_range[1]),
                )
            return
        if isinstance(op, CmpOp):
            self.ranges[op.results[0]] = (0, 1)
            return
        if isinstance(op, BinaryOp):
            self._analyse_binary(op)

    def _analyse_for(self, op: ForOp) -> None:
        lb = constant_value(op.lower_bound)
        ub = constant_value(op.upper_bound)
        step = constant_value(op.step)
        if lb is not None and ub is not None and step is not None and step > 0:
            # The induction variable takes values in [lb, ub - 1]; the loop
            # counter itself must additionally be able to hold the exit value.
            self.ranges[op.induction_var] = (lb, max(lb, ub - 1))

    def _analyse_binary(self, op: BinaryOp) -> None:
        lhs = self.range_of(op.lhs)
        rhs = self.range_of(op.rhs)
        if lhs is None or rhs is None:
            return
        if isinstance(op, AddOp):
            result = (lhs[0] + rhs[0], lhs[1] + rhs[1])
        elif isinstance(op, SubOp):
            result = (lhs[0] - rhs[1], lhs[1] - rhs[0])
        elif isinstance(op, MultOp):
            products = [lhs[0] * rhs[0], lhs[0] * rhs[1], lhs[1] * rhs[0], lhs[1] * rhs[1]]
            result = (min(products), max(products))
        elif isinstance(op, ShlOp):
            if rhs[0] != rhs[1] or rhs[0] < 0 or rhs[0] > 31:
                return
            result = (lhs[0] << rhs[0], lhs[1] << rhs[0])
        else:
            return
        self.ranges[op.results[0]] = result


class PrecisionOptimizationPass(Pass):
    """Narrow integer widths using value-range analysis."""

    name = "precision-optimization"
    #: Only value types change; the loop structure is untouched.
    PRESERVES = ("loop-info",)

    def run(self, module: Operation) -> None:
        # The loop forest comes from the shared analysis cache when a pass
        # manager drives us (earlier pipeline passes preserve it).
        loop_info = (self.analyses.get("loop-info", module)
                     if self.analyses is not None else None)
        for func in functions_in(module):
            self._run_on_function(func, loop_info)

    def _run_on_function(self, func: FuncOp, loop_info=None) -> None:
        analysis = RangeAnalysis(func)
        ranges = analysis.run()
        # Narrow loop induction variables first (defs are processed before
        # uses, so dependent delays pick up the new width below).
        if loop_info is not None:
            for_ops = [nest.loop for nest in loop_info.loops
                       if isinstance(nest.loop, ForOp)
                       and any(ancestor is func
                               for ancestor in nest.loop.ancestors())]
        else:
            for_ops = [op for op in func.walk() if isinstance(op, ForOp)]
        for op in for_ops:
            self._narrow_induction_var(op, ranges)
        for op in func.walk():
            if isinstance(op, DelayOp):
                self._narrow_delay(op, ranges)
            elif isinstance(op, BinaryOp):
                self._narrow_result(op, ranges)

    def _narrow_induction_var(self, op: ForOp, ranges: Dict[Value, Range]) -> None:
        iv = op.induction_var
        value_range = ranges.get(iv)
        if value_range is None or not isinstance(iv.type, IntegerType):
            return
        # The hardware counter must also hold the loop exit value (== upper
        # bound) to terminate, so include it in the range.
        upper = constant_value(op.upper_bound)
        high = max(value_range[1], upper if upper is not None else value_range[1])
        needed = signed_range_width(value_range[0], high)
        if needed < iv.type.width:
            self.record("bits-saved", iv.type.width - needed)
            self.record("values-narrowed")
            op.set_iv_type(IntegerType(needed))

    def _narrow_delay(self, op: DelayOp, ranges: Dict[Value, Range]) -> None:
        # A delay's result type must match its (possibly narrowed) input type.
        if op.results[0].type != op.value.type:
            self.record("values-narrowed")
            op.results[0].type = op.value.type

    def _narrow_result(self, op: BinaryOp, ranges: Dict[Value, Range]) -> None:
        result = op.results[0]
        value_range = ranges.get(result)
        if value_range is None or not isinstance(result.type, IntegerType):
            return
        needed = signed_range_width(*value_range)
        if needed < result.type.width:
            self.record("bits-saved", result.type.width - needed)
            self.record("values-narrowed")
            result.type = IntegerType(needed)
