"""Schedule verification (Section 6.1, Figures 1 and 2 of the paper).

HIR's SSA values of primitive type are only valid at a specific clock cycle
relative to a time variable.  The schedule verifier exploits this validity
information plus the explicitly specified schedule of every operation to
detect, at compile time, errors that an HDL compiler cannot see:

* **Invalid operand time** (Figure 1): an operation consumes a value in a
  cycle where it is no longer (or not yet) valid — e.g. using a loop induction
  variable one cycle late in a loop with initiation interval 1.
* **Pipeline imbalance** (Figure 2): the operands of a combinational operation
  arrive in different cycles — e.g. after swapping a two-stage multiplier for
  a three-stage one without re-balancing the adder's other input.
* **Cross-region use**: a value scheduled against one time region (say a loop
  iteration) is consumed relative to a different time variable.
* **Result delay mismatch**: a function declares ``i32 delay 3`` for a result
  but returns a value valid at a different offset.
* **Memory port conflict**: two accesses statically scheduled on the same
  memref port in the same cycle at different constant addresses (undefined
  behaviour per Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.analysis import PRESERVE_ALL
from repro.ir.errors import ScheduleError
from repro.ir.location import Location
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.values import Value
from repro.hir.ops import (
    BinaryOp,
    CallOp,
    CmpOp,
    DelayOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    ReturnOp,
    SelectOp,
    UnrollForOp,
    constant_value,
)
from repro.hir.schedule import ScheduleAnalysis, ScheduleInfo, TimeStamp, UNBOUNDED
from repro.hir.types import ConstType, MemrefType

#: Diagnostic kinds emitted by the verifier.
INVALID_OPERAND_TIME = "invalid-operand-time"
PIPELINE_IMBALANCE = "pipeline-imbalance"
CROSS_REGION_USE = "cross-region-use"
RESULT_DELAY_MISMATCH = "result-delay-mismatch"
PORT_CONFLICT = "memory-port-conflict"


@dataclass
class ScheduleDiagnostic:
    """One schedule error, formatted like the paper's compiler diagnostics."""

    kind: str
    message: str
    op: Operation
    location: Location
    function: str

    def render(self) -> str:
        return f"{self.location}: error: [{self.kind}] {self.message}"

    def __str__(self) -> str:
        return self.render()


@dataclass
class VerificationReport:
    """All diagnostics produced for a module."""

    diagnostics: List[ScheduleDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def of_kind(self, kind: str) -> List[ScheduleDiagnostic]:
        return [d for d in self.diagnostics if d.kind == kind]

    def render(self) -> str:
        if self.ok:
            return "schedule verification: no errors"
        return "\n".join(d.render() for d in self.diagnostics)


class _FunctionVerifier:
    """Verifies the schedule of a single function."""

    def __init__(self, module: Optional[ModuleOp], func: FuncOp,
                 report: VerificationReport) -> None:
        self.module = module
        self.func = func
        self.report = report
        self.info: ScheduleInfo = ScheduleAnalysis(func).run()

    # -- diagnostics -----------------------------------------------------------
    def error(self, kind: str, op: Operation, message: str) -> None:
        self.report.diagnostics.append(
            ScheduleDiagnostic(kind, message, op, op.location, self.func.symbol_name)
        )

    def _describe_validity(self, value: Value) -> str:
        time = self.info.time_of(value)
        if time is None:
            return f"%{value.display_name()} is not bound to a clock cycle"
        window = self.info.window_of(value)
        if window == UNBOUNDED:
            return f"%{value.display_name()} is valid from {time} onwards"
        if window == 0:
            return f"%{value.display_name()} is only valid at {time}"
        return (
            f"%{value.display_name()} is valid during "
            f"[{time}, {time.advanced(window)}]"
        )

    # -- operand checks -----------------------------------------------------------
    def _is_stable_ancestor_iv(self, op: Operation, operand: Value) -> bool:
        """Is ``operand`` the induction variable of a loop enclosing ``op``?

        The paper's undefined-behaviour assumption 4 ("a new instance of a
        for-loop is not scheduled unless the previous instance has completed
        all iterations") guarantees that an enclosing loop's induction
        variable is stable for the entire execution of any loop nested inside
        its body, so such uses are valid even though they cross time regions
        (e.g. ``%i`` indexing a memref inside the ``j``-loop of Listing 1).
        Uses inside the loop's *own* body (no intervening loop) are still
        subject to the initiation-interval window check — that is exactly the
        Figure 1 error.
        """
        loop_ancestors = [a for a in op.ancestors()
                          if isinstance(a, (ForOp, UnrollForOp))]
        for index, ancestor in enumerate(loop_ancestors):
            if operand is ancestor.induction_var:
                return index > 0
        return False

    def _is_stable_for_use(self, op: Operation, operand: Value,
                           depth: int = 0) -> bool:
        """Is ``operand`` guaranteed stable for the whole region executing ``op``?

        True for enclosing-loop induction variables and for pure combinational
        expressions built exclusively from such stable values and constants
        (e.g. ``%oi + 1`` used as a read address inside a nested loop).
        """
        if depth > 16:
            return False
        if self._is_stable_ancestor_iv(op, operand):
            return True
        defining = getattr(operand, "operation", None)
        if defining is None or not getattr(defining, "PURE", False):
            return False
        if not defining.operands:
            return True  # hir.constant
        return all(
            self.info.is_timeless(o) or self._is_stable_for_use(op, o, depth + 1)
            for o in defining.operands
        )

    def _check_use(self, op: Operation, operand: Value, when: TimeStamp,
                   role: str) -> None:
        if self.info.is_timeless(operand):
            return
        if self.info.window_of(operand) == UNBOUNDED:
            # Stable values (e.g. scalar arguments the caller holds constant)
            # may be consumed at any cycle.
            return
        if self._is_stable_for_use(op, operand):
            return
        valid = self.info.time_of(operand)
        assert valid is not None
        if valid.root is not when.root:
            self.error(
                CROSS_REGION_USE,
                op,
                f"{role} %{operand.display_name()} of '{op.name}' is defined "
                f"relative to time variable %{valid.root.display_name() or 't'} "
                f"but is used relative to %{when.root.display_name() or 't'}; "
                "values cannot cross time regions without an explicit schedule "
                "relationship",
            )
            return
        if self.info.is_valid_at(operand, when):
            return
        message = (
            f"{role} %{operand.display_name()} of '{op.name}' is used at {when} "
            f"but {self._describe_validity(operand)}"
        )
        hint = self._late_use_hint(operand, when)
        if hint:
            message += f"; {hint}"
        self.error(INVALID_OPERAND_TIME, op, message)

    def _late_use_hint(self, operand: Value, when: TimeStamp) -> Optional[str]:
        """Explain *why* the use is invalid, in the spirit of Figure 1."""
        valid = self.info.time_of(operand)
        if valid is None or valid.root is not when.root:
            return None
        owner = self.info.time_var_owner.get(valid.root)
        if isinstance(owner, ForOp) and operand is owner.induction_var:
            ii = owner.initiation_interval()
            if ii is not None and when.offset > valid.offset + max(ii - 1, 0):
                return (
                    f"the enclosing hir.for has initiation interval {ii}, so "
                    f"%{operand.display_name()} has already advanced to the next "
                    "iteration's value; delay it with hir.delay"
                )
        if when.offset > valid.offset:
            lag = when.offset - valid.offset
            return f"insert 'hir.delay ... by {lag}' to balance the schedule"
        return None

    # -- per-op verification -----------------------------------------------------------
    def verify(self) -> None:
        if self.func.is_external:
            return
        self._verify_block(self.func.body.operations)
        self._verify_port_conflicts()
        self._verify_result_delays()

    def _verify_block(self, operations: List[Operation]) -> None:
        for op in operations:
            self._verify_op(op)
            for region in op.regions:
                for block in region.blocks:
                    self._verify_block(block.operations)

    def _verify_op(self, op: Operation) -> None:
        if isinstance(op, MemReadOp):
            start = self.info.start_of(op)
            assert start is not None
            for index in op.indices:
                self._check_use(op, index, start, "address operand")
        elif isinstance(op, MemWriteOp):
            start = self.info.start_of(op)
            assert start is not None
            for index in op.indices:
                self._check_use(op, index, start, "address operand")
            self._check_use(op, op.value, start, "data operand")
        elif isinstance(op, CallOp):
            start = self.info.start_of(op)
            assert start is not None
            arg_delays = self._callee_arg_delays(op)
            for i, arg in enumerate(op.args):
                delay = arg_delays[i] if arg_delays and i < len(arg_delays) else 0
                self._check_use(op, arg, start.advanced(delay), f"argument #{i}")
        elif isinstance(op, DelayOp):
            input_time = self.info.time_of(op.value)
            start = self.info.start_of(op)
            if input_time is not None and start is not None:
                if input_time.root is not start.root:
                    self._check_use(op, op.value, start, "input")
        elif isinstance(op, (BinaryOp, CmpOp, SelectOp)):
            self._verify_combinational(op)
        elif isinstance(op, (ForOp, UnrollForOp)):
            self._verify_loop_operands(op)

    def _verify_combinational(self, op: Operation) -> None:
        """All timed operands of a combinational op must arrive in the same cycle."""
        timed: List[Tuple[int, Value, TimeStamp]] = []
        for i, operand in enumerate(op.operands):
            time = self.info.time_of(operand)
            if time is None or self.info.is_timeless(operand):
                continue
            if self.info.window_of(operand) == UNBOUNDED:
                continue
            if self._is_stable_for_use(op, operand):
                continue
            timed.append((i, operand, time))
        if len(timed) < 2:
            return
        _, first_value, first_time = timed[0]
        for index, operand, time in timed[1:]:
            if time.root is not first_time.root:
                self.error(
                    CROSS_REGION_USE,
                    op,
                    f"operands of '{op.name}' belong to different time regions: "
                    f"%{first_value.display_name()} is scheduled against "
                    f"%{first_time.root.display_name()} while "
                    f"%{operand.display_name()} is scheduled against "
                    f"%{time.root.display_name()}",
                )
            elif time.offset != first_time.offset:
                window_first = self.info.window_of(first_value)
                window_other = self.info.window_of(operand)
                overlap_ok = self._windows_overlap(
                    first_time, window_first, time, window_other
                )
                if overlap_ok:
                    continue
                lag = abs(time.offset - first_time.offset)
                earlier, later = (
                    (operand, first_value)
                    if time.offset < first_time.offset
                    else (first_value, operand)
                )
                self.error(
                    PIPELINE_IMBALANCE,
                    op,
                    f"pipeline imbalance in '{op.name}': operand #{timed[0][0]} "
                    f"(%{first_value.display_name()}) is valid at {first_time} but "
                    f"operand #{index} (%{operand.display_name()}) is valid at "
                    f"{time}; delay %{earlier.display_name()} by {lag} cycle(s) "
                    f"with hir.delay so both inputs of the operation arrive "
                    "together",
                )

    @staticmethod
    def _windows_overlap(a: TimeStamp, a_window: int, b: TimeStamp, b_window: int) -> bool:
        if a_window == UNBOUNDED or b_window == UNBOUNDED:
            return True
        a_end = a.offset + a_window
        b_end = b.offset + b_window
        return not (a_end < b.offset or b_end < a.offset)

    def _verify_loop_operands(self, op: Operation) -> None:
        if isinstance(op, ForOp):
            for role, operand in (
                ("lower bound", op.lower_bound),
                ("upper bound", op.upper_bound),
                ("step", op.step),
            ):
                if isinstance(operand.type, ConstType):
                    continue
                start = self.info.start_of(op)
                if start is not None:
                    self._check_use(op, operand, start, role)

    # -- whole-function checks ----------------------------------------------------
    def _callee_arg_delays(self, op: CallOp) -> Optional[Tuple[int, ...]]:
        if self.module is None:
            return None
        callee = self.module.lookup(op.callee)
        if isinstance(callee, FuncOp):
            return callee.arg_delays
        return None

    def _verify_result_delays(self) -> None:
        return_op = None
        for op in self.func.body.operations:
            if isinstance(op, ReturnOp):
                return_op = op
        if return_op is None:
            return
        declared = self.func.result_delays
        for i, value in enumerate(return_op.operands):
            if i >= len(declared) or self.info.is_timeless(value):
                continue
            time = self.info.time_of(value)
            assert time is not None
            if time.root is not self.func.time_arg:
                continue
            if time.offset != declared[i]:
                self.error(
                    RESULT_DELAY_MISMATCH,
                    return_op,
                    f"function @{self.func.symbol_name} declares result #{i} with "
                    f"delay {declared[i]} but the returned value "
                    f"%{value.display_name()} is valid at {time} "
                    f"(offset {time.offset})",
                )

    def _verify_port_conflicts(self) -> None:
        """Two statically-scheduled accesses on one port in the same cycle are UB."""
        accesses: Dict[Tuple[int, Value, int], List[Operation]] = {}
        for op in self.func.walk():
            if isinstance(op, (MemReadOp, MemWriteOp)):
                start = self.info.start_of(op)
                if start is None:
                    continue
                key = (id(start.root), op.memref, start.offset)
                accesses.setdefault(key, []).append(op)
        for (_, memref, offset), ops in accesses.items():
            if len(ops) < 2:
                continue
            addresses = [self._static_address(op) for op in ops]
            if None in addresses:
                continue
            memref_type = memref.type
            if not isinstance(memref_type, MemrefType):
                continue
            # Accesses that land in different banks (their addresses differ in
            # a distributed dimension) use different physical buffers and are
            # allowed; only same-bank accesses at different in-bank addresses
            # conflict (Section 4.5).
            per_bank: Dict[int, Set[int]] = {}
            for address in addresses:
                bank = memref_type.bank_of(address)       # type: ignore[arg-type]
                in_bank = memref_type.offset_in_bank(address)  # type: ignore[arg-type]
                per_bank.setdefault(bank, set()).add(in_bank)
            conflicting_banks = [b for b, addrs in per_bank.items() if len(addrs) > 1]
            if conflicting_banks:
                conflicting = ops[1]
                self.error(
                    PORT_CONFLICT,
                    conflicting,
                    f"{len(ops)} accesses to memref "
                    f"%{memref.display_name()} are scheduled in the same cycle "
                    f"(offset {offset}) at different addresses of the same bank; "
                    "each memref is a single memory port (Section 4.5), so this "
                    "is undefined behaviour — use another port or memory banking",
                )

    @staticmethod
    def _static_address(op: Operation) -> Optional[Tuple[int, ...]]:
        indices = op.indices  # type: ignore[attr-defined]
        values = []
        for index in indices:
            value = constant_value(index)
            if value is None:
                return None
            values.append(value)
        return tuple(values)


class ScheduleVerifierPass(Pass):
    """Pass wrapper: verify the schedule of every function in a module."""

    name = "schedule-verifier"
    #: Analysis-only: the module is not mutated, so cached analyses survive.
    PRESERVES = PRESERVE_ALL

    def __init__(self, raise_on_error: bool = True) -> None:
        super().__init__()
        self.raise_on_error = raise_on_error
        self.report = VerificationReport()

    def run(self, module: Operation) -> None:
        self.report = verify_schedule(module, raise_on_error=False)
        self.record("functions-verified",
                    sum(1 for op in module.walk() if isinstance(op, FuncOp)))
        self.record("errors-found", len(self.report.diagnostics))
        if self.raise_on_error and not self.report.ok:
            first = self.report.diagnostics[0]
            raise ScheduleError(first.message, first.location)


def verify_schedule(module: Operation, raise_on_error: bool = False) -> VerificationReport:
    """Verify every function's schedule; return (or raise on) the diagnostics."""
    report = VerificationReport()
    module_op = module if isinstance(module, ModuleOp) else None
    functions = [op for op in module.walk() if isinstance(op, FuncOp)]
    for func in functions:
        _FunctionVerifier(module_op, func, report).verify()
    if raise_on_error and not report.ok:
        first = report.diagnostics[0]
        raise ScheduleError(first.message, first.location)
    return report
