"""Strength reduction (Section 6.2).

Integer multiplication consumes DSP slices or large LUT cascades; shifts and
additions are nearly free.  The optimizer therefore replaces multiplications
by compile-time constants with cheaper shift/add forms:

* ``x * 0``        → constant 0
* ``x * 1``        → ``x``
* ``x * 2**k``     → ``x << k``
* ``x * c`` where ``c`` has at most two set bits → ``(x << k1) + (x << k2)``

The paper phrases this as "replacing multiplication between loop induction
variables and constants with increments"; in SSA form without loop-carried
registers, the shift/add decomposition is the equivalent rewrite, and it
removes the same multipliers from the generated design.

The rewrite itself lives in :func:`rewrite_mult` so the worklist pass here
and the legacy reference pass share one implementation byte for byte.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.rewriter import PatternRewriter, RewritePattern
from repro.ir.values import Value
from repro.hir.ops import AddOp, ConstantOp, MultOp, ShlOp, constant_value
from repro.passes.common import functions_in

#: Maximum number of set bits in the constant for the shift/add rewrite.
MAX_TERMS = 2


def _set_bits(value: int) -> List[int]:
    bits = []
    position = 0
    while value:
        if value & 1:
            bits.append(position)
        value >>= 1
        position += 1
    return bits


def _split_operands(op: MultOp) -> Tuple[Optional[int], Optional[Value]]:
    lhs_const = constant_value(op.lhs)
    rhs_const = constant_value(op.rhs)
    if lhs_const is not None and rhs_const is not None:
        # Fully constant multiplications belong to constant propagation.
        return None, None
    if rhs_const is not None:
        return rhs_const, op.lhs
    if lhs_const is not None:
        return lhs_const, op.rhs
    return None, None


def rewrite_mult(op: MultOp, max_terms: int = MAX_TERMS) -> bool:
    """Rewrite one constant multiplication in place; True iff it changed."""
    constant, variable = _split_operands(op)
    if constant is None or variable is None or constant < 0:
        return False
    block = op.parent_block
    result = op.results[0]
    result_type = result.type

    if constant == 0:
        zero = ConstantOp(0, result_type, location=op.location)
        block.insert_before(op, zero)
        result.replace_all_uses_with(zero.results[0])
        op.erase()
        return True
    if constant == 1:
        result.replace_all_uses_with(variable)
        op.erase()
        return True

    bits = _set_bits(constant)
    if len(bits) > max_terms:
        return False

    terms: List[Value] = []
    for bit in bits:
        if bit == 0:
            terms.append(variable)
            continue
        shift_amount = ConstantOp(bit, location=op.location)
        block.insert_before(op, shift_amount)
        shift = ShlOp(variable, shift_amount.results[0], result_type,
                      location=op.location)
        block.insert_before(op, shift)
        terms.append(shift.results[0])

    combined = terms[0]
    for term in terms[1:]:
        add = AddOp(combined, term, result_type, location=op.location)
        block.insert_before(op, add)
        combined = add.results[0]
    result.replace_all_uses_with(combined)
    op.erase()
    return True


class _MultPattern(RewritePattern):
    op_names = (MultOp.OPERATION_NAME,)

    def __init__(self, pass_: "StrengthReductionPass") -> None:
        self._pass = pass_

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        if rewrite_mult(op, self._pass.max_terms):
            self._pass.record("multiplies-removed")
            return True
        return False


class StrengthReductionPass(Pass):
    """Rewrite multiplications by constants into shifts and adds."""

    name = "strength-reduction"
    PRESERVES = ("loop-info",)

    #: Maximum number of set bits in the constant for the shift/add rewrite.
    max_terms = MAX_TERMS

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            PatternRewriter([_MultPattern(self)]).rewrite(func)
