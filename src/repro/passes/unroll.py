"""Lowering of ``hir.unroll_for`` by full replication (Section 7.3).

Unrolling replicates the loop body in hardware: iteration ``k`` gets its own
copy of every operation, with the induction variable replaced by the constant
``lb + k*step`` and the iteration start time folded into each operation's
scheduling offset (iteration ``k`` starts ``k * II`` cycles after the loop,
where ``II`` is the offset of the loop's ``hir.yield`` — 0 for fully parallel
loops such as Listing 4).

The code generator runs this lowering before translating to Verilog; it is
also exposed as a pass so tests and ablations can apply it in isolation.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.values import Value
from repro.hir.ops import ConstantOp, UnrollForOp, YieldOp
from repro.hir.types import CONST
from repro.passes.common import functions_in


class LoopUnrollPass(Pass):
    """Replace every ``hir.unroll_for`` with fully replicated bodies."""

    name = "loop-unroll"

    def run(self, module: Operation) -> None:
        for func in functions_in(module):
            # One walk collects every unroll_for with its nesting depth.
            # Unrolling innermost-first means replicated bodies never contain
            # another unroll_for, so no rescans are needed — the seed version
            # re-walked the whole function once per unrolled loop.
            loops = []

            def collect(op: Operation, depth: int) -> None:
                for region in op.regions:
                    for block in region.blocks:
                        for nested in block.operations:
                            if isinstance(nested, UnrollForOp):
                                loops.append((depth, nested))
                            collect(nested, depth + 1)

            collect(func, 0)
            for _depth, op in sorted(loops, key=lambda item: -item[0]):
                if op.parent_block is None:
                    continue  # already replicated away with an enclosing loop
                self._unroll(op)
                self.record("loops-unrolled")

    def _unroll(self, op: UnrollForOp) -> None:
        block = op.parent_block
        assert block is not None
        yield_op = op.yield_op()
        interval = yield_op.offset if yield_op is not None else 0
        base_offset = op.offset
        insert_index = block.index_of(op)

        iterations = op.iterations()
        last_offset = base_offset
        for k, iv_value in enumerate(iterations):
            iteration_offset = base_offset + k * interval
            last_offset = iteration_offset
            constant = ConstantOp(iv_value, CONST, location=op.location)
            constant.results[0].name_hint = f"{op.induction_var.name_hint or 'u'}{iv_value}"
            block.insert(insert_index, constant)
            insert_index += 1
            value_map: Dict[Value, Value] = {
                op.induction_var: constant.results[0],
                op.iter_time: op.time_operand,
            }
            for body_op in op.body.operations:
                if isinstance(body_op, YieldOp):
                    continue
                clone = body_op.clone(value_map)
                self._shift_schedule(clone, op, iteration_offset)
                block.insert(insert_index, clone)
                insert_index += 1

        # The loop's completion time: every unrolled op is now scheduled
        # relative to the parent time variable, so the done-time result simply
        # aliases it at the final iteration's offset.  Uses of the done time
        # become uses of the parent time variable; downstream offsets keep
        # their meaning because the final offset is folded into them.
        done = op.results[0]
        for use in list(done.uses):
            user = use.operation
            user.set_operand(use.operand_index, op.time_operand)
            current = user.get_attr("offset")
            extra = last_offset + interval
            if current is not None:
                user.set_attr("offset", current.value + extra)  # type: ignore[union-attr]
            else:
                user.set_attr("offset", extra)
        op.erase()

    @staticmethod
    def _shift_schedule(op: Operation, loop: UnrollForOp, extra_offset: int) -> None:
        """Fold the unrolled iteration's start offset into cloned operations.

        Any cloned operation (at any nesting depth) whose time operand was the
        loop's iteration time now refers to the loop's own time operand; its
        scheduling offset must grow by the iteration's start offset.
        """
        if extra_offset == 0:
            return
        for nested in op.walk():
            uses_parent_time = any(
                operand is loop.time_operand for operand in nested.operands
            )
            if not uses_parent_time:
                continue
            if nested.has_attr("offset") or _is_scheduled(nested):
                current = nested.get_attr("offset")
                base = current.value if current is not None else 0  # type: ignore[union-attr]
                nested.set_attr("offset", base + extra_offset)


def _is_scheduled(op: Operation) -> bool:
    from repro.hir.ops import HIROperation

    return isinstance(op, HIROperation) and op.has_time_operand


def unroll_all(module: Operation) -> None:
    """Convenience wrapper used by the code generator."""
    LoopUnrollPass().run(module)
