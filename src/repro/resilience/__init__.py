"""Deterministic fault injection and recovery primitives.

:mod:`repro.resilience.faults` provides the seeded :class:`FaultPlan` and
the :func:`fault_point` hooks that :mod:`repro.store`, the parallel DSE
(:mod:`repro.hls.dse`) and the simulation-engine compile path declare.
:class:`WorkerError` is the typed error a supervised DSE sweep raises when a
candidate cannot be evaluated even after retry and serial fallback.

See the README "Robustness & persistence" section for the fault-point map
and the degradation ladder.
"""

from repro.ir.errors import HLSError
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedError,
    InjectedFault,
    InjectedIOError,
    TornWrite,
    active_plan,
    bump,
    fault_point,
    install_plan,
    reset_resilience_counters,
    resilience_counters,
    set_plan,
)


class WorkerError(HLSError):
    """A DSE worker failed (crash/timeout) and every recovery attempt —
    in-process retry, serial fallback — failed with it."""


__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedError",
    "InjectedFault",
    "InjectedIOError",
    "TornWrite",
    "WorkerError",
    "active_plan",
    "bump",
    "fault_point",
    "install_plan",
    "reset_resilience_counters",
    "resilience_counters",
    "set_plan",
]
