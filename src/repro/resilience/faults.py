"""Deterministic fault injection: every failure mode is a seeded test input.

A persistent artifact store (or a parallel DSE sweep) that survives faults
only *probably* is worthless — the recovery paths must be exercised exactly
like the happy paths are.  This module turns each failure mode into a named,
seeded, replayable event:

* Code under test declares **fault points** — ``fault_point("store.write",
  payload=data)`` — at the places where the outside world can go wrong
  (writes, fsyncs, renames, reads, locks, worker evaluations, engine
  compiles).  With no plan installed a fault point is a no-op returning its
  payload unchanged, so the hooks are free in production.
* A :class:`FaultPlan` holds :class:`FaultRule`\\ s — *which* point misfires,
  *how* (``io_error``, ``torn``, ``corrupt``, ``error``, ``timeout``,
  ``crash``), and on which hit numbers.  Hit counting and payload corruption
  are deterministic functions of the plan, so a failing run replays
  byte-for-byte from ``(program seed, plan spec)``.
* Plans install process-wide via :func:`install_plan` (tests), or through
  the ``REPRO_FAULT_PLAN`` environment variable (CI chaos jobs, subprocess
  crash tests, process-pool DSE workers — children inherit the environment
  and self-install on their first fault point).

Plan specs are compact strings, validated by :func:`FaultPlan.parse`::

    store.write:io_error          # first write raises an injected OSError
    store.write:torn@2            # 2nd write is torn (partial temp + error)
    store.payload:corrupt         # first payload is bit-flipped
    dse.candidate:error@3*2       # evaluations 3 and 4 raise
    dse.candidate:timeout(0.4)    # first evaluation stalls 400 ms
    store.rename:crash            # SIGKILL between temp write and publish

Multiple rules join with ``;`` (or ``,``).  The injected exceptions subclass
:class:`InjectedFault` so recovery code can tell a drill from the real thing
while still exercising the ``OSError``/``RuntimeError`` handling paths.
"""

from __future__ import annotations

import os
import re
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedError",
    "InjectedFault",
    "InjectedIOError",
    "TornWrite",
    "active_plan",
    "bump",
    "fault_point",
    "install_plan",
    "resilience_counters",
    "reset_resilience_counters",
    "set_plan",
]

#: Process-lifetime recovery counters (always on, unlike the tracer):
#: every injected fault, retry, fallback and degradation increments one,
#: and ``python -m repro stats`` prints the non-zero ones.
_COUNTERS: Dict[str, int] = {}
_COUNTERS_LOCK = threading.Lock()


def bump(name: str, delta: int = 1) -> None:
    """Increment the process-lifetime resilience counter ``name``."""
    with _COUNTERS_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + delta


def resilience_counters() -> Dict[str, int]:
    """A snapshot of every resilience counter (injections, retries,
    fallbacks, degradations)."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def reset_resilience_counters() -> None:
    """Zero the counters (tests)."""
    with _COUNTERS_LOCK:
        _COUNTERS.clear()

#: Supported fault kinds (see the module docstring for semantics).
FAULT_KINDS: Tuple[str, ...] = ("io_error", "torn", "corrupt", "error",
                                "timeout", "crash")


class FaultPlanError(ValueError):
    """A fault-plan spec string does not parse or names an unknown kind."""


class InjectedFault(Exception):
    """Marker base: the failure was injected by a plan, not the real world."""


class InjectedIOError(InjectedFault, OSError):
    """Injected I/O failure (``io_error`` and the tail of ``torn``)."""


class InjectedError(InjectedFault, RuntimeError):
    """Injected generic failure (``error``): a crashed worker, a broken
    compile — anything that dies with an exception rather than an errno."""


class TornWrite(InjectedFault):
    """Internal protocol exception of the ``torn`` kind.

    :func:`fault_point` raises it; the atomic writer in
    :mod:`repro.store.io` catches it, writes only ``keep_fraction`` of the
    payload to the temp file, deliberately leaves that debris on disk, and
    re-raises an :class:`InjectedIOError` — the observable behaviour of a
    process dying mid-write.
    """

    def __init__(self, keep_fraction: float = 0.5) -> None:
        super().__init__(f"torn write (keep {keep_fraction:.0%})")
        self.keep_fraction = keep_fraction


@dataclass(frozen=True)
class FaultRule:
    """One scheduled misfire: ``point`` fails as ``kind`` on hits
    ``[at, at + count)`` (1-based per-process hit numbering)."""

    point: str
    kind: str
    at: int = 1
    count: int = 1
    #: ``timeout`` kind: how long the stall lasts.
    seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} for point "
                f"{self.point!r}; choose one of {list(FAULT_KINDS)}")
        if self.at < 1:
            raise FaultPlanError(f"rule for {self.point!r}: @at must be >= 1")
        if self.count < 1:
            raise FaultPlanError(f"rule for {self.point!r}: *count must be "
                                 ">= 1")

    def fires_on(self, hit: int) -> bool:
        return self.at <= hit < self.at + self.count

    def spec(self) -> str:
        text = f"{self.point}:{self.kind}"
        if self.kind == "timeout":
            text = f"{self.point}:timeout({self.seconds:g})"
        if self.at != 1:
            text += f"@{self.at}"
        if self.count != 1:
            text += f"*{self.count}"
        return text


_RULE_RE = re.compile(
    r"^(?P<point>[A-Za-z0-9_.\-]+):(?P<kind>[a-z_]+)"
    r"(?:\((?P<seconds>[0-9.]+)\))?"
    r"(?:@(?P<at>\d+))?(?:\*(?P<count>\d+))?$"
)


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus per-point hit counters.

    Hit counters are per *plan instance* (and therefore per process for
    env-installed plans), guarded by a lock so concurrent DSE workers count
    deterministically in aggregate.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._hits: Dict[str, int] = {}
        self._injected = 0
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a plan spec string (see module docstring for the grammar)."""
        rules: List[FaultRule] = []
        for chunk in re.split(r"[;,]", spec):
            chunk = chunk.strip()
            if not chunk:
                continue
            match = _RULE_RE.match(chunk)
            if match is None:
                raise FaultPlanError(
                    f"bad fault rule {chunk!r}: expected "
                    "point:kind[(seconds)][@at][*count]")
            kwargs = dict(point=match.group("point"),
                          kind=match.group("kind"))
            if match.group("seconds") is not None:
                if kwargs["kind"] != "timeout":
                    raise FaultPlanError(
                        f"bad fault rule {chunk!r}: only timeout takes "
                        "(seconds)")
                kwargs["seconds"] = float(match.group("seconds"))
            if match.group("at") is not None:
                kwargs["at"] = int(match.group("at"))
            if match.group("count") is not None:
                kwargs["count"] = int(match.group("count"))
            rules.append(FaultRule(**kwargs))
        return cls(rules, seed=seed)

    def spec(self) -> str:
        """Round-trippable spec string of this plan."""
        return ";".join(rule.spec() for rule in self.rules)

    # -- accounting ----------------------------------------------------------
    def hits(self, point: Optional[str] = None) -> int:
        with self._lock:
            if point is not None:
                return self._hits.get(point, 0)
            return sum(self._hits.values())

    @property
    def injected(self) -> int:
        """How many faults this plan has fired so far."""
        return self._injected

    def reset(self) -> None:
        """Zero the hit counters (replay the plan from the start)."""
        with self._lock:
            self._hits.clear()
            self._injected = 0

    def _hit(self, point: str) -> Optional[FaultRule]:
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for rule in self.rules:
                if rule.point == point and rule.fires_on(hit):
                    self._injected += 1
                    return rule
            return None

    # -- payload corruption --------------------------------------------------
    def corrupt(self, payload: bytes, point: str, hit: int) -> bytes:
        """Deterministically flip one byte of ``payload`` (bit-rot model)."""
        if not payload:
            return payload
        # A tiny LCG keyed on (seed, point, hit): deterministic without
        # importing numpy here, and stable across processes.
        state = (self.seed * 1_000_003 + hash(point) % 65_521 + hit) & 0xFFFFFFFF
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        index = state % len(payload)
        flip = ((state >> 8) % 255) + 1      # never 0: the byte must change
        mutated = bytearray(payload)
        mutated[index] ^= flip
        return bytes(mutated)


# --------------------------------------------------------------------------- #
# The active plan (process-wide, environment-aware)
# --------------------------------------------------------------------------- #

#: Sentinel: the environment has not been consulted yet.
_UNSET = object()
_ACTIVE = _UNSET
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The installed plan; reads ``REPRO_FAULT_PLAN`` once on first use.

    Returns ``None`` when fault injection is off (the overwhelmingly common
    case).  Process-pool workers inherit the environment, so a plan set for
    a CI chaos run reaches every process that hits a fault point.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        with _ACTIVE_LOCK:
            if _ACTIVE is _UNSET:
                spec = os.environ.get("REPRO_FAULT_PLAN", "")
                _ACTIVE = FaultPlan.parse(spec) if spec.strip() else None
    return _ACTIVE


def set_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (``None`` disables injection, including
    any ``REPRO_FAULT_PLAN`` environment plan); returns the previous plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return None if previous is _UNSET else previous


def _reset_env_plan() -> None:
    """Forget the cached environment plan (tests that monkeypatch env)."""
    global _ACTIVE
    _ACTIVE = _UNSET


class install_plan:
    """Context manager scoping a plan: ``with install_plan(plan): ...``."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self._previous = _UNSET

    def __enter__(self) -> Optional[FaultPlan]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


# --------------------------------------------------------------------------- #
# The hook
# --------------------------------------------------------------------------- #


def fault_point(name: str, payload: Optional[bytes] = None) -> Optional[bytes]:
    """Declare a fault point; returns ``payload`` (possibly corrupted).

    With no plan installed this is one global read and a ``None`` check.
    When a rule fires:

    * ``io_error`` raises :class:`InjectedIOError`;
    * ``error`` raises :class:`InjectedError`;
    * ``torn`` raises :class:`TornWrite` (the atomic writer cooperates);
    * ``corrupt`` returns a deterministically bit-flipped payload;
    * ``timeout`` sleeps ``rule.seconds`` and returns normally;
    * ``crash`` SIGKILLs the process — the real thing, for crash-recovery
      tests driven from a parent process.
    """
    plan = active_plan()
    if plan is None:
        return payload
    rule = plan._hit(name)
    if rule is None:
        return payload
    from repro.obs.tracer import TRACER
    bump("faults.injected")
    TRACER.count("faults.injected")
    TRACER.event("fault.injected", cat="resilience", point=name,
                 kind=rule.kind)
    if rule.kind == "io_error":
        raise InjectedIOError(f"injected io_error at fault point '{name}'")
    if rule.kind == "error":
        raise InjectedError(f"injected error at fault point '{name}'")
    if rule.kind == "torn":
        raise TornWrite()
    if rule.kind == "timeout":
        time.sleep(rule.seconds)
        return payload
    if rule.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    # corrupt
    if payload is not None:
        return plan.corrupt(payload, name, plan.hits(name))
    return payload
