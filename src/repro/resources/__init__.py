"""FPGA resource model: LUT / FF / DSP / BRAM estimation of generated Verilog."""

from repro.resources.model import (
    BRAM_THRESHOLD_BITS,
    BRAM_TILE_BITS,
    ResourceModel,
    ResourceReport,
    estimate_resources,
)
from repro.resources.report import format_comparison, format_table

__all__ = [
    "BRAM_THRESHOLD_BITS",
    "BRAM_TILE_BITS",
    "ResourceModel",
    "ResourceReport",
    "estimate_resources",
    "format_comparison",
    "format_table",
]
