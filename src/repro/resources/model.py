"""FPGA resource estimation (the Vivado-synthesis substitute).

The paper reports post-synthesis LUT / FF / DSP / BRAM counts on a Xilinx
VC709.  We cannot run vendor synthesis, so both compilers' output is charged
by the same per-construct cost model, calibrated to Xilinx 7-series mapping
rules:

* **FF** — one flip-flop per declared register bit.
* **LUT** — carry-chain adders/subtractors cost ~1 LUT per bit; comparators
  and bitwise logic ~0.5 LUT per bit; 2:1 multiplexers ~0.5 LUT per bit per
  selected input; multiplications by constants are decomposed into shift/adds.
* **DSP** — a variable x variable multiply of widths ``w1 x w2`` maps to
  ``ceil(w1*w2 / (18*25))`` DSP48 slices (three for 32x32, matching the
  768 DSPs / 256 PEs of the paper's GEMM).
* **BRAM / distributed RAM** — memories larger than 1024 bits (or explicitly
  requested as block RAM) use 18-kbit BRAM tiles; smaller memories map to
  LUT-RAM at ~1 LUT per 2 stored bits plus addressing.

Because the *same* model is applied to the HIR compiler's output and to the
baseline HLS compiler's output, relative comparisons (who uses more, by how
much) are meaningful even though absolute numbers differ from Vivado's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.verilog.ast import (
    AlwaysFF,
    Assign,
    BinOp,
    Const,
    Design,
    Display,
    Expr,
    If,
    Instance,
    MemIndex,
    MemoryDecl,
    MemWrite,
    Module,
    NonBlockingAssign,
    Ref,
    RegDecl,
    Statement,
    Ternary,
    UnOp,
    Wire,
)

#: Memories strictly larger than this many bits use block RAM.
BRAM_THRESHOLD_BITS = 1024
#: Capacity of one BRAM tile (18 kbit).
BRAM_TILE_BITS = 18 * 1024
#: DSP48 multiplier tile dimensions.
DSP_WIDTH_A = 18
DSP_WIDTH_B = 25


@dataclass
class ResourceReport:
    """LUT / FF / DSP / BRAM totals for a design or module."""

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        return ResourceReport(
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
            self.bram + other.bram,
        )

    def rounded(self) -> "ResourceReport":
        return ResourceReport(
            round(self.lut), round(self.ff), round(self.dsp), round(self.bram)
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "LUT": int(round(self.lut)),
            "FF": int(round(self.ff)),
            "DSP": int(round(self.dsp)),
            "BRAM": int(round(self.bram)),
        }

    def __str__(self) -> str:
        d = self.as_dict()
        return (f"LUT={d['LUT']} FF={d['FF']} DSP={d['DSP']} BRAM={d['BRAM']}")


class ResourceModel:
    """Walks a Verilog design and accumulates resource costs."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self._module_cache: Dict[str, ResourceReport] = {}
        self._width_cache: Dict[int, Dict[str, int]] = {}

    # -- public API --------------------------------------------------------------
    def estimate(self, top: Optional[str] = None) -> ResourceReport:
        """Total resources of the design rooted at ``top`` (instances included)."""
        top = top or self.design.top
        return self._estimate_module(top).rounded()

    def per_module(self) -> Dict[str, ResourceReport]:
        """Standalone (non-hierarchical) cost of every module."""
        return {
            name: self._module_flat(module).rounded()
            for name, module in self.design.modules.items()
            if not module.external
        }

    # -- module-level estimation -----------------------------------------------------
    def _estimate_module(self, name: str) -> ResourceReport:
        if name in self._module_cache:
            return self._module_cache[name]
        module = self.design.modules.get(name)
        if module is None or module.external:
            # Black boxes contribute the cost of their known equivalents; an
            # unknown black box costs nothing (matching how the paper excludes
            # vendor IP internals from its own comparison).
            report = ResourceReport()
        else:
            report = self._module_flat(module)
            for item in module.items:
                if isinstance(item, Instance):
                    report = report + self._estimate_module(item.module_name)
        self._module_cache[name] = report
        return report

    def _module_flat(self, module: Module) -> ResourceReport:
        report = ResourceReport()
        for item in module.items:
            if isinstance(item, RegDecl):
                report.ff += item.width
            elif isinstance(item, MemoryDecl):
                report = report + self._memory_cost(item)
            elif isinstance(item, Assign):
                report = report + self._expr_cost(item.expr, module)
            elif isinstance(item, AlwaysFF):
                for stmt in item.body:
                    report = report + self._statement_cost(stmt, module)
            elif isinstance(item, (Wire, Instance)):
                continue
        return report

    # -- memory costs ----------------------------------------------------------------
    def _memory_cost(self, memory: MemoryDecl) -> ResourceReport:
        report = ResourceReport()
        bits = memory.width * memory.depth
        use_bram = memory.kind == "bram" or (
            memory.kind in ("auto", "lutram") and bits > BRAM_THRESHOLD_BITS
        )
        if memory.kind == "registers":
            report.ff += bits
            return report
        if use_bram:
            report.bram += max(1, math.ceil(bits / BRAM_TILE_BITS))
            # Address/enable fabric around the BRAM.
            report.lut += 4 if memory.single_port else 8
        else:
            # Distributed (LUT) RAM: one LUT stores two bits (RAM32M packing),
            # plus read-address decoding; a second port costs extra fabric.
            report.lut += math.ceil(bits / 2)
            report.lut += 2 if memory.single_port else 6
        return report

    # -- expression costs ----------------------------------------------------------------
    def _signal_widths(self, module: Module) -> Dict[str, int]:
        """Cached name -> width map (module.signal_width is a linear scan)."""
        cached = self._width_cache.get(id(module))
        if cached is not None:
            return cached
        widths: Dict[str, int] = {}
        for port in module.ports:
            widths[port.name] = port.width
        for item in module.items:
            if isinstance(item, (Wire, RegDecl)):
                widths[item.name] = item.width
        self._width_cache[id(module)] = widths
        return widths

    def _width_of(self, expr: Expr, module: Module) -> int:
        if isinstance(expr, Const):
            return expr.width
        if isinstance(expr, Ref):
            return self._signal_widths(module).get(expr.name, 32)
        if isinstance(expr, UnOp):
            return self._width_of(expr.operand, module)
        if isinstance(expr, BinOp):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&"):
                return 1
            return max(self._width_of(expr.lhs, module),
                       self._width_of(expr.rhs, module))
        if isinstance(expr, Ternary):
            return max(self._width_of(expr.true_value, module),
                       self._width_of(expr.false_value, module))
        if isinstance(expr, MemIndex):
            return 32
        return 32

    def _expr_cost(self, expr: Expr, module: Module) -> ResourceReport:
        report = ResourceReport()
        if isinstance(expr, (Const, Ref)):
            return report
        if isinstance(expr, UnOp):
            inner = self._expr_cost(expr.operand, module)
            inner.lut += 0.5 * self._width_of(expr.operand, module) if expr.op in ("~", "-") else 0.5
            return inner
        if isinstance(expr, BinOp):
            report = self._expr_cost(expr.lhs, module) + self._expr_cost(expr.rhs, module)
            lhs_width = self._width_of(expr.lhs, module)
            rhs_width = self._width_of(expr.rhs, module)
            width = max(lhs_width, rhs_width)
            if expr.op in ("+", "-"):
                report.lut += width
            elif expr.op == "*":
                report = report + self._multiply_cost(expr, lhs_width, rhs_width)
            elif expr.op in ("&", "|", "^"):
                report.lut += 0.5 * width
            elif expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&"):
                report.lut += 0.5 * width
            elif expr.op in ("<<", ">>"):
                if not isinstance(expr.rhs, Const):
                    report.lut += width  # barrel shifter stage
            return report
        if isinstance(expr, Ternary):
            report = (
                self._expr_cost(expr.condition, module)
                + self._expr_cost(expr.true_value, module)
                + self._expr_cost(expr.false_value, module)
            )
            report.lut += 0.5 * self._width_of(expr, module)
            return report
        if isinstance(expr, MemIndex):
            return self._expr_cost(expr.address, module)
        return report

    def _multiply_cost(self, expr: BinOp, lhs_width: int, rhs_width: int) -> ResourceReport:
        report = ResourceReport()
        if isinstance(expr.lhs, Const) and isinstance(expr.rhs, Const):
            return report  # folds to a constant wire
        constant = None
        if isinstance(expr.lhs, Const):
            constant = expr.lhs.value
        elif isinstance(expr.rhs, Const):
            constant = expr.rhs.value
        if constant is not None:
            # Constant multiply: synthesized as a shift/add tree in fabric.
            terms = bin(abs(constant)).count("1")
            width = max(lhs_width, rhs_width)
            report.lut += max(0, terms - 1) * width
            return report
        report.dsp += math.ceil((lhs_width * rhs_width) / (DSP_WIDTH_A * DSP_WIDTH_B))
        report.lut += 8  # partial-product stitching
        return report

    # -- clocked statement costs -------------------------------------------------------------
    def _statement_cost(self, stmt: Statement, module: Module) -> ResourceReport:
        report = ResourceReport()
        if isinstance(stmt, NonBlockingAssign):
            return self._expr_cost(stmt.expr, module)
        if isinstance(stmt, MemWrite):
            return self._expr_cost(stmt.address, module) + self._expr_cost(stmt.data, module)
        if isinstance(stmt, If):
            report = self._expr_cost(stmt.condition, module)
            # A guarded register load costs a clock-enable LUT per target bit
            # only when the tools cannot use the native CE pin; charge a small
            # constant for the control decode instead.
            report.lut += 1
            for inner in stmt.then_body + stmt.else_body:
                report = report + self._statement_cost(inner, module)
            return report
        if isinstance(stmt, Display):
            return report
        return report


def estimate_resources(design: Design, top: Optional[str] = None) -> ResourceReport:
    """Convenience wrapper around :class:`ResourceModel`."""
    return ResourceModel(design).estimate(top)
