"""Utilization report formatting (Vivado-style tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.resources.model import ResourceReport

COLUMNS = ("LUT", "FF", "DSP", "BRAM")


def format_table(rows: Dict[str, ResourceReport], title: str = "") -> str:
    """Render ``{design name: report}`` as an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    name_width = max([len("Design")] + [len(name) for name in rows])
    header = f"{'Design':<{name_width}}  " + "  ".join(f"{c:>6}" for c in COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    for name, report in rows.items():
        values = report.as_dict()
        lines.append(
            f"{name:<{name_width}}  " + "  ".join(f"{values[c]:>6}" for c in COLUMNS)
        )
    return "\n".join(lines)


def format_comparison(rows: Sequence[Sequence[str]], headers: Sequence[str],
                      title: str = "") -> str:
    """Render a generic comparison table (used by the evaluation harness)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(f"{str(c):>{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)
