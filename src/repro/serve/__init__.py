"""Flow-as-a-service: a coalescing, sharded front end on the artifact store.

``python -m repro serve`` turns the Flow toolchain into a shared service:
many clients (CI fleets, distributed DSE, big sweeps) hit one process that
single-flights identical requests, shards independent ones across a
supervised worker pool, and memoizes whole responses in the crash-safe
:class:`repro.store.ArtifactStore` — so a warm design costs a checksum read
no matter how many clients ask.

Layer map (each module's docstring has the full contract):

* :mod:`repro.serve.protocol` — canonical requests/payloads, the request
  key, the response envelope with built/coalesced/store-hit provenance.
* :mod:`repro.serve.worker`   — one request → one deterministic payload,
  through :class:`repro.flow.Flow`.
* :mod:`repro.serve.pool`     — single-flight coalescing + deterministic
  sharding + the PR 7 supervision ladder (retry, typed
  :class:`~repro.resilience.WorkerError`, pool→serial degradation).
* :mod:`repro.serve.server`   — the stdlib HTTP listener, the tiered
  request pipeline, serve counters.
* :mod:`repro.serve.client`   — the stdlib client behind
  ``python -m repro remote``.

Fault points (``REPRO_FAULT_PLAN``): ``serve.request`` (front door),
``serve.execute`` (supervised execution; ``timeout(s)`` stalls are how
tests hold a build in flight), ``serve.shard`` (worker-loop crash →
pool→serial degradation).
"""

from repro.serve.client import ServeClient, resolve_url
from repro.serve.pool import CoalescingPool, PoolOutcome
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    PROVENANCES,
    VERBS,
    ServeError,
    ServeRequest,
    ServeResponse,
    canonical_payload,
)
from repro.serve.server import ServeServer, serve_counters
from repro.serve.worker import execute

__all__ = [
    "CoalescingPool",
    "PROTOCOL_VERSION",
    "PROVENANCES",
    "PoolOutcome",
    "ServeClient",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServeServer",
    "VERBS",
    "canonical_payload",
    "execute",
    "resolve_url",
    "serve_counters",
]
