"""A thin stdlib client for ``repro serve`` (:mod:`repro.serve.server`).

:class:`ServeClient` speaks the JSON protocol of :mod:`repro.serve.protocol`
over :mod:`urllib.request` — no dependencies, safe to import anywhere.  The
verb helpers mirror the local CLI::

    client = ServeClient("http://127.0.0.1:8731")
    client.wait_ready()
    response = client.build("gemm", {"size": 8})
    response.provenance            # "built" | "coalesced" | "store-hit"
    response.result()["verilog"]   # decoded canonical payload

Transport problems (connection refused, undecodable body) raise
:class:`~repro.serve.protocol.ServeError`; *server-side* failures come back
as normal :class:`~repro.serve.protocol.ServeResponse` objects with
``ok=False`` and a typed ``error`` — calling :meth:`ServeResponse.result`
re-raises them client-side.

The default server URL is ``$REPRO_SERVE_URL`` (validated by the CLI's
environment check), so ``python -m repro remote ...`` works without
repeating ``--url``.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional

from repro.serve.protocol import ServeError, ServeRequest, ServeResponse

__all__ = ["DEFAULT_URL_ENV", "ServeClient", "resolve_url"]

DEFAULT_URL_ENV = "REPRO_SERVE_URL"


def resolve_url(url: Optional[str] = None) -> str:
    """Explicit URL > ``$REPRO_SERVE_URL``; raises when neither is set."""
    if url:
        return url.rstrip("/")
    env = os.environ.get(DEFAULT_URL_ENV, "").strip()
    if env:
        return env.rstrip("/")
    raise ServeError(
        "no server URL: pass --url or set REPRO_SERVE_URL "
        "(e.g. http://127.0.0.1:8731)")


class ServeClient:
    """One server endpoint; every method is a synchronous HTTP round-trip."""

    def __init__(self, url: Optional[str] = None, *,
                 timeout: float = 300.0) -> None:
        self.url = resolve_url(url)
        self.timeout = timeout

    # -- transport -----------------------------------------------------------
    def _round_trip(self, path: str, body: Optional[Dict[str, Any]] = None,
                    timeout: Optional[float] = None) -> Dict[str, Any]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=(None if body is None
                  else json.dumps(body).encode("utf-8")),
            headers={"Content-Type": "application/json"},
            method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None
                    else timeout) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as error:
            # Protocol-level errors still carry a JSON ServeResponse body.
            raw = error.read()
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServeError(
                f"cannot reach {self.url}{path}: {error}") from error
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServeError(
                f"undecodable response from {self.url}{path}: "
                f"{error}") from error
        if not isinstance(decoded, dict):
            raise ServeError(
                f"malformed response from {self.url}{path}: expected an "
                f"object, got {type(decoded).__name__}")
        return decoded

    # -- requests ------------------------------------------------------------
    def request(self, request: ServeRequest) -> ServeResponse:
        """Send one typed request; returns the (possibly error) response."""
        return ServeResponse.from_payload(
            self._round_trip("/v1/request", request.to_payload()))

    def build(self, target: str, params: Optional[Mapping[str, int]] = None,
              **fields_: Any) -> ServeResponse:
        return self.request(
            ServeRequest.make("build", target, params, **fields_))

    def simulate(self, target: str,
                 params: Optional[Mapping[str, int]] = None,
                 seed: int = 0, **fields_: Any) -> ServeResponse:
        return self.request(ServeRequest.make("simulate", target, params,
                                              seed=seed, **fields_))

    def sweep(self, target: str, params: Optional[Mapping[str, int]] = None,
              seeds: int = 8, **fields_: Any) -> ServeResponse:
        return self.request(ServeRequest.make("sweep", target, params,
                                              seeds=seeds, **fields_))

    def compose(self, scenario: str,
                params: Optional[Mapping[str, int]] = None,
                seed: int = 0, **fields_: Any) -> ServeResponse:
        return self.request(ServeRequest.make("compose", scenario, params,
                                              seed=seed, **fields_))

    # -- service management --------------------------------------------------
    def health(self, timeout: float = 5.0) -> Dict[str, Any]:
        return self._round_trip("/v1/health", timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        return self._round_trip("/v1/stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to shut down cleanly (same path as SIGTERM)."""
        return self._round_trip("/v1/shutdown", body={})

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``/v1/health`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        last: Optional[ServeError] = None
        while time.monotonic() < deadline:
            try:
                return self.health(timeout=min(1.0, timeout))
            except ServeError as error:
                last = error
                time.sleep(interval)
        raise ServeError(
            f"server at {self.url} not ready after {timeout:g}s "
            f"(last error: {last})")
