"""Single-flight coalescing + a sharded, supervised worker pool.

The two scheduling ideas behind ``repro serve`` live here, independent of
HTTP and of what the work actually is:

* **Coalescing (single flight).**  Concurrent calls to :meth:`run` with the
  same key collapse into one execution: the first caller (the *winner*)
  dispatches the job; every later caller (a *coalescer*) blocks on the same
  in-flight entry and receives the winner's exact result object — so N
  identical concurrent requests cost one Flow build, and the responses are
  byte-identical by construction.
* **Sharding.**  Independent keys dispatch to ``int(key, 16) % workers`` —
  a deterministic shard choice (sha256 hex keys, no per-process hash
  seeding), so the same request always lands on the same worker and
  distinct requests spread across the pool.

Supervision follows the PR 7 worker ladder (the DSE pool's contract):

* each execution runs under the ``serve.execute`` fault point and is retried
  in place (``retries`` attempts) on injected faults and ``OSError``;
* exhausted retries raise the typed :class:`repro.resilience.WorkerError`;
* a *shard crash* (the ``serve.shard`` fault point, or any escape from the
  worker loop) marks the shard broken, wakes its pending winners, and each
  of them re-executes **serially in its own thread** — pool→serial
  degradation with identical output, counted as ``serve.pool_degraded``;
  later keys hashing to a broken shard skip the queue and run serially
  up front (``serve.serial``);
* a per-request ``timeout`` resolves the entry with a typed
  :class:`~repro.resilience.WorkerError` instead of blocking forever
  (first resolution wins; a straggler worker's late result is dropped).
"""

from __future__ import annotations

import threading
import time
from queue import Empty, SimpleQueue
from typing import Callable, Dict, List, Optional

from repro.resilience import InjectedFault, WorkerError, bump, fault_point

__all__ = ["CoalescingPool", "PoolOutcome"]

_STOP = object()


class PoolOutcome:
    """What one :meth:`CoalescingPool.run` call observed."""

    __slots__ = ("result", "error", "coalesced", "shard", "serial")

    def __init__(self, result, error, coalesced: bool, shard: int,
                 serial: bool) -> None:
        self.result = result
        self.error = error
        self.coalesced = coalesced
        self.shard = shard
        self.serial = serial

    def unwrap(self):
        if self.error is not None:
            raise self.error
        return self.result


class _Entry:
    """One in-flight key: winner dispatches, coalescers await resolution."""

    __slots__ = ("key", "cond", "done", "result", "error", "shard",
                 "crashed", "serial", "waiters")

    def __init__(self, key: str, shard: int) -> None:
        self.key = key
        self.cond = threading.Condition()
        self.done = False
        self.result = None
        self.error: Optional[BaseException] = None
        self.shard = shard
        self.crashed = False
        self.serial = False
        self.waiters = 0

    def resolve(self, result=None, error: Optional[BaseException] = None,
                serial: bool = False) -> bool:
        """First resolution wins; returns whether this call resolved."""
        with self.cond:
            if self.done:
                return False
            self.result = result
            self.error = error
            self.serial = serial
            self.done = True
            self.cond.notify_all()
            return True

    def mark_crashed(self) -> None:
        """The shard servicing this entry died; wake the winner to rescue."""
        with self.cond:
            if not self.done:
                self.crashed = True
                self.cond.notify_all()


class CoalescingPool:
    """See the module docstring.

    ``counter`` is called with serve-counter names (``serve.retries``,
    ``serve.pool_degraded``, ``serve.serial``, ``serve.shard_crashes``) so
    the server can mirror pool activity into its stats without the pool
    knowing about HTTP or tracers.
    """

    def __init__(self, workers: int = 4, *,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 counter: Optional[Callable[[str], None]] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout = timeout
        self.retries = max(0, retries)
        self._counter = counter or (lambda name: None)
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Entry] = {}
        self._queues: List[SimpleQueue] = [SimpleQueue()
                                           for _ in range(workers)]
        self._broken = [False] * workers
        self._dispatched = [0] * workers
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(index,),
                             name=f"serve-shard-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- introspection -------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Deterministic shard for a (sha256-hex) key."""
        return int(key, 16) % self.workers

    def depths(self) -> List[Dict[str, object]]:
        """Live per-shard state: queue depth, dispatch count, liveness."""
        return [{"shard": index,
                 "depth": self._queues[index].qsize(),
                 "dispatched": self._dispatched[index],
                 "alive": not self._broken[index]}
                for index in range(self.workers)]

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- the worker side -----------------------------------------------------
    def _supervised(self, fn: Callable[[], object]):
        """1 + retries attempts; typed WorkerError when all fail."""
        last: Optional[BaseException] = None
        for _ in range(1 + self.retries):
            try:
                fault_point("serve.execute")
                return fn()
            except (InjectedFault, OSError) as error:
                last = error
                self._counter("serve.retries")
                bump("serve.retries")
        raise WorkerError(
            f"request failed after {1 + self.retries} attempt(s); "
            f"last error: {type(last).__name__}: {last}")

    def _worker_loop(self, index: int) -> None:
        queue = self._queues[index]
        current: Optional[_Entry] = None
        try:
            while True:
                item = queue.get()
                if item is _STOP:
                    return
                current, fn = item
                if current is None:
                    continue
                # The shard-crash fault point: an injected `error` here kills
                # this worker thread mid-service, exactly like a real crash.
                fault_point("serve.shard")
                try:
                    result = self._supervised(fn)
                except BaseException as error:
                    current.resolve(error=error)
                else:
                    current.resolve(result=result)
                current = None
        except BaseException:
            # Shard crash: break the shard, hand every pending entry back to
            # its winner for serial rescue.  The pool *degrades*, the
            # requests don't fail.
            self._broken[index] = True
            self._counter("serve.shard_crashes")
            bump("serve.shard_crashes")
            if current is not None:
                current.mark_crashed()
            while True:
                try:
                    item = queue.get_nowait()
                except Empty:
                    break
                if item is _STOP:
                    break
                entry, _fn = item
                if entry is not None:
                    entry.mark_crashed()

    # -- the caller side -----------------------------------------------------
    def run(self, key: str, fn: Callable[[], object],
            timeout: Optional[float] = None) -> PoolOutcome:
        """Execute ``fn`` under single-flight ``key`` on its shard.

        Blocking; returns a :class:`PoolOutcome` (``coalesced`` tells the
        caller whether it awaited another request's execution).
        """
        timeout = self.timeout if timeout is None else timeout
        shard = self.shard_of(key)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                coalesced = True
            else:
                entry = _Entry(key, shard)
                self._inflight[key] = entry
                coalesced = False
        if coalesced:
            return self._await(entry, coalesced=True, timeout=timeout)
        try:
            if self._broken[shard]:
                # The shard died earlier: degrade to serial up front.
                self._counter("serve.serial")
                bump("serve.serial")
                self._run_serial(entry, fn)
                winner_fn = None
            else:
                self._dispatched[shard] += 1
                self._queues[shard].put((entry, fn))
                winner_fn = fn
            return self._await(entry, coalesced=False, timeout=timeout,
                               winner_fn=winner_fn)
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def _run_serial(self, entry: _Entry, fn: Callable[[], object]) -> None:
        try:
            result = self._supervised(fn)
        except BaseException as error:
            entry.resolve(error=error, serial=True)
        else:
            entry.resolve(result=result, serial=True)

    def _await(self, entry: _Entry, coalesced: bool,
               timeout: Optional[float],
               winner_fn: Optional[Callable[[], object]] = None) -> PoolOutcome:
        deadline = None if timeout is None else time.monotonic() + timeout
        rescue = False
        with entry.cond:
            while not entry.done:
                if entry.crashed and winner_fn is not None:
                    rescue = True
                    break
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                entry.cond.wait(remaining if remaining is None
                                else min(remaining, 0.5))
        if rescue:
            # Pool→serial degradation: the winner redoes the work inline,
            # with identical output; coalescers keep waiting on the entry.
            self._counter("serve.pool_degraded")
            bump("serve.pool_degraded")
            self._run_serial(entry, winner_fn)
        elif not entry.done:
            # Timed out: resolve with a typed error (first resolution wins,
            # so a straggler worker's late result is dropped, not served).
            entry.resolve(error=WorkerError(
                f"request {entry.key[:12]} timed out after {timeout:g}s "
                f"on shard {entry.shard}"))
        return PoolOutcome(result=entry.result, error=entry.error,
                           coalesced=coalesced, shard=entry.shard,
                           serial=entry.serial)

    # -- lifecycle -----------------------------------------------------------
    def stop(self, wait: float = 2.0) -> None:
        """Stop every live shard (idempotent; broken shards are skipped)."""
        for index, thread in enumerate(self._threads):
            if thread.is_alive():
                self._queues[index].put(_STOP)
        for thread in self._threads:
            thread.join(timeout=wait)

    def __enter__(self) -> "CoalescingPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
