"""The wire protocol of ``repro serve``: typed requests, canonical payloads.

Everything the service exchanges is JSON, but two properties carry the whole
coalescing/persistence design and are pinned here rather than left to
``json.dumps`` defaults:

* **Canonical requests.**  :meth:`ServeRequest.canonical` renders a request
  as sorted-key, separator-free JSON, so two textually different but
  semantically identical requests (parameter order, defaulted fields) map to
  the same :meth:`ServeRequest.key` — the sha256 the server single-flights
  and shards on, and the :class:`~repro.store.ArtifactStore` key the response
  payload persists under (kind ``"serve"``).  The protocol version is folded
  into the canonical form, so a payload-schema change can never serve a
  stale blob.
* **Canonical payloads.**  :func:`canonical_payload` is the one encoder for
  response payloads.  A payload is pure result — Verilog text, resource
  numbers, simulated outputs — with no timestamps or timings, so a built, a
  coalesced and a store-hit response for the same key are *byte-identical*
  (the CI service-smoke job asserts exactly this).

The response envelope (:class:`ServeResponse`) carries the per-access facts
around the payload: which ``provenance`` tier answered (``built`` — this
request ran the Flow; ``coalesced`` — it awaited another in-flight request;
``store-hit`` — the payload was read back from the artifact store), which
worker ``shard`` executed it, the module ``fingerprint``, and wall seconds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "PROVENANCES",
    "VERBS",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "canonical_payload",
    "payload_key",
]

from repro.ir.errors import IRError

#: Bumped on any payload-schema change: the version participates in the
#: request key, so old store blobs become misses instead of wrong answers.
PROTOCOL_VERSION = 1

#: Service verbs, mirroring the local CLI (``compose`` takes a scenario).
VERBS: Tuple[str, ...] = ("build", "simulate", "sweep", "compose")

#: Which tier answered a request.
PROVENANCES: Tuple[str, ...] = ("built", "coalesced", "store-hit")


class ServeError(IRError):
    """A malformed request/response or a client-side transport failure."""


def canonical_payload(payload: Mapping[str, Any]) -> str:
    """The one canonical JSON encoding of a response payload.

    Sorted keys, no whitespace: byte-identity of two payloads is string
    equality, and the string is what the server persists in the store.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_key(canonical: str) -> str:
    """sha256 of a canonical request — the single-flight and store key."""
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ServeRequest:
    """One service request: a CLI verb plus its (small, JSON-safe) inputs."""

    verb: str
    #: Kernel name (build/simulate/sweep) or scenario name (compose).
    target: str
    #: Kernel/scenario size parameters, as the CLI's repeated ``-p``.
    params: Tuple[Tuple[str, int], ...] = ()
    #: Stimulus seed (simulate/compose validation runs).
    seed: int = 0
    #: Batched-sweep lane count (sweep verb only).
    seeds: Optional[int] = None
    #: Optional FlowConfig overrides, same values as the CLI flags.
    pipeline: Optional[str] = None
    engine: Optional[str] = None

    # -- construction --------------------------------------------------------
    @classmethod
    def make(cls, verb: str, target: str,
             params: Optional[Mapping[str, int]] = None,
             **fields_: Any) -> "ServeRequest":
        """Build a request from a params mapping (order-normalized here)."""
        items = tuple(sorted((params or {}).items()))
        return cls(verb=verb, target=target, params=items, **fields_)

    @classmethod
    def from_payload(cls, payload: Any) -> "ServeRequest":
        """Parse an incoming request body; raises :class:`ServeError`."""
        if not isinstance(payload, dict):
            raise ServeError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = sorted(set(payload) - {
            "verb", "target", "params", "seed", "seeds", "pipeline",
            "engine"})
        if unknown:
            raise ServeError(f"unknown request field(s): {', '.join(unknown)}")
        verb = payload.get("verb")
        target = payload.get("target")
        if verb not in VERBS:
            raise ServeError(
                f"unknown verb {verb!r}; choose one of {list(VERBS)}")
        if not isinstance(target, str) or not target:
            raise ServeError("request needs a non-empty string 'target'")
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError("'params' must be an object of name -> int")
        normalized: Dict[str, int] = {}
        for name, value in params.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise ServeError(
                    f"param {name!r} must be an integer, got {value!r}")
            normalized[str(name)] = value
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ServeError(f"'seed' must be an integer, got {seed!r}")
        seeds = payload.get("seeds")
        if seeds is not None and (not isinstance(seeds, int)
                                  or isinstance(seeds, bool) or seeds < 1):
            raise ServeError(f"'seeds' must be a positive integer, got {seeds!r}")
        pipeline = payload.get("pipeline")
        engine = payload.get("engine")
        for name, value in (("pipeline", pipeline), ("engine", engine)):
            if value is not None and not isinstance(value, str):
                raise ServeError(f"{name!r} must be a string")
        return cls.make(verb, target, normalized, seed=seed, seeds=seeds,
                        pipeline=pipeline, engine=engine)

    # -- canonical form ------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The JSON body a client sends (defaulted fields omitted)."""
        body: Dict[str, Any] = {"verb": self.verb, "target": self.target}
        if self.params:
            body["params"] = dict(self.params)
        if self.seed:
            body["seed"] = self.seed
        if self.seeds is not None:
            body["seeds"] = self.seeds
        if self.pipeline is not None:
            body["pipeline"] = self.pipeline
        if self.engine is not None:
            body["engine"] = self.engine
        return body

    def canonical(self) -> str:
        """Canonical JSON folding in every semantic field + the protocol
        version (defaults written out, so omitting a field and passing its
        default produce identical bytes)."""
        return json.dumps({
            "v": PROTOCOL_VERSION,
            "verb": self.verb,
            "target": self.target,
            "params": dict(self.params),
            "seed": self.seed,
            "seeds": self.seeds,
            "pipeline": self.pipeline,
            "engine": self.engine,
        }, sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """The single-flight / shard / store key of this request."""
        return payload_key(self.canonical())

    def describe(self) -> str:
        params = " ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.verb} {self.target}" + (f" [{params}]" if params else "")


@dataclass(frozen=True)
class ServeResponse:
    """The response envelope around a canonical payload (or a typed error)."""

    ok: bool
    verb: str
    key: str
    #: "built" | "coalesced" | "store-hit" (see module docstring); error
    #: responses keep the tier that *would* have answered ("built").
    provenance: str = "built"
    #: Worker shard that executed the request (-1: not dispatched — a
    #: store-hit or an error before dispatch).
    shard: int = -1
    #: Module content fingerprint of the design behind the payload.
    fingerprint: str = ""
    #: Wall seconds this request spent in the server.
    seconds: float = 0.0
    #: Canonical payload JSON (see :func:`canonical_payload`); "" on error.
    payload: str = ""
    #: Typed error: {"type": exception class name, "message": str}.
    error: Optional[Dict[str, str]] = None
    #: Extra per-access facts (never part of the payload byte-identity).
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "ok": self.ok, "verb": self.verb, "key": self.key,
            "provenance": self.provenance, "shard": self.shard,
            "fingerprint": self.fingerprint, "seconds": self.seconds,
            "payload": self.payload,
        }
        if self.error is not None:
            body["error"] = dict(self.error)
        if self.meta:
            body["meta"] = dict(self.meta)
        return body

    @classmethod
    def from_payload(cls, payload: Any) -> "ServeResponse":
        if not isinstance(payload, dict):
            raise ServeError(
                f"response body must be a JSON object, got "
                f"{type(payload).__name__}")
        missing = [name for name in ("ok", "verb", "key", "provenance")
                   if name not in payload]
        if missing:
            raise ServeError(
                f"response body missing field(s): {', '.join(missing)}")
        error = payload.get("error")
        if error is not None and not isinstance(error, dict):
            raise ServeError("'error' must be an object")
        return cls(ok=bool(payload["ok"]), verb=str(payload["verb"]),
                   key=str(payload["key"]),
                   provenance=str(payload["provenance"]),
                   shard=int(payload.get("shard", -1)),
                   fingerprint=str(payload.get("fingerprint", "")),
                   seconds=float(payload.get("seconds", 0.0)),
                   payload=str(payload.get("payload", "")),
                   error=None if error is None else
                   {str(k): str(v) for k, v in error.items()},
                   meta=dict(payload.get("meta") or {}))

    def result(self) -> Dict[str, Any]:
        """The decoded payload object (raises :class:`ServeError` on error
        responses, carrying the server-side typed error)."""
        if not self.ok:
            error = self.error or {}
            raise ServeError(
                f"server error [{error.get('type', 'unknown')}]: "
                f"{error.get('message', 'no message')}")
        try:
            decoded = json.loads(self.payload)
        except ValueError as exc:
            raise ServeError(f"undecodable response payload: {exc}")
        if not isinstance(decoded, dict):
            raise ServeError("response payload must decode to an object")
        return decoded


def validation_errors(payload: Any) -> List[str]:
    """Every problem with a raw request body (empty list = parseable)."""
    try:
        ServeRequest.from_payload(payload)
        return []
    except ServeError as error:
        return [str(error)]
