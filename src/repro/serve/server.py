"""The ``repro serve`` HTTP front end: flow-as-a-service on the store.

Pure stdlib (:mod:`http.server` + threads), matching the repo's
zero-dependency rule.  A :class:`ServeServer` owns three tiers, consulted in
order for every ``POST /v1/request``:

1. **In-flight coalescing** — :class:`~repro.serve.pool.CoalescingPool`
   single-flights concurrent identical keys; a later arrival awaits the
   winner and answers with ``provenance: "coalesced"``.
2. **The artifact store** — completed responses persist as canonical
   payload blobs (kind ``"serve"``) in :class:`repro.store.ArtifactStore`;
   a warm key answers with ``provenance: "store-hit"`` without touching the
   pool.  Corruption is the store's problem (sha256 verify + quarantine →
   miss → rebuild), never the client's.
3. **Sharded execution** — misses dispatch to ``hash(key) % workers`` and
   run the Flow (:func:`repro.serve.worker.execute`), then publish back to
   the store: ``provenance: "built"``.

Endpoints::

    GET  /v1/health    {"ok": true, "workers": N}
    GET  /v1/stats     serve counters, per-shard queue state, store stats
    POST /v1/request   ServeRequest body -> ServeResponse body
    POST /v1/shutdown  clean async shutdown (same as SIGTERM)

Observability: every serve counter (``serve.requests``, ``serve.builds``,
``serve.coalesced``, ``serve.store_hits``, ``serve.errors``, degradation
counters) is kept on the server instance (authoritative, returned by
``/v1/stats``) *and* mirrored into :data:`repro.obs.TRACER` counters plus
per-shard queue-depth gauges, so a ``--trace`` of the serving process lines
up with the rest of the toolchain; the pool's degradations additionally
bump the always-on :mod:`repro.resilience` counters.  The ``serve.request``
fault point runs before dispatch, so chaos plans can fail requests at the
front door.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.ir.errors import IRError
from repro.obs.tracer import TRACER
from repro.resilience import InjectedFault, WorkerError, fault_point
from repro.serve.pool import CoalescingPool
from repro.serve.protocol import (
    ServeError,
    ServeRequest,
    ServeResponse,
)
from repro.serve.worker import execute

__all__ = ["ServeServer", "serve_counters"]

#: Counter names a fresh server starts at zero (stable /v1/stats shape).
_COUNTER_NAMES = (
    "serve.requests", "serve.builds", "serve.coalesced", "serve.store_hits",
    "serve.errors", "serve.retries", "serve.pool_degraded", "serve.serial",
    "serve.shard_crashes", "serve.store_writes",
)


def _default_workers() -> int:
    value = os.environ.get("REPRO_SERVE_WORKERS", "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 4


def _default_timeout() -> Optional[float]:
    value = os.environ.get("REPRO_SERVE_TIMEOUT", "").strip()
    if value:
        try:
            parsed = float(value)
            return parsed if parsed > 0 else None
        except ValueError:
            pass
    return None


class ServeServer:
    """One serving process: pool + store + HTTP listener.

    ``config`` is the base :class:`~repro.flow.FlowConfig` every request
    executes under (``None``: ``FlowConfig.from_env()`` — which also picks
    up ``REPRO_STORE_DIR`` as the persistence tier).  ``port=0`` binds an
    ephemeral port; read :attr:`port` after construction.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 config=None,
                 quiet: bool = True) -> None:
        from repro.flow import FlowConfig
        self.config = FlowConfig.from_env() if config is None else config
        self.store = self.config.resolve_store()
        self.workers = _default_workers() if workers is None else workers
        self.timeout = _default_timeout() if timeout is None else timeout
        self.quiet = quiet
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._counters_lock = threading.Lock()
        self.started = time.time()
        self.pool = CoalescingPool(self.workers, timeout=self.timeout,
                                   counter=self._count)
        handler = _make_handler(self)
        try:
            self.httpd = ThreadingHTTPServer((host, port), handler)
        except OSError as error:
            self.pool.stop()
            raise ServeError(
                f"cannot bind {host}:{port}: {error}") from error
        self.httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # -- address -------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- counters ------------------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + delta
        TRACER.count(name, delta)

    def counter(self, name: str) -> int:
        with self._counters_lock:
            return self.counters.get(name, 0)

    def stats_payload(self) -> Dict[str, Any]:
        with self._counters_lock:
            counters = dict(self.counters)
        shards = self.pool.depths()
        for shard in shards:
            TRACER.gauge(f"serve.shard{shard['shard']}.depth",
                         float(shard["depth"]))
        payload: Dict[str, Any] = {
            "ok": True,
            "workers": self.workers,
            "uptime_seconds": time.time() - self.started,
            "inflight": self.pool.inflight(),
            "counters": counters,
            "shards": shards,
        }
        if self.store is not None:
            report = self.store.stats()
            payload["store"] = {"root": report.root, "blobs": report.blobs,
                                "bytes": report.total_bytes,
                                "quarantined": report.quarantined}
        return payload

    # -- the request pipeline ------------------------------------------------
    def handle_request(self, body: Any) -> ServeResponse:
        """The full tiered pipeline for one parsed JSON request body."""
        start = time.perf_counter()
        self._count("serve.requests")
        try:
            fault_point("serve.request")
            request = ServeRequest.from_payload(body)
        except (ServeError, InjectedFault) as error:
            self._count("serve.errors")
            return ServeResponse(
                ok=False, verb=str((body or {}).get("verb", "?"))
                if isinstance(body, dict) else "?",
                key="", seconds=time.perf_counter() - start,
                error={"type": type(error).__name__, "message": str(error)})
        key = request.key()

        def build():
            # Store tier first: a warm key skips the Flow entirely.  The
            # winner re-checks under single-flight, so racing cold requests
            # cannot publish twice.
            if self.store is not None:
                payload = self.store.get_text("serve", key)
                if payload is not None:
                    return payload, "", True
            result = execute(request, self.config)
            if self.store is not None:
                if self.store.put("serve", key, result.payload) is not None:
                    self._count("serve.store_writes")
            return result.payload, result.fingerprint, False

        try:
            outcome = self.pool.run(key, build)
            payload, fingerprint, from_store = outcome.unwrap()
        except (IRError, KeyError, WorkerError, InjectedFault,
                TypeError, ValueError) as error:
            # KeyError covers UnknownKernelError (and scenario lookups);
            # TypeError/ValueError cover bad kernel parameters reaching a
            # builder signature.
            self._count("serve.errors")
            message = str(error)
            if isinstance(error, KeyError) and message.startswith(("'", '"')):
                message = message[1:-1]
            return ServeResponse(
                ok=False, verb=request.verb, key=key,
                seconds=time.perf_counter() - start,
                error={"type": type(error).__name__, "message": message})
        if outcome.coalesced:
            provenance = "coalesced"
            self._count("serve.coalesced")
        elif from_store:
            provenance = "store-hit"
            self._count("serve.store_hits")
        else:
            provenance = "built"
            self._count("serve.builds")
        meta: Dict[str, Any] = {}
        if outcome.serial:
            meta["serial"] = True
        return ServeResponse(
            ok=True, verb=request.verb, key=key, provenance=provenance,
            shard=outcome.shard, fingerprint=fingerprint,
            seconds=time.perf_counter() - start, payload=payload, meta=meta)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        if self._serve_thread is not None:
            return
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="serve-http", daemon=True)
        self._serve_thread.start()

    def stop(self) -> None:
        """Clean shutdown: stop accepting, drain shards, close the socket."""
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.pool.stop()
        self.httpd.server_close()

    def request_shutdown(self) -> None:
        """Asynchronous shutdown (from a handler thread or signal path)."""
        threading.Thread(target=self.httpd.shutdown, daemon=True).start()

    def __enter__(self) -> "ServeServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_counters(server: ServeServer) -> Dict[str, int]:
    """Snapshot of a server's counters (stable name set)."""
    with server._counters_lock:
        return dict(server.counters)


def _make_handler(server: ServeServer):
    class Handler(BaseHTTPRequestHandler):
        # Keep connections simple and stateless: one request per connection.
        protocol_version = "HTTP/1.0"

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass        # client went away; nothing to salvage

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/health":
                self._send_json(200, {"ok": True, "workers": server.workers})
            elif self.path == "/v1/stats":
                self._send_json(200, server.stats_payload())
            else:
                self._send_json(404, {"ok": False, "error": {
                    "type": "NotFound", "message": f"no route {self.path}"}})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/shutdown":
                self._send_json(200, {"ok": True, "shutting_down": True})
                server.request_shutdown()
                return
            if self.path != "/v1/request":
                self._send_json(404, {"ok": False, "error": {
                    "type": "NotFound", "message": f"no route {self.path}"}})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b""
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError, socket.timeout) as error:
                server._count("serve.requests")
                server._count("serve.errors")
                self._send_json(400, ServeResponse(
                    ok=False, verb="?", key="",
                    error={"type": "ServeError",
                           "message": f"undecodable request body: {error}"}
                ).to_payload())
                return
            try:
                response = server.handle_request(body)
            except Exception as error:  # last resort: never drop the socket
                server._count("serve.errors")
                response = ServeResponse(
                    ok=False, verb="?", key="",
                    error={"type": type(error).__name__,
                           "message": str(error)})
            status = 200 if response.ok else (
                400 if response.error is not None
                and response.error.get("type") in ("ServeError",
                                                   "UnknownKernelError")
                else 500)
            self._send_json(status, response.to_payload())

        def log_message(self, format: str, *args: Any) -> None:
            if not server.quiet:  # pragma: no cover - debug aid
                BaseHTTPRequestHandler.log_message(self, format, *args)

    return Handler
