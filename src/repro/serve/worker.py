"""Request execution: one :class:`~repro.serve.protocol.ServeRequest` → one
deterministic payload, through :class:`repro.flow.Flow`.

This is the only module of the service that runs the toolchain.  Its single
entry point, :func:`execute`, is handed to the shard pool by the server; the
contract that makes coalescing and the store tier sound is **determinism**:
for a fixed request (and fixed toolchain), the returned payload is
byte-identical run to run, process to process.  That is why payloads carry
no wall-clock data (the envelope does), why arrays are rendered through
``tolist()`` (plain ints), and why the sweep verb derives its lanes from
``range(seeds)`` rather than anything ambient.

Because the Flow underneath reads through :mod:`repro.store`, a warm store
makes `execute` cheap even when the serve-level payload blob is absent: the
optimized-IR/Verilog/resource blobs still short-circuit the expensive
stages.  The serve tier above this module only adds the final step —
memoizing the *whole response*.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.serve.protocol import ServeRequest, canonical_payload

__all__ = ["ExecutionResult", "execute"]


class ExecutionResult:
    """What one execution produced: canonical payload + design facts."""

    __slots__ = ("payload", "fingerprint", "seconds")

    def __init__(self, payload: str, fingerprint: str, seconds: float) -> None:
        self.payload = payload
        self.fingerprint = fingerprint
        self.seconds = seconds


def _flow_for(request: ServeRequest, base_config):
    """A Flow for the request's target under the server config + overrides."""
    from repro.flow import Flow
    overrides: Dict[str, Any] = {}
    if request.pipeline is not None:
        overrides["pipeline"] = request.pipeline
    if request.engine is not None:
        overrides["engine"] = request.engine
    config = base_config.with_(**overrides) if overrides else base_config
    params = dict(request.params)
    if request.verb == "compose":
        return Flow.from_scenario(request.target, config=config, **params)
    return Flow.from_kernel(request.target, config=config, **params)


def _output_arrays(flow, run) -> Dict[str, Any]:
    """Simulated contents of every writable interface, as plain lists."""
    return {name: run.memory_array(name).tolist()
            for name, memref_type in sorted(flow.interfaces.items())
            if memref_type.can_write}


def _build_payload(request: ServeRequest, flow) -> Tuple[Dict[str, Any], str]:
    verilog = flow.verilog()
    resources = flow.resources().value
    payload = {
        "verb": "build",
        "target": request.target,
        "params": dict(request.params),
        "verilog": verilog.value.text,
        "statistics": {str(k): int(v)
                       for k, v in sorted(verilog.value.statistics.items())},
        "resources": {"lut": resources.lut, "ff": resources.ff,
                      "dsp": resources.dsp, "bram": resources.bram},
    }
    return payload, verilog.fingerprint


def _simulate_payload(request: ServeRequest, flow) -> Tuple[Dict[str, Any], str]:
    artifact = flow.validate(seed=request.seed)
    outcome = artifact.value
    payload = {
        "verb": request.verb,
        "target": request.target,
        "params": dict(request.params),
        "seed": request.seed,
        "engine": outcome.engine,
        "cycles": int(outcome.cycles),
        "ok": bool(outcome.ok),
        "outputs": _output_arrays(flow, outcome.run),
    }
    if request.verb == "compose":
        payload["nodes"] = len(flow.graph.nodes)
        payload["edges"] = len(flow.graph.edges)
    return payload, artifact.fingerprint


def _sweep_payload(request: ServeRequest, flow) -> Tuple[Dict[str, Any], str]:
    from repro.flow import outputs_match
    seeds = list(range(request.seeds if request.seeds is not None else 8))
    artifact = flow.simulate_batch(seeds)
    outcome = artifact.value
    lanes = []
    for lane, inputs in enumerate(outcome.inputs_per_lane):
        ok = bool(outcome.run.done[lane])
        if ok and flow.reference is not None:
            ok = outputs_match(flow.reference(inputs),
                               lambda name: outcome.memory_array(name, lane),
                               flow.output_warmup)
        lanes.append({"seed": seeds[lane],
                      "cycles": int(outcome.run.cycles[lane]),
                      "ok": ok})
    payload = {
        "verb": "sweep",
        "target": request.target,
        "params": dict(request.params),
        "lanes": lanes,
        "mismatches": sum(0 if lane["ok"] else 1 for lane in lanes),
    }
    return payload, artifact.fingerprint


def execute(request: ServeRequest, config=None) -> ExecutionResult:
    """Run ``request`` through a Flow; returns the canonical payload.

    ``config`` is the server's base :class:`~repro.flow.FlowConfig` (request
    ``pipeline``/``engine`` overrides are applied on top; ``None`` means
    ``FlowConfig.from_env()``).  Raises the toolchain's typed errors
    (:class:`~repro.ir.errors.IRError` subclasses,
    :class:`~repro.kernels.UnknownKernelError`) — the server turns them
    into typed error responses.
    """
    from repro.flow import FlowConfig
    if config is None:
        config = FlowConfig.from_env()
    start = time.perf_counter()
    flow = _flow_for(request, config)
    if request.verb == "build":
        payload, fingerprint = _build_payload(request, flow)
    elif request.verb == "sweep":
        payload, fingerprint = _sweep_payload(request, flow)
    else:  # simulate / compose: a checked single-stimulus validation run
        payload, fingerprint = _simulate_payload(request, flow)
    return ExecutionResult(payload=canonical_payload(payload),
                           fingerprint=fingerprint,
                           seconds=time.perf_counter() - start)


def result_fingerprint(result: Optional[ExecutionResult]) -> str:
    return "" if result is None else result.fingerprint
