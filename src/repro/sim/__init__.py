"""Cycle-accurate simulation of generated designs (RTL-simulation substitute)."""

from repro.sim.testbench import (
    InterfaceMemory,
    SimulationRun,
    flatten_tensor,
    run_design,
    unflatten_tensor,
)
from repro.sim.verilog_sim import (
    ExternalModel,
    PipelinedMultiplierModel,
    Simulator,
)

__all__ = [
    "InterfaceMemory",
    "SimulationRun",
    "flatten_tensor",
    "run_design",
    "unflatten_tensor",
    "ExternalModel",
    "PipelinedMultiplierModel",
    "Simulator",
]
