"""Cycle-accurate simulation of generated designs (RTL-simulation substitute).

Two execution engines share one API: the interpreted reference simulator and
the compiled, event-driven engine (``run_design(..., engine="compiled")``);
:func:`run_design_batch` additionally vectorizes one compiled design over N
stimulus sets.  See :mod:`repro.sim.engine` for engine selection.
"""

from repro.sim.engine import (
    BatchedInterfaceMemory,
    BatchedSimulationRun,
    BatchedSimulator,
    CompiledSimulator,
    DifferentialSimulator,
    DivergenceError,
    available_engines,
    create_simulator,
    get_default_engine,
    run_design_batch,
    run_design_batch_impl,
    set_cache_capacity,
    set_default_engine,
)
from repro.sim.testbench import (
    InterfaceMemory,
    SimulationRun,
    flatten_tensor,
    run_design,
    run_design_impl,
    unflatten_tensor,
)
from repro.sim.verilog_sim import (
    ExternalModel,
    PipelinedMultiplierModel,
    Simulator,
)

__all__ = [
    "BatchedInterfaceMemory",
    "BatchedSimulationRun",
    "BatchedSimulator",
    "CompiledSimulator",
    "DifferentialSimulator",
    "DivergenceError",
    "InterfaceMemory",
    "SimulationRun",
    "available_engines",
    "create_simulator",
    "flatten_tensor",
    "get_default_engine",
    "run_design",
    "run_design_batch",
    "run_design_batch_impl",
    "run_design_impl",
    "set_cache_capacity",
    "set_default_engine",
    "unflatten_tensor",
    "ExternalModel",
    "PipelinedMultiplierModel",
    "Simulator",
]
