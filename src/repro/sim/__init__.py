"""Cycle-accurate simulation of generated designs (RTL-simulation substitute).

Several execution engines share one API: the interpreted reference simulator,
the compiled event-driven engine (``run_design(..., engine="compiled")``) and
the fused whole-run vector engine (``engine="vector"``, which enters the
interpreter once per design rather than once per cycle);
:func:`run_design_batch` additionally vectorizes one compiled design over N
stimulus sets.  See :mod:`repro.sim.engine` for engine selection.  Runs that
never assert ``done`` raise :class:`SimulationTimeout` in every engine.
"""

from repro.sim.engine import (
    BatchedInterfaceMemory,
    BatchedSimulationRun,
    BatchedSimulator,
    CompiledSimulator,
    DifferentialSimulator,
    DivergenceError,
    SimulationTimeout,
    VectorUnsupported,
    available_engines,
    create_simulator,
    get_default_engine,
    last_drain_cycle,
    run_design_batch,
    run_design_batch_impl,
    run_design_vector,
    set_cache_capacity,
    set_default_engine,
)
from repro.sim.testbench import (
    InterfaceMemory,
    SimulationRun,
    flatten_tensor,
    run_design,
    run_design_impl,
    unflatten_tensor,
)
from repro.sim.verilog_sim import (
    ExternalModel,
    PipelinedMultiplierModel,
    Simulator,
)

__all__ = [
    "BatchedInterfaceMemory",
    "BatchedSimulationRun",
    "BatchedSimulator",
    "CompiledSimulator",
    "DifferentialSimulator",
    "DivergenceError",
    "InterfaceMemory",
    "SimulationRun",
    "SimulationTimeout",
    "VectorUnsupported",
    "available_engines",
    "create_simulator",
    "flatten_tensor",
    "get_default_engine",
    "last_drain_cycle",
    "run_design",
    "run_design_batch",
    "run_design_batch_impl",
    "run_design_impl",
    "run_design_vector",
    "set_cache_capacity",
    "set_default_engine",
    "unflatten_tensor",
    "ExternalModel",
    "PipelinedMultiplierModel",
    "Simulator",
]
