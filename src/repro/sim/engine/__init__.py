"""Pluggable simulation engines behind the ``Simulator``/``run_design`` API.

Three engines execute the same elaborated design with the same cycle-level
semantics:

``interpreted``
    The original AST-walking :class:`~repro.sim.verilog_sim.Simulator` —
    simple, the semantic reference.
``compiled``
    :class:`~repro.sim.engine.compiled.CompiledSimulator` — levelizes the
    netlist once, specializes every assignment into generated Python, and
    re-evaluates only the fanout cone of signals that changed.
``differential``
    :class:`~repro.sim.engine.differential.DifferentialSimulator` — runs both
    of the above in lockstep and raises on the first trace divergence (the
    cross-checking harness used by the test suite).

The batched engine (:mod:`~repro.sim.engine.batch`) vectorizes N stimulus
sets over one compiled design; it has its own entry point,
:func:`~repro.sim.engine.batch.run_design_batch`, because its state is
per-lane arrays rather than ints.

A fourth name, ``vector`` (:mod:`~repro.sim.engine.vector`), is a *run-level*
engine: it compiles the entire start-to-done run — prologue, steady state,
drain — into one fused generated program, so there is no per-cycle simulator
object to instantiate.  It is selectable everywhere a per-cycle engine is
(``run_design``, ``REPRO_SIM_ENGINE``, ``FlowConfig``, ``--engine``) but not
through :func:`create_simulator`; designs without a static steady state fall
back to the compiled engine with typed provenance.

Select an engine per call (``run_design(..., engine="compiled")``), per
process (:func:`set_default_engine`) or per environment
(``REPRO_SIM_ENGINE=compiled``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from repro.ir.errors import SimulationError
from repro.sim.engine.batch import (
    BatchedInterfaceMemory,
    BatchedSimulationRun,
    BatchedSimulator,
    run_design_batch,
    run_design_batch_impl,
)
from repro.sim.engine.cache import (
    clear_compile_cache,
    compile_cache_size,
    set_cache_capacity,
)
from repro.sim.engine.compiled import CompiledSimulator
from repro.sim.engine.differential import DifferentialSimulator, DivergenceError
from repro.sim.engine.levelize import LoweredDesign, lower_design
from repro.sim.engine.vector import (
    VectorState,
    VectorUnsupported,
    run_design_vector,
    steady_state_of,
)
from repro.sim.engine.window import SimulationTimeout, last_drain_cycle
from repro.sim.verilog_sim import ExternalModel, Simulator
from repro.verilog.ast import Design

ENGINES: Dict[str, type] = {
    "interpreted": Simulator,
    "compiled": CompiledSimulator,
    "differential": DifferentialSimulator,
}

#: Run-level engines: valid everywhere an engine *name* is accepted, but they
#: execute whole runs through :func:`repro.sim.testbench.run_design_impl`
#: rather than exposing a per-cycle simulator class.
RUN_ENGINES: Tuple[str, ...] = ("vector",)

_default_engine = os.environ.get("REPRO_SIM_ENGINE", "interpreted")


def available_engines() -> list:
    """Names accepted by ``run_design(..., engine=...)``."""
    return sorted([*ENGINES, *RUN_ENGINES])


def get_default_engine() -> str:
    """The engine used when ``engine`` is omitted (env: REPRO_SIM_ENGINE)."""
    return _default_engine


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous default."""
    global _default_engine
    if name not in ENGINES and name not in RUN_ENGINES:
        raise SimulationError(
            f"unknown simulation engine '{name}'; choose one of "
            f"{available_engines()}"
        )
    previous = _default_engine
    _default_engine = name
    return previous


def create_simulator(
    design: Design,
    top: Optional[str] = None,
    external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None,
    engine: Optional[str] = None,
):
    """Instantiate the selected engine for ``design`` (default engine if
    ``engine`` is None)."""
    name = engine or get_default_engine()
    simulator_class = ENGINES.get(name)
    if simulator_class is None:
        if name in RUN_ENGINES:
            raise SimulationError(
                f"engine '{name}' executes whole runs and has no per-cycle "
                "simulator; use run_design(..., engine="
                f"{name!r}) instead of create_simulator")
        raise SimulationError(
            f"unknown simulation engine '{name}'; choose one of "
            f"{available_engines()}"
        )
    return simulator_class(design, top=top, external_models=external_models)


__all__ = [
    "BatchedInterfaceMemory",
    "BatchedSimulationRun",
    "BatchedSimulator",
    "CompiledSimulator",
    "DifferentialSimulator",
    "DivergenceError",
    "ENGINES",
    "LoweredDesign",
    "RUN_ENGINES",
    "SimulationTimeout",
    "VectorState",
    "VectorUnsupported",
    "available_engines",
    "clear_compile_cache",
    "compile_cache_size",
    "create_simulator",
    "get_default_engine",
    "last_drain_cycle",
    "lower_design",
    "run_design_batch",
    "run_design_batch_impl",
    "run_design_vector",
    "set_cache_capacity",
    "set_default_engine",
    "steady_state_of",
]
