"""Per-design compilation cache.

Elaboration, levelization and Python code generation are pure functions of
the design AST (plus the ``top`` override), so their results are shared
across simulator instances: re-running the same generated design — a
multi-seed sweep, a batched run after a single run, the differential
harness's second engine — pays compilation once.  Entries are keyed weakly on
the :class:`~repro.verilog.ast.Design` object, so a design's artifacts die
with it.

Designs with external (black-box) models are never cached: their elaboration
instantiates stateful behavioural models that must stay private to one
simulator.

The cache is bounded: long batched sweeps compile many distinct designs, and
without a cap every compiled artifact would stay alive for as long as its
design object does.  The least-recently-used design entries are evicted once
the cache holds more than ``REPRO_SIM_CACHE_SIZE`` designs (default 64; 0
disables caching entirely).  Eviction only drops the cache's references —
simulators already built from the artifacts keep working.
"""

from __future__ import annotations

import contextvars
import os
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.faults import fault_point
from repro.sim.engine.codegen import (
    clock_source,
    comb_source,
    comb_vector_source,
    compile_clock,
    compile_comb,
    compile_comb_vector,
)
from repro.sim.engine.levelize import LoweredDesign, lower_design
from repro.sim.verilog_sim import _Elaborator, _FlatDesign
from repro.verilog.ast import Design

# Designs are eq-comparing dataclasses (unhashable), so key on identity and
# evict via a finalizer when the design object dies.  Ordered by recency of
# use (most recent last) for LRU eviction.
_CACHE: "OrderedDict[int, dict]" = OrderedDict()
#: Design ids with a live finalizer, so a design that is LRU-evicted and
#: later re-cached does not accumulate one finalizer per re-insertion.
_FINALIZED: set = set()

#: Lifetime hit/miss/eviction counters, reported through
#: :mod:`repro.obs.cachestats` as the ``sim.compile`` cache.
_STATS = {"hits": 0, "misses": 0, "evictions": 0}


#: Programmatic capacity override (wins over the environment); installed by
#: :meth:`repro.flow.FlowConfig` for the duration of a Flow-driven run.
_capacity_override: Optional[int] = None


def set_cache_capacity(size: Optional[int]) -> Optional[int]:
    """Override the compile-cache capacity (``None`` restores the
    ``REPRO_SIM_CACHE_SIZE`` environment default); returns the previous
    override so callers can restore it."""
    global _capacity_override
    previous = _capacity_override
    _capacity_override = size if size is None else max(0, int(size))
    return previous


def _cache_capacity() -> int:
    if _capacity_override is not None:
        return _capacity_override
    try:
        return max(0, int(os.environ.get("REPRO_SIM_CACHE_SIZE", "64")))
    except ValueError:
        return 64


def compile_cache_size() -> int:
    """Number of designs currently held by the compile cache."""
    return len(_CACHE)


def _on_design_death(key: int) -> None:
    _CACHE.pop(key, None)
    _FINALIZED.discard(key)


def _design_entry(design: Design) -> Optional[dict]:
    capacity = _cache_capacity()
    if capacity == 0:
        return None
    key = id(design)
    entry = _CACHE.get(key)
    if entry is None:
        entry = {}
        _CACHE[key] = entry
        if key not in _FINALIZED:
            # One finalizer per design lifetime; it also frees the id for
            # reuse, so eviction + re-insertion cannot stack finalizers.
            _FINALIZED.add(key)
            weakref.finalize(design, _on_design_death, key)
    _CACHE.move_to_end(key)
    while len(_CACHE) > capacity:
        _CACHE.popitem(last=False)
        _STATS["evictions"] += 1
    return entry


@dataclass
class CompiledArtifacts:
    """Everything shareable between simulators of one (design, top) pair."""

    flat: _FlatDesign
    lowered: LoweredDesign
    #: Scalar dialect: per-assignment step functions + clocked step function.
    step_fns: Optional[List[Callable]] = None
    clock_fn: Optional[Callable] = None
    #: Vector dialect: whole-netlist pass + predicated clocked function.
    comb_vector_fn: Optional[Callable] = None
    clock_vector_fn: Optional[Callable] = None
    #: Fused whole-run programs (:mod:`repro.sim.engine.vector`), keyed on
    #: the interface-memory signature they were specialized against.
    vector_runs: Dict[str, Callable] = field(default_factory=dict)


#: When set (by :func:`persist_compiled`), generated simulator sources are
#: loaded from / published to this ``(ArtifactStore, design key)`` pair, so a
#: later process skips Python code generation for a design it has seen.
_PERSIST: "contextvars.ContextVar[Optional[Tuple[object, str]]]" = \
    contextvars.ContextVar("repro_sim_persist", default=None)


@contextmanager
def persist_compiled(store, key: str):
    """Persist generated simulator sources under ``key`` for this block.

    ``store`` is a :class:`repro.store.ArtifactStore` (or ``None`` for a
    no-op); ``key`` must fingerprint the design *content* (the Flow passes
    its design key).  Sources are stored under kind ``simsrc``.
    """
    if store is None:
        yield
        return
    token = _PERSIST.set((store, key))
    try:
        yield
    finally:
        _PERSIST.reset(token)


def _sourced(suffix: str, generate: Callable[[], str]) -> str:
    """The generated source for ``suffix``, through the persist store.

    A store hit skips generation entirely; a miss generates and publishes.
    Store failures degrade to plain generation (the store never fails a
    compile).
    """
    context = _PERSIST.get()
    if context is None:
        return generate()
    store, base = context
    key = f"{base}-{suffix}"
    text = store.get_text("simsrc", key)
    if text is None:
        text = generate()
        store.put("simsrc", key, text)
    return text


def _elaborate(design: Design, top: Optional[str],
               external_models) -> Tuple[_FlatDesign, LoweredDesign]:
    if top is not None:
        design = Design(top=top, modules=design.modules)
    flat = _Elaborator(design, external_models).elaborate()
    return flat, lower_design(flat)


def base_artifacts(design: Design, top: Optional[str],
                   external_models) -> CompiledArtifacts:
    """Elaborate + levelize ``design``, reusing cached artifacts when safe.

    The elaboration/levelization pair is shared by every generated dialect
    (per-cycle scalar, per-cycle lanes, fused whole-run); dialect compiles
    hang their functions off the returned artifacts.
    """
    per_design = _design_entry(design) if not external_models else None
    cacheable = per_design is not None
    artifacts: Optional[CompiledArtifacts] = None
    if cacheable:
        artifacts = per_design.get(top)
    if artifacts is None:
        if cacheable:
            _STATS["misses"] += 1
        flat, lowered = _elaborate(design, top, external_models)
        artifacts = CompiledArtifacts(flat=flat, lowered=lowered)
        if cacheable:
            per_design[top] = artifacts
    else:
        _STATS["hits"] += 1
    return artifacts


def compiled_artifacts(design: Design, top: Optional[str], external_models,
                       vector: bool) -> CompiledArtifacts:
    """Elaborate + compile ``design``, reusing cached artifacts when safe."""
    artifacts = base_artifacts(design, top, external_models)
    tag = "top" if top is None else top
    if vector:
        if artifacts.comb_vector_fn is None:
            fault_point("engine.compile")
            lowered = artifacts.lowered
            artifacts.comb_vector_fn = compile_comb_vector(
                lowered, source=_sourced(f"{tag}-comb-vector",
                                         lambda: comb_vector_source(lowered)))
            artifacts.clock_vector_fn = compile_clock(
                lowered, vector=True,
                source=_sourced(f"{tag}-clock-vector",
                                lambda: clock_source(lowered, vector=True)))
    else:
        if artifacts.step_fns is None:
            fault_point("engine.compile")
            lowered = artifacts.lowered
            artifacts.step_fns = compile_comb(
                lowered, source=_sourced(f"{tag}-comb-scalar",
                                         lambda: comb_source(lowered)))
            artifacts.clock_fn = compile_clock(
                lowered, vector=False,
                source=_sourced(f"{tag}-clock-scalar",
                                lambda: clock_source(lowered, vector=False)))
    return artifacts


def clear_compile_cache() -> None:
    """Drop every cached compilation (mainly for tests and benchmarks)."""
    _CACHE.clear()


def _cache_stats():
    from repro.obs.cachestats import CacheStats
    return CacheStats(name="sim.compile", capacity=_cache_capacity(),
                      size=len(_CACHE), hits=_STATS["hits"],
                      misses=_STATS["misses"], evictions=_STATS["evictions"])


def _register_stats() -> None:
    from repro.obs.cachestats import register_cache
    register_cache("sim.compile", _cache_stats)


_register_stats()


__all__ = ["CompiledArtifacts", "base_artifacts", "clear_compile_cache",
           "compile_cache_size", "compiled_artifacts", "persist_compiled",
           "set_cache_capacity"]
