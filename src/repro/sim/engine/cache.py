"""Per-design compilation cache.

Elaboration, levelization and Python code generation are pure functions of
the design AST (plus the ``top`` override), so their results are shared
across simulator instances: re-running the same generated design — a
multi-seed sweep, a batched run after a single run, the differential
harness's second engine — pays compilation once.  Entries are keyed weakly on
the :class:`~repro.verilog.ast.Design` object, so a design's artifacts die
with it.

Designs with external (black-box) models are never cached: their elaboration
instantiates stateful behavioural models that must stay private to one
simulator.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.engine.codegen import (
    compile_clock,
    compile_comb,
    compile_comb_vector,
)
from repro.sim.engine.levelize import LoweredDesign, lower_design
from repro.sim.verilog_sim import _Elaborator, _FlatDesign
from repro.verilog.ast import Design

# Designs are eq-comparing dataclasses (unhashable), so key on identity and
# evict via a finalizer when the design object dies.
_CACHE: dict = {}


def _design_entry(design: Design) -> dict:
    key = id(design)
    entry = _CACHE.get(key)
    if entry is None:
        entry = {}
        _CACHE[key] = entry
        weakref.finalize(design, _CACHE.pop, key, None)
    return entry


@dataclass
class CompiledArtifacts:
    """Everything shareable between simulators of one (design, top) pair."""

    flat: _FlatDesign
    lowered: LoweredDesign
    #: Scalar dialect: per-assignment step functions + clocked step function.
    step_fns: Optional[List[Callable]] = None
    clock_fn: Optional[Callable] = None
    #: Vector dialect: whole-netlist pass + predicated clocked function.
    comb_vector_fn: Optional[Callable] = None
    clock_vector_fn: Optional[Callable] = None


def _elaborate(design: Design, top: Optional[str],
               external_models) -> Tuple[_FlatDesign, LoweredDesign]:
    if top is not None:
        design = Design(top=top, modules=design.modules)
    flat = _Elaborator(design, external_models).elaborate()
    return flat, lower_design(flat)


def compiled_artifacts(design: Design, top: Optional[str], external_models,
                       vector: bool) -> CompiledArtifacts:
    """Elaborate + compile ``design``, reusing cached artifacts when safe."""
    cacheable = not external_models
    artifacts: Optional[CompiledArtifacts] = None
    if cacheable:
        per_design = _design_entry(design)
        artifacts = per_design.get(top)
    if artifacts is None:
        flat, lowered = _elaborate(design, top, external_models)
        artifacts = CompiledArtifacts(flat=flat, lowered=lowered)
        if cacheable:
            per_design[top] = artifacts
    if vector:
        if artifacts.comb_vector_fn is None:
            artifacts.comb_vector_fn = compile_comb_vector(artifacts.lowered)
            artifacts.clock_vector_fn = compile_clock(artifacts.lowered,
                                                      vector=True)
    else:
        if artifacts.step_fns is None:
            artifacts.step_fns = compile_comb(artifacts.lowered)
            artifacts.clock_fn = compile_clock(artifacts.lowered, vector=False)
    return artifacts


def clear_compile_cache() -> None:
    """Drop every cached compilation (mainly for tests and benchmarks)."""
    _CACHE.clear()


__all__ = ["CompiledArtifacts", "clear_compile_cache", "compiled_artifacts"]
