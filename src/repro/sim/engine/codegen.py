"""Specialize a lowered netlist into generated-Python step functions.

Instead of walking the Verilog AST for every signal on every cycle (what the
interpreted :class:`~repro.sim.verilog_sim.Simulator` does), the compiled
engines translate each continuous assignment and each clocked block *once*
into straight-line Python source, with slot indices, constant-folded
subexpressions and bit masks baked in as literals, and ``exec`` the result.
Two dialects are generated from the same AST:

* **scalar** — plain Python ints, exactly the interpreter's arithmetic; used
  by :class:`~repro.sim.engine.compiled.CompiledSimulator`.
* **vector** — numpy ``int64`` lane arrays with predicated conditionals; used
  by :class:`~repro.sim.engine.batch.BatchedSimulator` to run N independent
  stimulus sets per step function call.

Deep expression trees (wide result multiplexers, ``or_reduce`` chains) would
overflow CPython's parser nesting limit if rendered as one expression, so the
compiler spills subtrees into temporaries once a tree passes
``MAX_INLINE_DEPTH``; scalar mux chains additionally linearize into flat
``if``/``elif`` ladders, which keeps the interpreter's lazy short-circuit
behaviour.  Every expression is pure (memory reads are bounds-checked), so
spilled evaluation order cannot change results.

The generated code reproduces the interpreter's semantics bit for bit:
intermediate values are unmasked (masks apply at assignment boundaries only),
out-of-bounds memory reads return 0 and out-of-bounds writes are dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ir.errors import SimulationError
from repro.sim.engine.levelize import LoweredDesign
from repro.verilog.ast import (
    BinOp,
    Const,
    Display,
    Expr,
    If,
    MemIndex,
    MemWrite,
    NonBlockingAssign,
    Ref,
    Statement,
    Ternary,
    UnOp,
)

_ARITH_OPS = {"+", "-", "*", "&", "|", "^", "<<", ">>"}
_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}

#: Expression trees deeper than this are spilled into temporaries so the
#: generated source stays within CPython's parser nesting limits.
MAX_INLINE_DEPTH = 24


def _apply_scalar(op: str, lhs: int, rhs: int) -> int:
    """The interpreter's binary-operator semantics, for constant folding."""
    if op in _ARITH_OPS:
        return {
            "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
            "&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
            "<<": lhs << rhs, ">>": lhs >> rhs,
        }[op]
    if op in _COMPARE_OPS:
        return int({
            "==": lhs == rhs, "!=": lhs != rhs, "<": lhs < rhs,
            "<=": lhs <= rhs, ">": lhs > rhs, ">=": lhs >= rhs,
        }[op])
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    raise SimulationError(f"unknown binary operator {op!r}")


def fold_expr(expr: Expr,
              cache: Optional[Dict[int, Optional[int]]] = None) -> Optional[int]:
    """Fold an expression to a constant, or None if it reads live state.

    ``cache`` memoizes results by node identity; the compiler threads one
    through so repeated folding queries over deep shared trees stay linear.
    """
    if cache is not None and id(expr) in cache:
        return cache[id(expr)]
    result: Optional[int] = None
    if isinstance(expr, Const):
        result = expr.value & ((1 << expr.width) - 1)
    elif isinstance(expr, UnOp):
        value = fold_expr(expr.operand, cache)
        if value is not None:
            if expr.op == "!":
                result = 0 if value else 1
            elif expr.op == "~":
                result = ~value
            elif expr.op == "-":
                result = -value
            elif expr.op == "|":
                result = 1 if value else 0
            else:
                raise SimulationError(f"unknown unary operator {expr.op!r}")
    elif isinstance(expr, BinOp):
        lhs = fold_expr(expr.lhs, cache)
        rhs = fold_expr(expr.rhs, cache)
        if lhs is not None and rhs is not None:
            result = _apply_scalar(expr.op, lhs, rhs)
    elif isinstance(expr, Ternary):
        condition = fold_expr(expr.condition, cache)
        if condition is not None:
            # Lazy, like the interpreter: fold only the branch that is taken.
            result = fold_expr(
                expr.true_value if condition else expr.false_value, cache)
    if cache is not None:
        cache[id(expr)] = result
    return result


class _SourceBuilder:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class ExprCompiler:
    """Compile expression trees to Python source (scalar or vector dialect).

    ``expression(expr, builder, indent)`` returns a source fragment for
    ``expr``; deep subtrees are spilled as temporary-variable statements
    emitted through ``builder`` at the given indentation.
    """

    def __init__(self, lowered: LoweredDesign, vector: bool = False) -> None:
        self.lowered = lowered
        self.vector = vector
        self._depths: Dict[int, int] = {}
        self._folds: Dict[int, Optional[int]] = {}
        self._temp_count = 0

    # -- helpers -----------------------------------------------------------------
    def _children(self, expr: Expr) -> List[Expr]:
        if isinstance(expr, UnOp):
            return [expr.operand]
        if isinstance(expr, BinOp):
            return [expr.lhs, expr.rhs]
        if isinstance(expr, Ternary):
            return [expr.condition, expr.true_value, expr.false_value]
        if isinstance(expr, MemIndex):
            return [expr.address]
        return []

    def _depth(self, expr: Expr) -> int:
        cached = self._depths.get(id(expr))
        if cached is None:
            cached = 1 + max((self._depth(child)
                              for child in self._children(expr)), default=0)
            self._depths[id(expr)] = cached
        return cached

    def _temp(self) -> str:
        self._temp_count += 1
        return f"_t{self._temp_count}"

    def new_scope(self) -> None:
        """Reset temporary numbering (start of a new generated function)."""
        self._temp_count = 0

    # -- expression compilation ---------------------------------------------------
    def expression(self, expr: Expr, builder: _SourceBuilder,
                   indent: int) -> str:
        folded = fold_expr(expr, self._folds)
        if folded is not None:
            return repr(folded)
        if isinstance(expr, Ref):
            return f"v[{self.lowered.slots.slot(expr.name)}]"

        deep = self._depth(expr) > MAX_INLINE_DEPTH
        if deep and isinstance(expr, Ternary) and not self.vector:
            return self._ternary_ladder(expr, builder, indent)

        def child(sub: Expr) -> str:
            source = self.expression(sub, builder, indent)
            trivial = (source.startswith("_t") or source.startswith("v[")
                       or source.lstrip("-").isdigit())
            if deep and not trivial:
                name = self._temp()
                builder.emit(indent, f"{name} = {source}")
                return name
            return source

        if isinstance(expr, UnOp):
            operand = child(expr.operand)
            if self.vector:
                if expr.op == "!":
                    return f"(({operand}) == 0).astype(_np.int64)"
                if expr.op == "|":
                    return f"(({operand}) != 0).astype(_np.int64)"
            else:
                if expr.op == "!":
                    return f"(0 if {operand} else 1)"
                if expr.op == "|":
                    return f"(1 if {operand} else 0)"
            if expr.op == "~":
                return f"(~({operand}))"
            if expr.op == "-":
                return f"(-({operand}))"
            raise SimulationError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            lhs = child(expr.lhs)
            rhs = child(expr.rhs)
            if expr.op in _ARITH_OPS:
                return f"(({lhs}) {expr.op} ({rhs}))"
            if expr.op in _COMPARE_OPS:
                if self.vector:
                    return f"(({lhs}) {expr.op} ({rhs})).astype(_np.int64)"
                return f"(1 if ({lhs}) {expr.op} ({rhs}) else 0)"
            if expr.op == "&&":
                if self.vector:
                    return (f"((({lhs}) != 0) & (({rhs}) != 0))"
                            ".astype(_np.int64)")
                return f"(1 if (({lhs}) and ({rhs})) else 0)"
            raise SimulationError(f"unknown binary operator {expr.op!r}")
        if isinstance(expr, Ternary):
            folded_condition = fold_expr(expr.condition, self._folds)
            if folded_condition is not None:
                branch = expr.true_value if folded_condition else expr.false_value
                return self.expression(branch, builder, indent)
            condition = child(expr.condition)
            true_value = child(expr.true_value)
            false_value = child(expr.false_value)
            if self.vector:
                return (f"_np.where(({condition}) != 0, ({true_value}), "
                        f"({false_value}))")
            return f"(({true_value}) if ({condition}) else ({false_value}))"
        if isinstance(expr, MemIndex):
            mem_index = self.lowered.mem_of.get(expr.memory)
            if mem_index is None:
                # The interpreter would KeyError at runtime; surface a clear
                # compile-time diagnostic instead.
                raise SimulationError(
                    f"expression reads undeclared memory '{expr.memory}'"
                )
            address = child(expr.address)
            helper = "_mrv" if self.vector else "_mr"
            return f"{helper}(m[{mem_index}], ({address}))"
        raise SimulationError(f"cannot compile expression {expr!r}")

    def _ternary_ladder(self, expr: Expr, builder: _SourceBuilder,
                        indent: int) -> str:
        """Linearize a right-nested mux chain into a flat if/elif ladder.

        Preserves the interpreter's lazy branch evaluation (only the selected
        arm's value is computed) while keeping nesting depth constant.
        """
        arms: List[Tuple[Expr, Expr]] = []
        node: Expr = expr
        while isinstance(node, Ternary) and fold_expr(node.condition, self._folds) is None:
            arms.append((node.condition, node.true_value))
            node = node.false_value
        if isinstance(node, Ternary):  # constant condition: take that branch
            folded_condition = fold_expr(node.condition, self._folds)
            node = node.true_value if folded_condition else node.false_value
        if not arms:
            return self.expression(node, builder, indent)
        result = self._temp()
        # Conditions are evaluated eagerly (they are pure); arm values stay
        # lazy inside their branch bodies.
        conditions = [self.expression(condition, builder, indent)
                      for condition, _ in arms]
        for index, ((_, value), condition) in enumerate(zip(arms, conditions)):
            keyword = "if" if index == 0 else "elif"
            builder.emit(indent, f"{keyword} ({condition}):")
            value_source = self.expression(value, builder, indent + 1)
            builder.emit(indent + 1, f"{result} = {value_source}")
        builder.emit(indent, "else:")
        default_source = self.expression(node, builder, indent + 1)
        builder.emit(indent + 1, f"{result} = {default_source}")
        return result


# --------------------------------------------------------------------------- #
# Runtime helpers injected into the generated module's globals
# --------------------------------------------------------------------------- #


def _mr(memory: List[int], address: int) -> int:
    """Scalar memory read with the interpreter's out-of-bounds-is-0 rule."""
    if 0 <= address < len(memory):
        return memory[address]
    return 0


def _mrv(memory: np.ndarray, address) -> np.ndarray:
    """Vector (per-lane) memory gather; out-of-bounds lanes read 0."""
    lanes, depth = memory.shape
    address = np.broadcast_to(np.asarray(address, dtype=np.int64), (lanes,))
    valid = (address >= 0) & (address < depth)
    safe = np.where(valid, address, 0)
    return np.where(valid, memory[np.arange(lanes), safe], 0)


def _truth(value) -> np.ndarray:
    """Per-lane truth of a condition value (scalar or lane array)."""
    return np.asarray(value) != 0


def _nba(updates: Dict[int, object], v: List[object], slot: int, predicate,
         value) -> None:
    """Predicated non-blocking assignment for the vector dialect.

    Later writes win (dict semantics, like the interpreter's reg_updates);
    disabled lanes keep the previous pending value or the pre-edge value.
    """
    if predicate is None:
        updates[slot] = value
        return
    previous = updates.get(slot, v[slot])
    updates[slot] = np.where(predicate, value, previous)


def runtime_globals() -> Dict[str, object]:
    """The globals dict every generated module executes under."""
    return {
        "_mr": _mr,
        "_mrv": _mrv,
        "_truth": _truth,
        "_nba": _nba,
        "_np": np,
        "SimulationError": SimulationError,
    }


# --------------------------------------------------------------------------- #
# Whole-netlist compilation
# --------------------------------------------------------------------------- #


def comb_source(lowered: LoweredDesign) -> str:
    """Generate (without exec'ing) the scalar per-assignment step sources.

    Source generation is a pure function of the lowered design, so the text
    can be persisted (:mod:`repro.store` kind ``simsrc``) and exec'd by a
    later process that skips generation entirely.
    """
    compiler = ExprCompiler(lowered, vector=False)
    builder = _SourceBuilder()
    for index, assign in enumerate(lowered.netlist.ordered):
        mask = lowered.assign_masks[index]
        compiler.new_scope()
        builder.emit(0, f"def _a{index}(v, m):")
        body = compiler.expression(assign.expr, builder, 1)
        builder.emit(1, f"return (({body})) & {mask}")
    return builder.source()


def compile_comb(lowered: LoweredDesign,
                 source: Optional[str] = None) -> List[Callable]:
    """Compile each continuous assignment into its own step function.

    ``step_fns[i](v, m)`` evaluates ordered assignment ``i`` and returns its
    new (masked) target value; the caller stores it and schedules fanout.
    ``source`` skips generation and execs a previously generated (persisted)
    :func:`comb_source` text instead.
    """
    if source is None:
        source = comb_source(lowered)
    namespace = runtime_globals()
    exec(source, namespace)  # noqa: S102 - trusted generated code
    return [namespace[f"_a{index}"]
            for index in range(len(lowered.netlist.ordered))]


def comb_vector_source(lowered: LoweredDesign) -> str:
    """Generate (without exec'ing) the vectorized full-pass source."""
    compiler = ExprCompiler(lowered, vector=True)
    builder = _SourceBuilder()
    builder.emit(0, "def _comb(v, m):")
    if not lowered.netlist.ordered:
        builder.emit(1, "pass")
    for index, assign in enumerate(lowered.netlist.ordered):
        target = lowered.assign_targets[index]
        mask = lowered.assign_masks[index]
        body = compiler.expression(assign.expr, builder, 1)
        # In-place so each slot keeps its (lanes,) array even for
        # constant-folded right-hand sides.
        builder.emit(1, f"v[{target}][:] = (({body})) & {mask}")
    return builder.source()


def compile_comb_vector(lowered: LoweredDesign,
                        source: Optional[str] = None) -> Callable:
    """Compile all continuous assignments into one vectorized full pass."""
    if source is None:
        source = comb_vector_source(lowered)
    namespace = runtime_globals()
    exec(source, namespace)  # noqa: S102 - trusted generated code
    return namespace["_comb"]


def _emit_clock_stmt(builder: _SourceBuilder, compiler: ExprCompiler,
                     lowered: LoweredDesign, stmt: Statement, indent: int,
                     predicate: Optional[str], counter: List[int]) -> None:
    vector = compiler.vector
    if isinstance(stmt, NonBlockingAssign):
        slot = lowered.slots.slot(stmt.target)
        mask = lowered.reg_mask_for(stmt.target)
        value = f"(({compiler.expression(stmt.expr, builder, indent)})) & {mask}"
        if vector:
            builder.emit(indent, f"_nba(ru, v, {slot}, {predicate}, {value})")
        else:
            builder.emit(indent, f"ru[{slot}] = {value}")
        return
    if isinstance(stmt, MemWrite):
        mem_index = lowered.mem_of.get(stmt.memory)
        if mem_index is None:
            raise SimulationError(
                f"clocked block writes undeclared memory '{stmt.memory}'"
            )
        address = compiler.expression(stmt.address, builder, indent)
        data = compiler.expression(stmt.data, builder, indent)
        if vector:
            builder.emit(indent,
                         f"mu.append(({mem_index}, {predicate}, ({address}), "
                         f"({data})))")
        else:
            builder.emit(indent,
                         f"mu.append(({mem_index}, ({address}), ({data})))")
        return
    if isinstance(stmt, If):
        condition = compiler.expression(stmt.condition, builder, indent)
        if vector:
            counter[0] += 1
            cond_name = f"_c{counter[0]}"
            then_pred = f"_p{counter[0]}t"
            else_pred = f"_p{counter[0]}e"
            builder.emit(indent, f"{cond_name} = _truth({condition})")
            if predicate == "None":
                builder.emit(indent, f"{then_pred} = {cond_name}")
                builder.emit(indent, f"{else_pred} = ~{cond_name}")
            else:
                builder.emit(indent, f"{then_pred} = {predicate} & {cond_name}")
                builder.emit(indent, f"{else_pred} = {predicate} & (~{cond_name})")
            for inner in stmt.then_body:
                _emit_clock_stmt(builder, compiler, lowered, inner, indent,
                                 then_pred, counter)
            for inner in stmt.else_body:
                _emit_clock_stmt(builder, compiler, lowered, inner, indent,
                                 else_pred, counter)
        else:
            builder.emit(indent, f"if ({condition}):")
            if stmt.then_body:
                for inner in stmt.then_body:
                    _emit_clock_stmt(builder, compiler, lowered, inner,
                                     indent + 1, predicate, counter)
            else:
                builder.emit(indent + 1, "pass")
            if stmt.else_body:
                builder.emit(indent, "else:")
                for inner in stmt.else_body:
                    _emit_clock_stmt(builder, compiler, lowered, inner,
                                     indent + 1, predicate, counter)
        return
    if isinstance(stmt, Display):
        message = f"assertion failed: {stmt.message}"
        if vector:
            builder.emit(indent,
                         f"if {predicate} is None or bool(_np.any({predicate})):")
            builder.emit(indent + 1, f"raise SimulationError({message!r})")
        else:
            builder.emit(indent, f"raise SimulationError({message!r})")
        return
    raise SimulationError(f"cannot compile statement {stmt!r}")


def clock_source(lowered: LoweredDesign, vector: bool = False) -> str:
    """Generate (without exec'ing) the two-phase clocked step source."""
    compiler = ExprCompiler(lowered, vector=vector)
    builder = _SourceBuilder()
    builder.emit(0, "def _clock(v, m):")
    builder.emit(1, "ru = {}")
    builder.emit(1, "mu = []")
    counter = [0]
    for stmt in lowered.flat.clocked:
        _emit_clock_stmt(builder, compiler, lowered, stmt, 1,
                         "None" if vector else None, counter)
    builder.emit(1, "return ru, mu")
    return builder.source()


def compile_clock(lowered: LoweredDesign, vector: bool = False,
                  source: Optional[str] = None) -> Callable:
    """Compile the clocked statements into one two-phase step function.

    ``_clock(v, m)`` evaluates every right-hand side against the pre-edge
    state and returns ``(reg_updates, mem_updates)`` for the caller to commit,
    preserving non-blocking assignment semantics.  In the vector dialect,
    ``if`` statements become per-lane predicates.
    """
    if source is None:
        source = clock_source(lowered, vector=vector)
    namespace = runtime_globals()
    exec(source, namespace)  # noqa: S102 - trusted generated code
    return namespace["_clock"]


__all__ = [
    "ExprCompiler",
    "MAX_INLINE_DEPTH",
    "clock_source",
    "comb_source",
    "comb_vector_source",
    "compile_clock",
    "compile_comb",
    "compile_comb_vector",
    "fold_expr",
    "runtime_globals",
]
