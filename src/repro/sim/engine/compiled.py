"""The compiled, event-driven simulation engine.

Drop-in replacement for the interpreted :class:`~repro.sim.verilog_sim.
Simulator` (same ``set``/``get``/``step``/``memory`` surface, selected with
``run_design(..., engine="compiled")``).  Two ideas make it fast:

1. **Compilation** — the elaborated netlist is levelized once and every
   continuous assignment / clocked block is specialized into generated
   Python with slot indices and masks baked in (:mod:`.codegen`), so a cycle
   executes straight-line bytecode instead of an AST walk.
2. **Event-driven scheduling** — writes (``set``, register commits, memory
   commits, external models) mark only the fanout cone of the changed
   signal dirty; ``eval_comb`` re-evaluates just those assignments, in
   topological order via a min-heap over assignment indices.  When most of
   the design is dirty (e.g. right after reset) it falls back to the
   straight-line full pass, which is cheaper than scheduling.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from repro.ir.errors import SimulationError
from repro.sim.engine.cache import compiled_artifacts
from repro.sim.verilog_sim import ExternalModel
from repro.verilog.ast import Design

#: Above this fraction of dirty assignments, a straight-line full pass beats
#: the per-assignment scheduling overhead.
FULL_EVAL_FRACTION = 0.25


class CompiledSimulator:
    """Executes a compiled, levelized design cycle by cycle."""

    def __init__(self, design: Design, top: Optional[str] = None,
                 external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None):
        artifacts = compiled_artifacts(design, top, external_models,
                                       vector=False)
        self.flat = artifacts.flat
        self.lowered = artifacts.lowered
        self._step_fns = artifacts.step_fns
        self._clock_fn = artifacts.clock_fn

        slots = self.lowered.slots
        self._slot_of = slots.slot_of
        self._declared = set(self.flat.wires) | set(self.flat.regs)
        self._num_assigns = self.lowered.num_assigns
        self._assign_targets = self.lowered.assign_targets
        self._slot_fanout = self.lowered.slot_fanout
        self._slot_driver = self.lowered.slot_driver
        self._mem_fanout = self.lowered.mem_fanout
        self._mem_masks = [(1 << width) - 1 for width in self.lowered.mem_widths]
        self._input_masks = {name: (1 << width) - 1
                             for name, width in self.flat.inputs.items()}
        self._external_port_masks = [
            {port: (1 << self.flat.regs.get(flat_name, (32, 0))[0]) - 1
             for port, flat_name in external.output_ports.items()}
            for external in self.flat.externals
        ]

        self._values: List[int] = []
        self._mems: List[List[int]] = [[0] * depth
                                       for depth in self.lowered.mem_depths]
        #: Opt-in :class:`repro.obs.simprofile.SimProfiler`; None = no cost.
        self.profiler = None
        self._pending: List[bool] = []
        self._dirty: List[int] = []
        self.cycle = 0
        self.stats = {"comb_calls": 0, "full_evals": 0,
                      "event_assign_evals": 0, "full_assign_evals": 0}
        self.reset()

    # -- state management --------------------------------------------------------
    def reset(self) -> None:
        self._values = list(self.lowered.slots.reset_values)
        for storage, depth in zip(self._mems, self.lowered.mem_depths):
            storage[:] = [0] * depth
        self.cycle = 0
        self._pending = [True] * self._num_assigns
        self._dirty = list(range(self._num_assigns))

    def set(self, name: str, value: int) -> None:
        if name not in self.flat.inputs:
            raise SimulationError(f"'{name}' is not a top-level input")
        self._write_external(self._slot_of[name],
                             value & self._input_masks[name])

    def get(self, name: str) -> int:
        slot = self._slot_of.get(name)
        if slot is None or name not in self._declared:
            raise SimulationError(f"unknown signal '{name}'")
        return self._values[slot]

    def memory(self, name: str) -> List[int]:
        return self._mems[self.lowered.mem_of[name]]

    def find_memories(self, substring: str) -> List[str]:
        return sorted(name for name in self.lowered.mem_of if substring in name)

    def snapshot(self) -> Dict[str, int]:
        """Current value of every declared signal (for differential checks)."""
        return {name: self._values[self._slot_of[name]]
                for name in self._declared}

    # -- dirty tracking ----------------------------------------------------------
    def _mark_assign(self, index: int) -> None:
        if not self._pending[index]:
            self._pending[index] = True
            self._dirty.append(index)

    def _write_external(self, slot: int, value: int) -> None:
        """A write from outside the combinational core: ``set``, a register
        commit or an external model.  Marks readers dirty; if the slot is
        also assign-driven, re-arms its driver so the next ``eval_comb``
        restores continuous-assignment semantics (as the interpreter's full
        re-evaluation would)."""
        if self._values[slot] == value:
            return
        self._values[slot] = value
        for reader in self._slot_fanout[slot]:
            self._mark_assign(reader)
        driver = self._slot_driver.get(slot)
        if driver is not None:
            self._mark_assign(driver)

    # -- evaluation --------------------------------------------------------------
    def eval_comb(self) -> None:
        """Propagate continuous assignments; only dirty cones re-evaluate."""
        dirty = self._dirty
        if not dirty:
            return
        self.stats["comb_calls"] += 1
        values = self._values
        mems = self._mems
        pending = self._pending
        if len(dirty) >= self._num_assigns * FULL_EVAL_FRACTION:
            # Full pass in topological order, no scheduling overhead.
            targets = self._assign_targets
            for index, step in enumerate(self._step_fns):
                values[targets[index]] = step(values, mems)
            for index in dirty:
                pending[index] = False
            self.stats["full_evals"] += 1
            self.stats["full_assign_evals"] += self._num_assigns
            self._dirty = []
            return
        step_fns = self._step_fns
        targets = self._assign_targets
        fanout = self._slot_fanout
        evals = 0
        heapq.heapify(dirty)
        while dirty:
            index = heapq.heappop(dirty)
            if not pending[index]:
                continue
            pending[index] = False
            evals += 1
            value = step_fns[index](values, mems)
            target = targets[index]
            if values[target] != value:
                values[target] = value
                for reader in fanout[target]:
                    if not pending[reader]:
                        pending[reader] = True
                        heapq.heappush(dirty, reader)
        self.stats["event_assign_evals"] += evals
        self._dirty = []

    def clock_edge(self) -> None:
        """Apply every clocked statement (two-phase, non-blocking semantics)."""
        reg_updates, mem_updates = self._clock_fn(self._values, self._mems)

        # Black-box behavioural models clock with their *current* inputs.
        external_updates: List = []
        for external, masks in zip(self.flat.externals,
                                   self._external_port_masks):
            inputs = {}
            for port, flat_name in external.input_ports.items():
                slot = self._slot_of.get(flat_name)
                inputs[port] = self._values[slot] if slot is not None else 0
            outputs = external.model.clock(inputs)
            for port, flat_name in external.output_ports.items():
                external_updates.append(
                    (self._slot_of[flat_name], outputs.get(port, 0) & masks[port])
                )

        profiler = self.profiler
        if profiler is None:
            for slot, value in reg_updates.items():
                self._write_external(slot, value)
            for mem_index, address, data in mem_updates:
                storage = self._mems[mem_index]
                if 0 <= address < len(storage):
                    masked = data & self._mem_masks[mem_index]
                    if storage[address] != masked:
                        storage[address] = masked
                        for reader in self._mem_fanout[mem_index]:
                            self._mark_assign(reader)
            for slot, value in external_updates:
                self._write_external(slot, value)
        else:
            # Profiled path: same architectural events as the interpreter —
            # value changes per update, committed in-bounds memory writes
            # (counted even when the stored word is unchanged, matching the
            # interpreter's unconditional store).
            names = self.lowered.slots.names
            mem_names = self.lowered.mem_names
            profiler.begin_edge()
            for slot, value in reg_updates.items():
                if self._values[slot] != value:
                    profiler.on_reg(names[slot])
                self._write_external(slot, value)
            for mem_index, address, data in mem_updates:
                storage = self._mems[mem_index]
                if 0 <= address < len(storage):
                    profiler.on_mem_write(mem_names[mem_index], address)
                    masked = data & self._mem_masks[mem_index]
                    if storage[address] != masked:
                        storage[address] = masked
                        for reader in self._mem_fanout[mem_index]:
                            self._mark_assign(reader)
            for slot, value in external_updates:
                if self._values[slot] != value:
                    profiler.on_reg(names[slot])
                self._write_external(slot, value)
            profiler.end_edge()
        self.cycle += 1

    def step(self, cycles: int = 1) -> None:
        """Advance the clock ``cycles`` times (post-edge state on return)."""
        for _ in range(cycles):
            self.eval_comb()
            self.clock_edge()
        self.eval_comb()


__all__ = ["CompiledSimulator", "FULL_EVAL_FRACTION"]
