"""Differential testing: run the interpreter and the compiled engine in
lockstep and compare every signal and memory word after every phase.

:class:`DifferentialSimulator` exposes the standard simulator surface
(``set``/``get``/``eval_comb``/``clock_edge``/``step``/``memory``), so
``run_design(..., engine="differential")`` drives *both* engines through the
full testbench protocol — interface-memory sampling, drain cycles and all —
and raises :class:`DivergenceError` at the first cycle where the compiled
engine's trace departs from the interpreted reference.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ir.errors import SimulationError
from repro.sim.engine.compiled import CompiledSimulator
from repro.sim.verilog_sim import ExternalModel, Simulator
from repro.verilog.ast import Design

#: How many mismatching signals/words to list in a divergence report.
_REPORT_LIMIT = 8


class DivergenceError(SimulationError):
    """Compiled and interpreted traces disagree."""


class DifferentialSimulator:
    """Drives an interpreted reference and a compiled engine in lockstep."""

    def __init__(self, design: Design, top: Optional[str] = None,
                 external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None):
        # Each engine gets its own behavioural-model instances (the factories
        # are called once per elaboration), so stateful models stay in sync.
        self.reference = Simulator(design, top=top,
                                   external_models=external_models)
        self.compiled = CompiledSimulator(design, top=top,
                                          external_models=external_models)
        self.flat = self.reference.flat
        self._check("elaboration")

    # -- comparison --------------------------------------------------------------
    def _check(self, phase: str) -> None:
        mismatches: List[str] = []
        compiled_signals = self.compiled.snapshot()
        for name, expected in self.reference.signals.items():
            actual = compiled_signals.get(name)
            if actual != expected:
                mismatches.append(f"signal {name}: interpreted={expected} "
                                  f"compiled={actual}")
        for name, expected_words in self.reference.memories.items():
            actual_words = self.compiled.memory(name)
            if list(actual_words) != list(expected_words):
                diffs = [index for index, (a, b)
                         in enumerate(zip(actual_words, expected_words))
                         if a != b]
                mismatches.append(
                    f"memory {name}: {len(diffs)} word(s) differ at "
                    f"addresses {diffs[:_REPORT_LIMIT]}"
                )
        if mismatches:
            shown = "; ".join(mismatches[:_REPORT_LIMIT])
            raise DivergenceError(
                f"engines diverged after {phase} at cycle "
                f"{self.reference.cycle}: {shown}"
                + ("" if len(mismatches) <= _REPORT_LIMIT else
                   f" (+{len(mismatches) - _REPORT_LIMIT} more)")
            )

    # -- simulator surface -------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.reference.cycle

    def reset(self) -> None:
        self.reference.reset()
        self.compiled.reset()
        self._check("reset")

    def set(self, name: str, value: int) -> None:
        self.reference.set(name, value)
        self.compiled.set(name, value)

    def get(self, name: str) -> int:
        expected = self.reference.get(name)
        actual = self.compiled.get(name)
        if actual != expected:
            raise DivergenceError(
                f"get('{name}') at cycle {self.reference.cycle}: "
                f"interpreted={expected} compiled={actual}"
            )
        return expected

    def memory(self, name: str) -> List[int]:
        return self.reference.memory(name)

    def find_memories(self, substring: str) -> List[str]:
        return self.reference.find_memories(substring)

    def eval_comb(self) -> None:
        self.reference.eval_comb()
        self.compiled.eval_comb()
        self._check("eval_comb")

    def clock_edge(self) -> None:
        self.reference.clock_edge()
        self.compiled.clock_edge()
        self._check("clock_edge")

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self.eval_comb()
            self.clock_edge()
        self.eval_comb()


__all__ = ["DifferentialSimulator", "DivergenceError"]
