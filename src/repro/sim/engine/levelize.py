"""Lower a flattened netlist into slot-indexed form for the compiled engines.

The interpreter keeps simulation state in name-keyed dictionaries; the
compiled engines instead assign every signal a dense integer *slot* and every
memory a dense *memory index*, so generated step functions can use plain list
indexing.  :func:`lower_design` performs that lowering once per elaboration:

* allocate slots for every declared wire/register **and** every name the
  design merely references (undriven references read as 0, exactly like the
  interpreter's ``signals.get(name, 0)``),
* precompute the reset value and masking width of each slot,
* levelize the continuous assignments (via :mod:`repro.verilog.analysis`)
  and translate the per-name fanout map into slot -> assignment-index lists
  that the event-driven scheduler consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.verilog.analysis import LevelizedNetlist, levelize


def _mask_of(width: int) -> int:
    return (1 << width) - 1


@dataclass
class SlotTable:
    """Dense signal numbering plus per-slot reset/masking metadata."""

    names: List[str] = field(default_factory=list)
    slot_of: Dict[str, int] = field(default_factory=dict)
    reset_values: List[int] = field(default_factory=list)

    def slot(self, name: str) -> int:
        """Slot of ``name``, allocating a zero-initialised one if unseen."""
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.names)
            self.slot_of[name] = index
            self.names.append(name)
            self.reset_values.append(0)
        return index


@dataclass
class LoweredDesign:
    """Everything the compiled engines need, in slot-indexed form."""

    flat: object  # the _FlatDesign this was lowered from
    slots: SlotTable = field(default_factory=SlotTable)
    netlist: LevelizedNetlist = field(default_factory=LevelizedNetlist)
    #: Per ordered assignment: destination slot and bake-in mask.
    assign_targets: List[int] = field(default_factory=list)
    assign_masks: List[int] = field(default_factory=list)
    #: slot -> indices of ordered assignments whose expression reads it.
    slot_fanout: List[List[int]] = field(default_factory=list)
    #: slot -> index of the ordered assignment driving it (if any).
    slot_driver: Dict[int, int] = field(default_factory=dict)
    #: Memory numbering and metadata.
    mem_names: List[str] = field(default_factory=list)
    mem_of: Dict[str, int] = field(default_factory=dict)
    mem_widths: List[int] = field(default_factory=list)
    mem_depths: List[int] = field(default_factory=list)
    #: memory index -> indices of assignments reading it through MemIndex.
    mem_fanout: List[List[int]] = field(default_factory=list)
    #: Per clocked NonBlockingAssign target: masking width (interpreter rule).
    reg_masks: Dict[int, int] = field(default_factory=dict)

    @property
    def num_assigns(self) -> int:
        return len(self.netlist.ordered)

    def assign_mask_for(self, target: str) -> int:
        """The interpreter's continuous-assignment mask: wire width, else
        register width, else 32 bits."""
        width = self.flat.wires.get(target)
        if width is None and target in self.flat.regs:
            width = self.flat.regs[target][0]
        return _mask_of(width or 32)

    def reg_mask_for(self, target: str) -> int:
        """The interpreter's clocked-assignment mask (declared reg width,
        32 bits for undeclared targets)."""
        return _mask_of(self.flat.regs.get(target, (32, 0))[0])


def lower_design(flat) -> LoweredDesign:
    """Lower an elaborated ``_FlatDesign`` into slot-indexed form."""
    lowered = LoweredDesign(flat=flat)
    slots = lowered.slots

    # Declared state first (register inits override wire zeros, like reset()).
    for name in flat.wires:
        slots.slot(name)
    for name, (width, init) in flat.regs.items():
        index = slots.slot(name)
        slots.reset_values[index] = init & _mask_of(width)

    # Memories live in their own namespace, mirroring Simulator.memories.
    for name, (width, depth) in flat.memories.items():
        lowered.mem_of[name] = len(lowered.mem_names)
        lowered.mem_names.append(name)
        lowered.mem_widths.append(width)
        lowered.mem_depths.append(depth)
        lowered.mem_fanout.append([])

    # Levelize the combinational logic and allocate slots for every name the
    # design references, declared or not.
    lowered.netlist = levelize(flat.assigns)
    for assign in lowered.netlist.ordered:
        slots.slot(assign.target)
        for dep in assign.expr.refs():
            if dep not in lowered.mem_of:
                slots.slot(dep)
    for stmt in flat.clocked:
        for name in stmt.reads():
            if name not in lowered.mem_of:
                slots.slot(name)
        for name in stmt.writes():
            if name not in lowered.mem_of:
                slots.slot(name)

    for index, assign in enumerate(lowered.netlist.ordered):
        lowered.assign_targets.append(slots.slot_of[assign.target])
        lowered.assign_masks.append(lowered.assign_mask_for(assign.target))

    lowered.slot_fanout = [[] for _ in slots.names]
    for name, readers in lowered.netlist.fanout.items():
        if name in lowered.mem_of:
            continue
        lowered.slot_fanout[slots.slot_of[name]] = list(readers)
    for name, readers in lowered.netlist.memory_fanout.items():
        if name in lowered.mem_of:
            lowered.mem_fanout[lowered.mem_of[name]] = list(readers)
    for name, driver in lowered.netlist.driver.items():
        lowered.slot_driver[slots.slot_of[name]] = driver

    return lowered


__all__ = ["LoweredDesign", "SlotTable", "lower_design"]
