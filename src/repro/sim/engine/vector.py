"""The fused-run (``vector``) engine: enter the interpreter once per design.

Every other engine drives the testbench protocol from Python cycle by cycle:
``start`` pulse, combinational settle, interface-memory sample, ``done``
poll, clock edge, memory commit — six-plus interpreter round trips per cycle
(`sim/engine/compiled.py` still pays a heap-scheduled dispatch per dirty
assignment, `batch.py` one full generated pass per cycle).  For the
statically scheduled designs HIR produces, the per-cycle program is loop-free
and *identical every cycle*, so this engine compiles the **entire run** —
prologue, steady-state window and drain — into one generated Python function
that is event-driven on *both* sides of the clock:

* the *prologue* (cycle 0, everything dirty) settles through one
  straight-line full pass over the shared per-assignment step functions;
* the *steady state* is the fused cycle loop: the compiled engine's dirty
  heap for continuous assignments inlined as code, one generated function
  per top-level clocked statement called only when a signal or memory it
  reads changed (conflict-grouped so multi-writer last-wins is exact), and
  the interface-memory protocol of
  :class:`repro.sim.testbench.InterfaceMemory` inlined with its
  read-before-write commit semantics (the contract
  ``tests/verilog/test_memory_ports.py`` pins);
* the *drain* window closes through the shared
  :func:`repro.sim.engine.window.last_drain_cycle` helper, exactly like the
  scalar and batched runners.

The generated function is cached per ``(design, top, interface signature)``
in the engine compile cache and persisted through :mod:`repro.store` like
every other generated simulator source, so a warm run is a single call.

:func:`steady_state_of` ties the engine to the static-timing analysis of
:mod:`repro.graph.timing`: a design whose schedule is not statically
analyzable (data-dependent bounds, external callees) has no provable steady
state — :class:`VectorUnsupported` is raised and
:meth:`repro.flow.Flow.simulate` falls back to the compiled engine with
typed provenance.  When the analysis *does* succeed, the driver verifies the
observed ``done`` cycle against the prediction, so a drifting static model
is a loud :class:`~repro.ir.errors.SimulationError` rather than a silent
mis-speedup.

Bit-exactness versus the interpreted reference is enforced by the
differential engine's vector leg (every ``engine="differential"`` run
re-executes through this engine and compares), the ``engines`` fuzz oracle
and ``tests/fuzz/test_vector_sweep.py``.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.errors import SimulationError
from repro.obs.tracer import TRACER
from repro.resilience.faults import fault_point
from repro.sim.engine.cache import _sourced, compiled_artifacts
from repro.sim.engine.codegen import (
    ExprCompiler,
    _SourceBuilder,
    _emit_clock_stmt,
    runtime_globals,
)
from repro.sim.engine.levelize import LoweredDesign
from repro.sim.engine.window import SimulationTimeout, last_drain_cycle
from repro.verilog.ast import Design


class VectorUnsupported(SimulationError):
    """The design (or run mode) cannot be executed as one fused program.

    Raised for external behavioural models and per-cycle profiling (both
    need Python callbacks inside the cycle loop) and by
    :func:`steady_state_of` when the schedule has no static steady state.
    Callers fall back to the compiled engine with typed provenance.
    """


def steady_state_of(module, top: str):
    """Static :class:`~repro.graph.timing.FunctionTiming` of ``@top``.

    The timing analysis splits the run: ``[0, done)`` is the prologue plus
    steady-state window, ``done`` the cycle the generated module's ``done``
    output rises, and ``(done, last_activity]`` the drain traffic.  Designs
    outside the statically schedulable fragment raise
    :class:`VectorUnsupported` (chaining the
    :class:`~repro.graph.timing.TimingError`).
    """
    from repro.graph.timing import TimingError, analyze_function
    from repro.hir.ops import FuncOp

    func = module.lookup(top) if module is not None else None
    if not isinstance(func, FuncOp):
        raise VectorUnsupported(
            f"cannot analyze steady state: top function @{top} not found")
    try:
        return analyze_function(module, func)
    except TimingError as error:
        raise VectorUnsupported(
            f"design has no static steady state: {error}") from error


# --------------------------------------------------------------------------- #
# Interface signatures
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _InterfaceSpec:
    """Everything the fused program bakes in about one external memory."""

    prefix: str
    depth: int
    element_mask: int
    can_read: bool
    can_write: bool


def _interface_specs(memories) -> Tuple[_InterfaceSpec, ...]:
    specs = []
    for name, (memref_type, _initial) in (memories or {}).items():
        width = memref_type.element_type.bitwidth or 32
        specs.append(_InterfaceSpec(
            prefix=name,
            depth=memref_type.num_elements,
            element_mask=(1 << width) - 1,
            can_read=memref_type.can_read,
            can_write=memref_type.can_write,
        ))
    return tuple(specs)


def vector_signature(specs: Tuple[_InterfaceSpec, ...]) -> str:
    """Store-key-safe fingerprint of the (ordered) interface shape."""
    text = ";".join(
        f"{s.prefix}:{s.depth}:{s.element_mask}:"
        f"{int(s.can_read)}{int(s.can_write)}"
        for s in specs)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Whole-run code generation
# --------------------------------------------------------------------------- #


def _emit_marks(builder: _SourceBuilder, indent: int, marks_expr: str,
                push: str = "dirty.append(_r)") -> None:
    """Emit the guarded dirty-marking loop over a static mark list."""
    builder.emit(indent, f"for _r in {marks_expr}:")
    builder.emit(indent + 1, "if not pending[_r]:")
    builder.emit(indent + 2, "pending[_r] = True")
    builder.emit(indent + 2, push)


def _emit_pmarks(builder: _SourceBuilder, indent: int,
                 marks_expr: str) -> None:
    """Emit the guarded dirty-marking loop for clocked processes."""
    builder.emit(indent, f"for _q in {marks_expr}:")
    builder.emit(indent + 1, "if not ppend[_q]:")
    builder.emit(indent + 2, "ppend[_q] = True")
    builder.emit(indent + 2, "pdirty.append(_q)")


def vector_run_source(lowered: LoweredDesign,
                      specs: Tuple[_InterfaceSpec, ...]) -> str:
    """Generate (without exec'ing) the fused whole-run program.

    ``_vrun(v, m, im, _steps, max_cycles, drain_cycles)`` mutates the slot
    list ``v``, the on-chip memories ``m`` and the interface-memory data
    lists ``im`` in place and returns ``(done, done_cycle, results,
    counters)``.  ``_steps`` is the compiled engine's per-assignment step
    functions: the program embeds that engine's event-driven combinational
    evaluator (dirty heap, value-compare truncation, full-pass fallback) as
    straight-line code, inlines every clocked statement and the register/
    memory/interface commit, and drives the whole start-to-done protocol in
    one loop — no per-cycle Python calls at all.  Pure function of
    ``(lowered, specs)``, so the text persists through the compile cache's
    store tier like the per-cycle dialects.
    """
    flat = lowered.flat
    slots = lowered.slots
    declared = set(flat.wires) | set(flat.regs)
    if "start" not in flat.inputs:
        # The testbench would raise on its first simulator.set("start", ...).
        raise SimulationError("'start' is not a top-level input")
    if "done" not in declared:
        # ...and on its first simulator.get("done").
        raise SimulationError("unknown signal 'done'")

    def value_of(name: str) -> str:
        """Sampled value of a protocol signal (missing signals read 0,
        mirroring InterfaceMemory._get's SimulationError-means-0 rule)."""
        if name in declared:
            return f"v[{slots.slot_of[name]}]"
        return "0"

    compiler = ExprCompiler(lowered, vector=False)
    builder = _SourceBuilder()

    # One generated function per top-level clocked statement ("process").
    # The run loop is event-driven on the clocked side too: a process only
    # re-evaluates when a signal or memory it reads changed since it last
    # ran.  Skipping a clean process is exact because its re-evaluation
    # would schedule the same updates and every commit below is
    # value-compared; processes that (may) write the same target are kept in
    # one conflict group (see :func:`compile_vector_run`) so last-writer-
    # wins resolution is preserved.
    num_procs = len(flat.clocked)
    counter = [0]
    for pid, stmt in enumerate(flat.clocked):
        builder.emit(0, f"def _p{pid}(v, m, ru, mu):")
        _emit_clock_stmt(builder, compiler, lowered, stmt, 1, None, counter)
        builder.emit(1, "return None")
    names = ", ".join(f"_p{pid}" for pid in range(num_procs))
    trailing = "," if num_procs == 1 else ""
    builder.emit(0, f"_PROCS = ({names}{trailing})")

    builder.emit(0, "def _vrun(v, m, im, _steps, max_cycles, drain_cycles):")
    builder.emit(1, "_tg = _TARGETS")
    builder.emit(1, "_fan = _FANOUT")
    builder.emit(1, "_mk = _MARKS")
    builder.emit(1, "_ps = _PSLOT")
    builder.emit(1, "_pm = _PMEM")
    builder.emit(1, "_procs = _PROCS")
    builder.emit(1, "_hpush = _heappush")
    builder.emit(1, "_hpop = _heappop")
    builder.emit(1, f"pending = [True] * {lowered.num_assigns}")
    builder.emit(1, f"dirty = list(range({lowered.num_assigns}))")
    builder.emit(1, f"ppend = [True] * {num_procs}")
    builder.emit(1, f"pdirty = list(range({num_procs}))")
    builder.emit(1, "_ds = False")
    builder.emit(1, "_dc = 0")
    builder.emit(1, "_res = {}")
    for index in range(len(specs)):
        builder.emit(1, f"_rc{index} = 0")
        builder.emit(1, f"_wc{index} = 0")

    builder.emit(1, "for _cy in range(max_cycles):")

    # Start pulse, with the same changed-value fanout marking as
    # CompiledSimulator.set / _write_external.
    start_slot = slots.slot_of["start"]
    builder.emit(2, "_sv = 1 if _cy == 0 else 0")
    builder.emit(2, f"if v[{start_slot}] != _sv:")
    builder.emit(3, f"v[{start_slot}] = _sv")
    _emit_marks(builder, 3, f"_mk[{start_slot}]")
    _emit_pmarks(builder, 3, f"_ps[{start_slot}]")

    # Combinational settle: CompiledSimulator.eval_comb, inlined.  Dirty
    # cones re-evaluate through the shared per-assignment step functions in
    # topological (heap) order with value-compare truncation; when most of
    # the netlist is dirty (reset), one straight-line full pass is cheaper.
    full_threshold = lowered.num_assigns * 0.25
    builder.emit(2, "if dirty:")
    builder.emit(3, f"if len(dirty) >= {full_threshold!r}:")
    builder.emit(4, "_i = 0")
    builder.emit(4, "for _step in _steps:")
    builder.emit(5, "v[_tg[_i]] = _step(v, m)")
    builder.emit(5, "_i += 1")
    builder.emit(4, "for _i in dirty:")
    builder.emit(5, "pending[_i] = False")
    builder.emit(4, "dirty = []")
    # The full pass stores without value compares, so which wires changed is
    # unknown: conservatively re-arm every clocked process.
    builder.emit(4, f"ppend = [True] * {num_procs}")
    builder.emit(4, f"pdirty = list(range({num_procs}))")
    builder.emit(3, "else:")
    builder.emit(4, "_heapify(dirty)")
    builder.emit(4, "while dirty:")
    builder.emit(5, "_i = _hpop(dirty)")
    builder.emit(5, "if not pending[_i]:")
    builder.emit(6, "continue")
    builder.emit(5, "pending[_i] = False")
    builder.emit(5, "_val = _steps[_i](v, m)")
    builder.emit(5, "_t = _tg[_i]")
    builder.emit(5, "if v[_t] != _val:")
    builder.emit(6, "v[_t] = _val")
    _emit_marks(builder, 6, "_fan[_t]", push="_hpush(dirty, _r)")
    _emit_pmarks(builder, 6, "_ps[_t]")

    # Interface sample (post-settle, pre-edge), with access counters.
    for index, spec in enumerate(specs):
        builder.emit(2, f"_ad{index} = {value_of(f'{spec.prefix}_addr')}")
        if spec.can_read:
            builder.emit(2,
                         f"_re{index} = {value_of(f'{spec.prefix}_rd_en')}")
            builder.emit(2, f"if _re{index}:")
            builder.emit(3, f"_rc{index} += 1")
        if spec.can_write:
            builder.emit(2,
                         f"_we{index} = {value_of(f'{spec.prefix}_wr_en')}")
            builder.emit(2,
                         f"_wd{index} = {value_of(f'{spec.prefix}_wr_data')}")
            builder.emit(2, f"if _we{index}:")
            builder.emit(3, f"_wc{index} += 1")

    # Done poll + result capture (pre-edge, like the scalar testbench).
    builder.emit(2, f"if not _ds and v[{slots.slot_of['done']}]:")
    builder.emit(3, "_ds = True")
    builder.emit(3, "_dc = _cy")
    for name in flat.outputs:
        if name.startswith("result"):
            builder.emit(3, f"_res[{name!r}] = v[{slots.slot_of[name]}]")

    # Two-phase clocked commit.  Only dirty processes re-evaluate, in source
    # order (ascending id) so multi-writer last-wins resolution matches the
    # full sequential pass.  The commit loop is
    # CompiledSimulator._write_external unrolled: changed registers mark
    # their comb fanout (plus driver re-arm, folded into _MARKS) and the
    # clocked processes that read them.
    builder.emit(2, "ru = {}")
    builder.emit(2, "mu = []")
    builder.emit(2, "if pdirty:")
    builder.emit(3, "pdirty.sort()")
    builder.emit(3, "for _p in pdirty:")
    builder.emit(4, "ppend[_p] = False")
    builder.emit(4, "_procs[_p](v, m, ru, mu)")
    builder.emit(3, "pdirty = []")
    builder.emit(2, "for _s, _val in ru.items():")
    builder.emit(3, "if v[_s] != _val:")
    builder.emit(4, "v[_s] = _val")
    _emit_marks(builder, 4, "_mk[_s]")
    _emit_pmarks(builder, 4, "_ps[_s]")
    if lowered.mem_names:
        builder.emit(2, "for _mi, _ma, _md in mu:")
        builder.emit(3, "_mem = m[_mi]")
        builder.emit(3, "if 0 <= _ma < len(_mem):")
        builder.emit(4, "_mv = _md & _MM[_mi]")
        builder.emit(4, "if _mem[_ma] != _mv:")
        builder.emit(5, "_mem[_ma] = _mv")
        _emit_marks(builder, 5, "_MFAN[_mi]")
        _emit_pmarks(builder, 5, "_pm[_mi]")

    # Interface commit: read-before-write against the pre-edge sample.
    for index, spec in enumerate(specs):
        if spec.can_read:
            rd_data = f"{spec.prefix}_rd_data"
            builder.emit(2, f"if _re{index}:")
            if rd_data in flat.inputs:
                mask = (1 << flat.inputs[rd_data]) - 1
                rd_slot = slots.slot_of[rd_data]
                builder.emit(3, f"_val = _mr(im[{index}], _ad{index}) "
                                f"& {mask}")
                builder.emit(3, f"if v[{rd_slot}] != _val:")
                builder.emit(4, f"v[{rd_slot}] = _val")
                _emit_marks(builder, 4, f"_mk[{rd_slot}]")
                _emit_pmarks(builder, 4, f"_ps[{rd_slot}]")
            else:
                # InterfaceMemory.commit would raise through Simulator.set.
                builder.emit(3, "raise SimulationError("
                                f"\"'{rd_data}' is not a top-level input\")")
        if spec.can_write:
            builder.emit(2,
                         f"if _we{index} and 0 <= _ad{index} < {spec.depth}:")
            builder.emit(3,
                         f"im[{index}][_ad{index}] = "
                         f"_wd{index} & {spec.element_mask}")

    # Drain: shared window arithmetic with the scalar and batched runners.
    builder.emit(2, "if _ds and _cy >= _ldc(_dc, drain_cycles):")
    builder.emit(3, "break")

    counters = "".join(f"(_rc{index}, _wc{index}), "
                       for index in range(len(specs)))
    builder.emit(1, f"return _ds, _dc, _res, ({counters})")
    return builder.source()


def compile_vector_run(lowered: LoweredDesign, source: str) -> Callable:
    """Exec a :func:`vector_run_source` text into the ``_vrun`` callable.

    The static tables the program indexes at run time — assignment targets,
    per-slot fanout, fanout-plus-driver mark lists, per-memory fanout and
    masks, clocked-process sensitivity — are rebuilt from ``lowered`` and
    bound as globals, so the source text itself stays a pure function of the
    design (and persists through the store).
    """
    marks = []
    for slot in range(len(lowered.slots.names)):
        entries = tuple(lowered.slot_fanout[slot])
        driver = lowered.slot_driver.get(slot)
        if driver is not None:
            entries += (driver,)
        marks.append(entries)

    # Clocked-process sensitivity: slot / on-chip memory -> the processes
    # that read it.  Processes that (may) write the same register or memory
    # form one conflict group and are always marked together — re-running a
    # subset would break the full pass's last-writer-wins resolution (a
    # skipped earlier writer's value must not be resurrected by a dirty
    # later writer falling silent, and vice versa).
    flat = lowered.flat
    num_procs = len(flat.clocked)
    parent = list(range(num_procs))

    def _find(pid: int) -> int:
        while parent[pid] != pid:
            parent[pid] = parent[parent[pid]]
            pid = parent[pid]
        return pid

    writer_of: Dict[str, int] = {}
    for pid, stmt in enumerate(flat.clocked):
        for name in stmt.writes():
            other = writer_of.setdefault(name, pid)
            if other != pid:
                parent[_find(pid)] = _find(other)
    members: Dict[int, List[int]] = {}
    for pid in range(num_procs):
        members.setdefault(_find(pid), []).append(pid)
    group_of = [tuple(members[_find(pid)]) for pid in range(num_procs)]

    pslot = [set() for _ in lowered.slots.names]
    pmem = [set() for _ in lowered.mem_depths]
    slot_of = lowered.slots.slot_of
    for pid, stmt in enumerate(flat.clocked):
        for name in set(stmt.reads()):
            if name in lowered.mem_of:
                pmem[lowered.mem_of[name]].update(group_of[pid])
            else:
                slot = slot_of.get(name)
                if slot is not None:
                    pslot[slot].update(group_of[pid])

    namespace = runtime_globals()
    namespace.update(
        _ldc=last_drain_cycle,
        _heapify=heapq.heapify,
        _heappush=heapq.heappush,
        _heappop=heapq.heappop,
        _TARGETS=lowered.assign_targets,
        _FANOUT=lowered.slot_fanout,
        _MARKS=marks,
        _MFAN=lowered.mem_fanout,
        _MM=tuple((1 << width) - 1 for width in lowered.mem_widths),
        _PSLOT=[tuple(sorted(pids)) for pids in pslot],
        _PMEM=[tuple(sorted(pids)) for pids in pmem],
    )
    exec(source, namespace)  # noqa: S102 - trusted generated code
    return namespace["_vrun"]


def _cached_run(design: Design, top: Optional[str], memories):
    """``(artifacts, run_fn)`` through the engine compile cache + store.

    Compiles the scalar per-assignment step functions first (shared with the
    compiled engine — a warm compiled design pays only the fused-loop
    codegen here, and vice versa), then the fused run program for this
    interface signature.
    """
    specs = _interface_specs(memories)
    signature = vector_signature(specs)
    artifacts = compiled_artifacts(design, top, None, vector=False)
    run_fn = artifacts.vector_runs.get(signature)
    if run_fn is None:
        fault_point("engine.compile")
        tag = "top" if top is None else top
        lowered = artifacts.lowered
        source = _sourced(f"{tag}-run-vector-{signature}",
                          lambda: vector_run_source(lowered, specs))
        run_fn = compile_vector_run(lowered, source)
        artifacts.vector_runs[signature] = run_fn
    return artifacts, run_fn


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #


class VectorState:
    """Post-run state view (the vector engine has no per-cycle surface).

    Exposes the read side of the standard simulator API — ``get``,
    ``memory``, ``find_memories``, ``flat`` — over the final slot values and
    on-chip memories of a fused run.
    """

    def __init__(self, flat, lowered: LoweredDesign,
                 values: List[int], mems: List[List[int]]) -> None:
        self.flat = flat
        self.lowered = lowered
        self._values = values
        self._mems = mems
        self._declared = set(flat.wires) | set(flat.regs)

    def get(self, name: str) -> int:
        if name not in self._declared:
            raise SimulationError(f"unknown signal '{name}'")
        return self._values[self.lowered.slots.slot_of[name]]

    def memory(self, name: str) -> List[int]:
        return self._mems[self.lowered.mem_of[name]]

    def find_memories(self, substring: str) -> List[str]:
        return sorted(name for name in self.lowered.mem_of
                      if substring in name)


def run_design_vector(
    design: Design,
    memories=None,
    scalar_inputs=None,
    top: Optional[str] = None,
    external_models=None,
    max_cycles: int = 100000,
    drain_cycles: int = 4,
    steady_state=None,
    profiler=None,
):
    """Run a design start-to-done as one fused generated program.

    Same contract as :func:`repro.sim.testbench.run_design_impl`, except the
    run either finishes (``done=True``) or raises
    :class:`~repro.sim.engine.window.SimulationTimeout` — and
    :class:`VectorUnsupported` when the design needs per-cycle Python
    (external models, profiling).  ``steady_state`` is the optional
    :func:`steady_state_of` prediction; when given, the observed ``done``
    cycle is verified against it.
    """
    from repro.sim.testbench import InterfaceMemory, SimulationRun

    if external_models:
        raise VectorUnsupported(
            "external behavioural models need per-cycle Python callbacks; "
            "the vector engine fuses the whole run (use the compiled engine)")
    if profiler is not None:
        raise VectorUnsupported(
            "per-cycle profiling is not observable from a fused run; "
            "profile with the compiled engine")

    artifacts, run_fn = _cached_run(design, top, memories)
    flat, lowered = artifacts.flat, artifacts.lowered
    values = list(lowered.slots.reset_values)
    mems = [[0] * depth for depth in lowered.mem_depths]
    interface_memories: Dict[str, InterfaceMemory] = {}
    for name, (memref_type, initial) in (memories or {}).items():
        interface_memories[name] = InterfaceMemory(name, memref_type, initial)
    for name, value in (scalar_inputs or {}).items():
        if name not in flat.inputs:
            raise SimulationError(f"'{name}' is not a top-level input")
        mask = (1 << flat.inputs[name]) - 1
        values[lowered.slots.slot_of[name]] = int(value) & mask

    data = [memory.data for memory in interface_memories.values()]
    with TRACER.span("sim.run", cat="sim", engine="vector") as sim_span:
        done, done_cycle, results, counters = run_fn(
            values, mems, data, artifacts.step_fns, max_cycles, drain_cycles)
        sim_span.set(cycles=done_cycle + 1 if done else max_cycles, done=done)
    TRACER.count("sim.vector_runs")
    if not done:
        raise SimulationTimeout(
            f"design never asserted done within {max_cycles} cycles "
            "(vector engine)", undone_lanes=(0,), max_cycles=max_cycles)
    if steady_state is not None and done_cycle != steady_state.done:
        raise SimulationError(
            f"static steady-state timing predicted done at cycle "
            f"{steady_state.done} but simulation observed cycle {done_cycle}; "
            "the timing model and the generated design disagree")
    for memory, (reads, writes) in zip(interface_memories.values(), counters):
        memory.reads = reads
        memory.writes = writes
    return SimulationRun(
        cycles=done_cycle + 1,
        done=True,
        results=results,
        memories=interface_memories,
        simulator=VectorState(flat, lowered, values, mems),
        engine="vector",
    )


__all__ = [
    "VectorState",
    "VectorUnsupported",
    "compile_vector_run",
    "run_design_vector",
    "steady_state_of",
    "vector_run_source",
    "vector_signature",
]
