"""Shared run-window arithmetic and the typed run-timeout error.

Every engine drives the same ``start``-to-``done``-plus-drain protocol, and
historically each runner carried its own copy of the two window rules this
module now owns:

* :func:`last_drain_cycle` — the last cycle (inclusive) on which a design may
  still commit interface-memory traffic after pulsing ``done``.  The scalar
  loop (:mod:`repro.sim.testbench`), the batched runner
  (:mod:`repro.sim.engine.batch`) and the fused vector runner
  (:mod:`repro.sim.engine.vector`) all break out of their cycle loops against
  this one helper, so the drain window cannot drift off by one between
  engines (``tests/sim/test_drain_window.py`` pins a write landing exactly on
  the last drain cycle).
* :class:`SimulationTimeout` — raised when a run exhausts ``max_cycles``
  without ``done``.  Before this existed, the batched runner silently
  returned zero-filled results for lanes that never finished.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.errors import SimulationError


class SimulationTimeout(SimulationError):
    """A run (or batch lane) never asserted ``done`` within ``max_cycles``.

    ``undone_lanes`` names the offending lanes (``(0,)`` for single-lane
    engines) and ``max_cycles`` the exhausted budget, so sweeps can report
    exactly which stimulus sets hung instead of consuming zero-filled
    results.
    """

    def __init__(self, message: str, undone_lanes: Iterable[int] = (0,),
                 max_cycles: int = 0) -> None:
        super().__init__(message)
        self.undone_lanes = tuple(int(lane) for lane in undone_lanes)
        self.max_cycles = int(max_cycles)


def last_drain_cycle(done_cycle, drain_cycles):
    """The last cycle (inclusive) of the post-``done`` drain window.

    A runner commits interface-memory traffic for every cycle ``<=`` this
    value and breaks after it.  Pure addition, so it works elementwise on
    the batched engine's per-lane ``done_cycle`` arrays as well as on ints.
    """
    return done_cycle + drain_cycles


__all__ = ["SimulationTimeout", "last_drain_cycle"]
