"""Testbench helpers: drive a generated design and model external memories.

A generated HIR module exposes each memref argument as an address/enable/data
interface (Section 4.6).  :class:`InterfaceMemory` models the external RAM
behind such an interface with single-cycle read latency, and
:func:`run_design` drives the whole design from ``start`` to ``done`` — the
reproduction's stand-in for RTL simulation of the synthesized accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ir.errors import SimulationError
from repro.hir.types import MemrefType
from repro.obs.tracer import TRACER
from repro.sim.verilog_sim import ExternalModel, Simulator
from repro.sim.engine import create_simulator, get_default_engine
from repro.sim.engine.window import SimulationTimeout, last_drain_cycle
from repro.verilog.ast import Design


def flatten_tensor(memref_type: MemrefType, data) -> List[int]:
    """Row-major flatten of ``data`` (nested lists or numpy) to ints."""
    array = np.asarray(data, dtype=np.int64)
    expected = tuple(memref_type.shape)
    if array.shape != expected:
        raise SimulationError(
            f"tensor shape {array.shape} does not match memref shape {expected}"
        )
    return [int(v) for v in array.reshape(-1)]


def unflatten_tensor(memref_type: MemrefType, data: Sequence[int]) -> np.ndarray:
    width = memref_type.element_type.bitwidth or 32
    array = np.array(list(data), dtype=np.int64).reshape(memref_type.shape)
    # Interpret stored bit patterns as signed two's complement.
    sign_bit = 1 << (width - 1)
    array = np.where(array >= sign_bit, array - (1 << width), array)
    return array


class InterfaceMemory:
    """External RAM behind one memref interface of the top module."""

    def __init__(self, prefix: str, memref_type: MemrefType,
                 initial=None) -> None:
        self.prefix = prefix
        self.memref_type = memref_type
        depth = memref_type.num_elements
        if initial is None:
            self.data: List[int] = [0] * depth
        else:
            self.data = flatten_tensor(memref_type, initial)
        width = memref_type.element_type.bitwidth or 32
        self._mask = (1 << width) - 1
        self.data = [value & self._mask for value in self.data]
        self._pending_read: Optional[int] = None
        self._pending_write: Optional[tuple] = None
        self.reads = 0
        self.writes = 0

    # -- per-cycle protocol -----------------------------------------------------
    def sample(self, sim: Simulator) -> None:
        """Sample the interface outputs after combinational settle."""
        self._pending_read = None
        self._pending_write = None
        address = self._get(sim, f"{self.prefix}_addr")
        if self.memref_type.can_read and self._get(sim, f"{self.prefix}_rd_en"):
            self._pending_read = address
            self.reads += 1
        if self.memref_type.can_write and self._get(sim, f"{self.prefix}_wr_en"):
            self._pending_write = (address, self._get(sim, f"{self.prefix}_wr_data"))
            self.writes += 1

    def commit(self, sim: Simulator) -> None:
        """Apply the sampled access at the clock edge (read-before-write)."""
        if self._pending_read is not None and self.memref_type.can_read:
            value = 0
            if 0 <= self._pending_read < len(self.data):
                value = self.data[self._pending_read]
            sim.set(f"{self.prefix}_rd_data", value)
        if self._pending_write is not None:
            address, data = self._pending_write
            if 0 <= address < len(self.data):
                self.data[address] = data & self._mask

    @staticmethod
    def _get(sim: Simulator, name: str) -> int:
        try:
            return sim.get(name)
        except SimulationError:
            return 0

    # -- results -------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        return unflatten_tensor(self.memref_type, self.data)


@dataclass
class SimulationRun:
    """Outcome of :func:`run_design`."""

    cycles: int
    done: bool
    results: Dict[str, int] = field(default_factory=dict)
    memories: Dict[str, InterfaceMemory] = field(default_factory=dict)
    simulator: Optional[Simulator] = None
    #: The run's :class:`repro.obs.simprofile.SimProfile` when it was
    #: profiled (``run_design_impl(..., profiler=...)``).
    profile: Optional[object] = None
    #: The engine that actually executed the run (may differ from the one
    #: requested: ``engine="vector"`` on a design without a static steady
    #: state executes as ``"compiled"``).
    engine: Optional[str] = None
    #: Why the requested engine was substituted, when it was (typed
    #: provenance for the vector → compiled fallback).
    fallback: Optional[str] = None

    def memory_array(self, name: str) -> np.ndarray:
        return self.memories[name].as_array()


def run_design_impl(
    design: Design,
    memories: Optional[Dict[str, tuple]] = None,
    scalar_inputs: Optional[Dict[str, int]] = None,
    top: Optional[str] = None,
    external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None,
    max_cycles: int = 100000,
    drain_cycles: int = 4,
    engine: Optional[str] = None,
    profiler=None,
    steady_state=None,
) -> SimulationRun:
    """Run a generated design from ``start`` until its ``done`` pulse.

    ``memories`` maps each memref argument name to ``(MemrefType, initial
    data)``; ``scalar_inputs`` provides values for primitive arguments.
    ``engine`` selects the simulation engine (``"interpreted"``,
    ``"compiled"``, ``"differential"`` or the fused whole-run ``"vector"``;
    default: the process-wide default, see
    :func:`repro.sim.engine.set_default_engine`).  ``profiler`` is an
    optional :class:`repro.obs.simprofile.SimProfiler`; the run then carries
    its profile in ``SimulationRun.profile``.  ``steady_state`` is an
    optional :class:`repro.graph.timing.FunctionTiming` hint for the vector
    engine (the observed ``done`` cycle is verified against it).

    A run that exhausts ``max_cycles`` without ``done`` raises
    :class:`~repro.sim.engine.window.SimulationTimeout` — every engine shares
    that contract.  This is the non-deprecated core that
    :meth:`repro.flow.Flow.simulate` drives.
    """
    name = engine or get_default_engine()
    if name == "vector":
        from repro.sim.engine.vector import VectorUnsupported, run_design_vector
        try:
            return run_design_vector(
                design, memories=memories, scalar_inputs=scalar_inputs,
                top=top, external_models=external_models,
                max_cycles=max_cycles, drain_cycles=drain_cycles,
                steady_state=steady_state, profiler=profiler)
        except VectorUnsupported as error:
            # Typed fallback: the design (or run mode) has no fused-run
            # execution; the compiled per-cycle engine is semantically
            # identical, and the run records why it was substituted.
            run = run_design_impl(
                design, memories=memories, scalar_inputs=scalar_inputs,
                top=top, external_models=external_models,
                max_cycles=max_cycles, drain_cycles=drain_cycles,
                engine="compiled", profiler=profiler)
            run.fallback = str(error)
            return run

    simulator = create_simulator(design, top=top,
                                 external_models=external_models,
                                 engine=name)
    if profiler is not None:
        profiler.bind(simulator)
    interface_memories: Dict[str, InterfaceMemory] = {}
    for name_, (memref_type, initial) in (memories or {}).items():
        interface_memories[name_] = InterfaceMemory(name_, memref_type, initial)

    for name_, value in (scalar_inputs or {}).items():
        simulator.set(name_, value)

    done_seen = False
    done_cycle = 0
    results: Dict[str, int] = {}

    with TRACER.span("sim.run", cat="sim", engine=name) as sim_span:
        for cycle in range(max_cycles):
            simulator.set("start", 1 if cycle == 0 else 0)
            simulator.eval_comb()
            for memory in interface_memories.values():
                memory.sample(simulator)
            if not done_seen and simulator.get("done"):
                done_seen = True
                done_cycle = cycle
                for name_ in simulator.flat.outputs:
                    if name_.startswith("result"):
                        results[name_] = simulator.get(name_)
            if profiler is not None:
                for memory in interface_memories.values():
                    profiler.on_port(memory.prefix,
                                     memory._pending_read is not None,
                                     memory._pending_write is not None)
            simulator.clock_edge()
            for memory in interface_memories.values():
                memory.commit(simulator)
            # Let writes scheduled after the done pulse drain; the shared
            # window helper keeps this break aligned with the batched and
            # vector runners.
            if done_seen and cycle >= last_drain_cycle(done_cycle,
                                                       drain_cycles):
                break
        sim_span.set(cycles=done_cycle + 1 if done_seen else max_cycles,
                     done=done_seen)

    if not done_seen:
        raise SimulationTimeout(
            f"design never asserted done within {max_cycles} cycles "
            f"({name} engine)", undone_lanes=(0,), max_cycles=max_cycles)

    run = SimulationRun(
        cycles=done_cycle + 1,
        done=True,
        results=results,
        memories=interface_memories,
        simulator=simulator,
        profile=(profiler.finish(name) if profiler is not None else None),
        engine=name,
    )
    if name == "differential" and profiler is None and not external_models:
        _vector_leg(run, design, memories, scalar_inputs, top,
                    max_cycles, drain_cycles)
    return run


def _vector_leg(run: SimulationRun, design: Design, memories, scalar_inputs,
                top, max_cycles: int, drain_cycles: int) -> None:
    """The differential engine's third leg: replay the run through the fused
    vector engine and require bit-exactness against the lockstep pair.

    Designs without a fused-run execution (no static requirement here — the
    vector engine only refuses external models / profiling at this layer)
    are skipped; any mismatch or vector-side timeout is a
    :class:`~repro.sim.engine.differential.DivergenceError`.
    """
    from repro.sim.engine.differential import DivergenceError
    from repro.sim.engine.vector import VectorUnsupported, run_design_vector

    try:
        replay = run_design_vector(
            design, memories=memories, scalar_inputs=scalar_inputs, top=top,
            max_cycles=max_cycles, drain_cycles=drain_cycles)
    except VectorUnsupported:
        return
    except SimulationTimeout as error:
        raise DivergenceError(
            f"vector leg timed out where the lockstep pair finished: {error}"
        ) from error
    if replay.cycles != run.cycles:
        raise DivergenceError(
            f"vector leg diverged: cycles {replay.cycles} != {run.cycles}")
    if replay.results != run.results:
        raise DivergenceError(
            f"vector leg diverged: results {replay.results} != {run.results}")
    for name, memory in run.memories.items():
        other = replay.memories[name]
        if other.data != memory.data:
            raise DivergenceError(
                f"vector leg diverged on memory '{name}'")
        if (other.reads, other.writes) != (memory.reads, memory.writes):
            raise DivergenceError(
                f"vector leg diverged on '{name}' access counts: "
                f"{(other.reads, other.writes)} != "
                f"{(memory.reads, memory.writes)}")


def run_design(
    design: Design,
    memories: Optional[Dict[str, tuple]] = None,
    scalar_inputs: Optional[Dict[str, int]] = None,
    top: Optional[str] = None,
    external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None,
    max_cycles: int = 100000,
    drain_cycles: int = 4,
    engine: Optional[str] = None,
) -> SimulationRun:
    """Deprecated shim over :func:`run_design_impl`; use
    ``repro.flow.Flow(...).simulate(...)`` instead."""
    from repro._compat import warn_deprecated
    warn_deprecated("run_design()", "Flow(...).simulate(...)")
    return run_design_impl(
        design, memories=memories, scalar_inputs=scalar_inputs, top=top,
        external_models=external_models, max_cycles=max_cycles,
        drain_cycles=drain_cycles, engine=engine,
    )
