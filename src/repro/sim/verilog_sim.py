"""Cycle-accurate simulation of generated Verilog designs.

The paper validates generated hardware with RTL simulation; we reproduce that
with a small simulator that executes the Verilog AST produced by the code
generators directly:

* the design is *elaborated* (module instances are flattened with hierarchical
  name prefixes, ports become alias assignments),
* continuous assignments are evaluated in topological order every cycle, and
* ``always @(posedge clk)`` blocks and memory writes are applied at the clock
  edge, two-phase, so non-blocking assignment semantics hold.

External (black-box) modules — e.g. the vendor ``mult_3stage`` IP from
Figure 2 — are simulated through user-supplied Python behavioural models
(:class:`ExternalModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.errors import SimulationError
from repro.verilog.analysis import order_assigns
from repro.verilog.ast import (
    AlwaysFF,
    Assign,
    BinOp,
    Comment,
    Const,
    Design,
    Display,
    Expr,
    If,
    Instance,
    MemIndex,
    MemoryDecl,
    MemWrite,
    Module,
    NonBlockingAssign,
    Ref,
    RegDecl,
    Statement,
    Ternary,
    UnOp,
    Wire,
    INPUT,
    OUTPUT,
)


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


class ExternalModel:
    """Behavioural model of a black-box module.

    ``clock(inputs)`` is called once per clock edge with the current values of
    the instance's input ports and returns the values its output ports take
    *after* the edge (i.e. outputs behave as registered).
    """

    def clock(self, inputs: Dict[str, int]) -> Dict[str, int]:  # pragma: no cover
        raise NotImplementedError(
            f"{type(self).__name__} does not implement ExternalModel.clock(); "
            "behavioural models of black-box modules must compute their "
            "post-edge outputs from the sampled input-port values"
        )


class PipelinedMultiplierModel(ExternalModel):
    """An N-stage pipelined multiplier (the ``mult_Nstage`` IP of Figure 2)."""

    def __init__(self, stages: int, width: int = 32) -> None:
        self.stages = stages
        self.width = width
        self._pipeline: List[int] = [0] * stages

    def clock(self, inputs: Dict[str, int]) -> Dict[str, int]:
        product = _mask(inputs.get("a", 0) * inputs.get("b", 0), self.width)
        self._pipeline = [product] + self._pipeline[:-1]
        return {"result0": self._pipeline[-1], "done": 0}


@dataclass
class _FlatExternal:
    """A flattened black-box instance awaiting behavioural simulation."""

    prefix: str
    module_name: str
    model: ExternalModel
    input_ports: Dict[str, str]   # port name -> flat signal name
    output_ports: Dict[str, str]  # port name -> flat signal name


@dataclass
class _FlatDesign:
    wires: Dict[str, int] = field(default_factory=dict)          # name -> width
    regs: Dict[str, Tuple[int, int]] = field(default_factory=dict)   # name -> (width, init)
    memories: Dict[str, Tuple[int, int]] = field(default_factory=dict)  # name -> (width, depth)
    assigns: List[Assign] = field(default_factory=list)
    clocked: List[Statement] = field(default_factory=list)
    inputs: Dict[str, int] = field(default_factory=dict)          # top-level inputs -> width
    outputs: Dict[str, int] = field(default_factory=dict)
    externals: List[_FlatExternal] = field(default_factory=list)


class _Elaborator:
    """Flattens a hierarchical design into a single netlist."""

    def __init__(self, design: Design,
                 external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None):
        self.design = design
        self.external_models = external_models or {}
        self.flat = _FlatDesign()

    def elaborate(self) -> _FlatDesign:
        top = self.design.top_module
        for port in top.ports:
            if port.name in ("clk", "rst"):
                continue
            if port.direction == INPUT:
                self.flat.inputs[port.name] = port.width
            else:
                self.flat.outputs[port.name] = port.width
            self.flat.wires[port.name] = port.width
        self._inline(top, prefix="", port_bindings={})
        return self.flat

    # -- flattening --------------------------------------------------------------
    def _inline(self, module: Module, prefix: str,
                port_bindings: Dict[str, Expr]) -> None:
        rename = lambda name: f"{prefix}{name}" if prefix else name  # noqa: E731

        # Port aliasing for non-top modules: inputs are driven by the parent's
        # connection expression; outputs drive the parent's connection wire.
        for port in module.ports:
            if not prefix:
                continue
            if port.name in ("clk", "rst"):
                continue
            flat_name = rename(port.name)
            self.flat.wires.setdefault(flat_name, port.width)
            bound = port_bindings.get(port.name)
            if bound is None:
                continue
            if port.direction == INPUT:
                self.flat.assigns.append(Assign(flat_name, bound))
            else:
                if isinstance(bound, Ref):
                    self.flat.assigns.append(Assign(bound.name, Ref(flat_name)))
                else:
                    raise SimulationError(
                        f"output port {port.name} of {module.name} must be "
                        "connected to a plain wire"
                    )

        for item in module.items:
            if isinstance(item, Comment):
                continue
            if isinstance(item, Wire):
                self.flat.wires.setdefault(rename(item.name), item.width)
            elif isinstance(item, RegDecl):
                self.flat.regs[rename(item.name)] = (item.width, item.init)
            elif isinstance(item, MemoryDecl):
                self.flat.memories[rename(item.name)] = (item.width, item.depth)
            elif isinstance(item, Assign):
                self.flat.assigns.append(
                    Assign(rename(item.target), self._rename_expr(item.expr, rename))
                )
            elif isinstance(item, AlwaysFF):
                for stmt in item.body:
                    self.flat.clocked.append(self._rename_stmt(stmt, rename))
            elif isinstance(item, Instance):
                self._inline_instance(item, prefix, rename)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"cannot elaborate item {item!r}")

    def _inline_instance(self, instance: Instance, prefix: str, rename) -> None:
        child = self.design.modules.get(instance.module_name)
        child_prefix = f"{prefix}{instance.instance_name}__"
        bindings = {
            port: self._rename_expr(expr, rename)
            for port, expr in instance.connections.items()
        }
        if child is None or child.external:
            factory = self.external_models.get(instance.module_name)
            if factory is None:
                raise SimulationError(
                    f"no behavioural model registered for black-box module "
                    f"'{instance.module_name}'"
                )
            self._bind_external(child, instance, child_prefix, bindings, factory)
            return
        self._inline(child, child_prefix, bindings)

    def _bind_external(self, child: Optional[Module], instance: Instance,
                       child_prefix: str, bindings: Dict[str, Expr],
                       factory: Callable[[], ExternalModel]) -> None:
        input_ports: Dict[str, str] = {}
        output_ports: Dict[str, str] = {}
        directions: Dict[str, str] = {}
        widths: Dict[str, int] = {}
        if child is not None:
            for port in child.ports:
                directions[port.name] = port.direction
                widths[port.name] = port.width
        for port_name, bound in bindings.items():
            if port_name in ("clk", "rst"):
                continue
            flat_name = f"{child_prefix}{port_name}"
            self.flat.wires.setdefault(flat_name, widths.get(port_name, 32))
            direction = directions.get(port_name)
            if direction is None:
                # Unknown port list (no shell module): treat result*/done as outputs.
                direction = OUTPUT if port_name.startswith(("result", "done")) else INPUT
            if direction == INPUT:
                input_ports[port_name] = flat_name
                self.flat.assigns.append(Assign(flat_name, bound))
            else:
                output_ports[port_name] = flat_name
                self.flat.regs.setdefault(flat_name, (widths.get(port_name, 32), 0))
                if isinstance(bound, Ref):
                    self.flat.assigns.append(Assign(bound.name, Ref(flat_name)))
        self.flat.externals.append(
            _FlatExternal(child_prefix, instance.module_name, factory(),
                          input_ports, output_ports)
        )

    # -- renaming ------------------------------------------------------------------
    def _rename_expr(self, expr: Expr, rename) -> Expr:
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, Ref):
            return Ref(rename(expr.name))
        if isinstance(expr, UnOp):
            return UnOp(expr.op, self._rename_expr(expr.operand, rename))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self._rename_expr(expr.lhs, rename),
                         self._rename_expr(expr.rhs, rename))
        if isinstance(expr, Ternary):
            return Ternary(self._rename_expr(expr.condition, rename),
                           self._rename_expr(expr.true_value, rename),
                           self._rename_expr(expr.false_value, rename))
        if isinstance(expr, MemIndex):
            return MemIndex(rename(expr.memory), self._rename_expr(expr.address, rename))
        raise SimulationError(f"cannot rename expression {expr!r}")

    def _rename_stmt(self, stmt: Statement, rename) -> Statement:
        if isinstance(stmt, NonBlockingAssign):
            return NonBlockingAssign(rename(stmt.target),
                                     self._rename_expr(stmt.expr, rename))
        if isinstance(stmt, MemWrite):
            return MemWrite(rename(stmt.memory),
                            self._rename_expr(stmt.address, rename),
                            self._rename_expr(stmt.data, rename))
        if isinstance(stmt, If):
            return If(self._rename_expr(stmt.condition, rename),
                      [self._rename_stmt(s, rename) for s in stmt.then_body],
                      [self._rename_stmt(s, rename) for s in stmt.else_body])
        if isinstance(stmt, Display):
            return stmt
        raise SimulationError(f"cannot rename statement {stmt!r}")


class Simulator:
    """Executes a flattened design cycle by cycle."""

    def __init__(self, design: Design, top: Optional[str] = None,
                 external_models: Optional[Dict[str, Callable[[], ExternalModel]]] = None):
        if top is not None:
            design = Design(top=top, modules=design.modules)
        self.flat = _Elaborator(design, external_models).elaborate()
        self.signals: Dict[str, int] = {}
        self.memories: Dict[str, List[int]] = {}
        self.cycle = 0
        #: Opt-in :class:`repro.obs.simprofile.SimProfiler`; None = no cost.
        self.profiler = None
        self._ordered_assigns = order_assigns(self.flat.assigns)
        self.reset()

    # -- state management --------------------------------------------------------
    def reset(self) -> None:
        self.signals = {name: 0 for name in self.flat.wires}
        for name, (width, init) in self.flat.regs.items():
            self.signals[name] = _mask(init, width)
        for name, (width, depth) in self.flat.memories.items():
            self.memories[name] = [0] * depth
        self.cycle = 0

    def set(self, name: str, value: int) -> None:
        if name not in self.flat.inputs:
            raise SimulationError(f"'{name}' is not a top-level input")
        self.signals[name] = _mask(value, self.flat.inputs[name])

    def get(self, name: str) -> int:
        if name not in self.signals:
            raise SimulationError(f"unknown signal '{name}'")
        return self.signals[name]

    def memory(self, name: str) -> List[int]:
        return self.memories[name]

    def find_memories(self, substring: str) -> List[str]:
        return sorted(name for name in self.memories if substring in name)

    # -- evaluation ------------------------------------------------------------------
    def _eval(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return _mask(expr.value, expr.width)
        if isinstance(expr, Ref):
            return self.signals.get(expr.name, 0)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand)
            if expr.op == "!":
                return 0 if value else 1
            if expr.op == "~":
                return ~value
            if expr.op == "-":
                return -value
            if expr.op == "|":
                return 1 if value else 0
            raise SimulationError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            return self._apply(expr.op, lhs, rhs)
        if isinstance(expr, Ternary):
            return self._eval(expr.true_value) if self._eval(expr.condition) \
                else self._eval(expr.false_value)
        if isinstance(expr, MemIndex):
            memory = self.memories[expr.memory]
            address = self._eval(expr.address)
            if 0 <= address < len(memory):
                return memory[address]
            return 0
        raise SimulationError(f"cannot evaluate expression {expr!r}")

    @staticmethod
    def _apply(op: str, lhs: int, rhs: int) -> int:
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        if op == "^":
            return lhs ^ rhs
        if op == "<<":
            return lhs << rhs
        if op == ">>":
            return lhs >> rhs
        if op == "==":
            return int(lhs == rhs)
        if op == "!=":
            return int(lhs != rhs)
        if op == "<":
            return int(lhs < rhs)
        if op == "<=":
            return int(lhs <= rhs)
        if op == ">":
            return int(lhs > rhs)
        if op == ">=":
            return int(lhs >= rhs)
        if op == "&&":
            return int(bool(lhs) and bool(rhs))
        raise SimulationError(f"unknown binary operator {op!r}")

    def eval_comb(self) -> None:
        """Propagate continuous assignments with the current register values."""
        for assign in self._ordered_assigns:
            width = self.flat.wires.get(assign.target)
            if width is None and assign.target in self.flat.regs:
                width = self.flat.regs[assign.target][0]
            value = self._eval(assign.expr)
            self.signals[assign.target] = _mask(value, width or 32)

    def clock_edge(self) -> None:
        """Apply every clocked statement (two-phase, non-blocking semantics)."""
        reg_updates: Dict[str, int] = {}
        mem_updates: List[Tuple[str, int, int]] = []

        def execute(stmt: Statement) -> None:
            if isinstance(stmt, NonBlockingAssign):
                width = self.flat.regs.get(stmt.target, (32, 0))[0]
                reg_updates[stmt.target] = _mask(self._eval(stmt.expr), width)
            elif isinstance(stmt, MemWrite):
                mem_updates.append(
                    (stmt.memory, self._eval(stmt.address), self._eval(stmt.data))
                )
            elif isinstance(stmt, If):
                branch = stmt.then_body if self._eval(stmt.condition) else stmt.else_body
                for inner in branch:
                    execute(inner)
            elif isinstance(stmt, Display):
                raise SimulationError(f"assertion failed: {stmt.message}")
            else:  # pragma: no cover - defensive
                raise SimulationError(f"cannot execute statement {stmt!r}")

        for stmt in self.flat.clocked:
            execute(stmt)

        # Black-box behavioural models clock with their *current* inputs.
        external_updates: List[Tuple[str, int]] = []
        for external in self.flat.externals:
            inputs = {port: self.signals.get(flat, 0)
                      for port, flat in external.input_ports.items()}
            outputs = external.model.clock(inputs)
            for port, flat in external.output_ports.items():
                width = self.flat.regs.get(flat, (32, 0))[0]
                external_updates.append((flat, _mask(outputs.get(port, 0), width)))

        profiler = self.profiler
        if profiler is None:
            for name, value in reg_updates.items():
                self.signals[name] = value
            for memory, address, data in mem_updates:
                storage = self.memories[memory]
                if 0 <= address < len(storage):
                    width = self.flat.memories[memory][0]
                    storage[address] = _mask(data, width)
            for name, value in external_updates:
                self.signals[name] = value
        else:
            # Profiled path: count architectural events — a register value
            # *change* per update (in apply order, so engines agree even when
            # regs and external models race on one target) and every
            # committed in-bounds memory write.
            profiler.begin_edge()
            for name, value in reg_updates.items():
                if self.signals.get(name, 0) != value:
                    profiler.on_reg(name)
                self.signals[name] = value
            for memory, address, data in mem_updates:
                storage = self.memories[memory]
                if 0 <= address < len(storage):
                    width = self.flat.memories[memory][0]
                    storage[address] = _mask(data, width)
                    profiler.on_mem_write(memory, address)
            for name, value in external_updates:
                if self.signals.get(name, 0) != value:
                    profiler.on_reg(name)
                self.signals[name] = value
            profiler.end_edge()
        self.cycle += 1

    def step(self, cycles: int = 1) -> None:
        """Advance the clock ``cycles`` times.

        Each cycle settles combinational logic, applies the clock edge, and
        settles combinational logic again so that values read after ``step``
        reflect the post-edge state of the design.
        """
        for _ in range(cycles):
            self.eval_comb()
            self.clock_edge()
        self.eval_comb()
