"""Crash-safe persistent artifact store (disk tier under the in-memory caches).

:mod:`repro.store.io` — atomic write-then-rename publication, used for every
file the toolchain emits.  :mod:`repro.store.store` — the content-addressed
:class:`ArtifactStore` with per-blob checksums, corruption quarantine,
advisory locking and ``verify``/``gc``/``clear`` maintenance (driven by the
``python -m repro store`` CLI).
"""

from repro.store.io import (
    TMP_MARKER,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    is_tmp_debris,
)
from repro.store.store import (
    ArtifactStore,
    GCReport,
    StoreError,
    StoreLockTimeout,
    StoreReport,
    VerifyReport,
    default_store,
    get_store,
    reset_store_counters,
    store_counters,
)

__all__ = [
    "ArtifactStore",
    "GCReport",
    "StoreError",
    "StoreLockTimeout",
    "StoreReport",
    "TMP_MARKER",
    "VerifyReport",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "default_store",
    "fsync_directory",
    "get_store",
    "is_tmp_debris",
    "reset_store_counters",
    "store_counters",
]
