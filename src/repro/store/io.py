"""Atomic file publication: write-then-rename, shared by every file output.

A truncated artifact is worse than a missing one — a half-written Verilog
file, benchmark JSON or fuzz reproducer looks like data until something
parses it.  Every file the toolchain writes therefore goes through one of
these helpers:

1. the payload is written to a temporary file *in the target directory*
   (same filesystem, so the final rename cannot cross devices);
2. the temp file is flushed and ``fsync``\\ ed, so the bytes are durable
   before the name exists;
3. ``os.replace`` atomically publishes it — readers see either the old
   content or the complete new content, never a prefix.

The directory itself is fsynced best-effort (not all platforms support it),
making the *rename* durable too.  Interrupted writes leave only
``*.tmp*`` debris next to the target, which :meth:`repro.store.ArtifactStore.gc`
and ``verify`` sweep up.

Fault points (:func:`repro.resilience.fault_point`): ``store.write`` (payload
corruption / io_error / torn write / crash), ``store.fsync`` and
``store.rename`` (io_error / crash between durability and publication).
Injection is off unless a :class:`~repro.resilience.FaultPlan` is installed.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional

from repro.resilience.faults import TornWrite, InjectedIOError, fault_point

__all__ = [
    "TMP_MARKER",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "is_tmp_debris",
]

#: Substring marking in-flight temp files (debris after a crash).
TMP_MARKER = ".tmp-"


def is_tmp_debris(filename: str) -> bool:
    """Is ``filename`` an in-flight temp file left by an interrupted write?"""
    return TMP_MARKER in filename


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory (makes renames in it durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *, fsync: bool = True) -> str:
    """Atomically publish ``data`` at ``path``; returns ``path``.

    Creates parent directories as needed.  On any failure the target is
    untouched; the temp file is removed except for an injected *torn* write,
    which deliberately leaves the partial temp file behind (that is the
    crash being simulated).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    torn: Optional[TornWrite] = None
    try:
        data = fault_point("store.write", payload=data)
    except TornWrite as fault:
        torn = fault
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + TMP_MARKER)
    try:
        with os.fdopen(fd, "wb") as handle:
            if torn is not None:
                handle.write(data[: int(len(data) * torn.keep_fraction)])
                handle.flush()
                # Leave the partial temp file on disk: that is the debris an
                # interrupted process leaves, and what gc/verify must sweep.
                raise InjectedIOError(
                    f"injected torn write publishing {path!r} "
                    "(partial temp file left behind)")
            handle.write(data)
            handle.flush()
            if fsync:
                fault_point("store.fsync")
                os.fsync(handle.fileno())
        fault_point("store.rename")
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
        return path
    except BaseException:
        if torn is None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise


def atomic_write_text(path: str, text: str, *, encoding: str = "utf-8",
                      fsync: bool = True) -> str:
    """Atomically publish ``text`` at ``path`` (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(path: str, payload: Any, *, indent: int = 2,
                      sort_keys: bool = True, fsync: bool = True) -> str:
    """Atomically publish ``payload`` as JSON (trailing newline included)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, fsync=fsync)
